//! Umbrella crate for the SSDTrain reproduction workspace: depends on
//! every member so `cargo test` at the root exercises the integration
//! tests in `tests/` and the runnable examples in `examples/`.

pub use ssdtrain;
pub use ssdtrain_analysis;
pub use ssdtrain_autograd;
pub use ssdtrain_models;
pub use ssdtrain_simhw;
pub use ssdtrain_tensor;
pub use ssdtrain_train;
