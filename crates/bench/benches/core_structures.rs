//! Criterion micro-benchmarks of the hot data structures: tensor
//! identity stamping, the cancellable store queue, the transfer channel,
//! memory-timeline reconstruction, pack/unpack round trips through the
//! tensor cache and the FP16 serialisation path.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdtrain::{CpuTarget, IoEngine, TensorCache, TensorCacheConfig};
use ssdtrain_autograd::SavedTensorHooks;
use ssdtrain_simhw::{Channel, GpuMemory, SimClock, SimTime};
use ssdtrain_tensor::{storage::f32_to_f16_bits, Device, Tensor};
use std::hint::black_box;
use std::sync::Arc;

fn bench_tensor_key(c: &mut Criterion) {
    let dev = Device::cpu();
    let t = Tensor::zeros([64, 64], &dev);
    c.bench_function("id/tensor_key", |b| {
        b.iter(|| black_box(ssdtrain::id::tensor_key(black_box(&t))))
    });
}

fn bench_write_queue(c: &mut Criterion) {
    c.bench_function("io/submit_store_1k", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let io = IoEngine::new(clock, 1e9, 1e9);
            for _ in 0..1000 {
                black_box(io.submit_store(1 << 20));
            }
        })
    });
    c.bench_function("io/cancel_reflow_1k", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let io = IoEngine::new(clock, 1e9, 1e9);
            let jobs: Vec<_> = (0..1000).map(|_| io.submit_store(1 << 20)).collect();
            for j in jobs.into_iter().rev() {
                black_box(io.try_cancel_store(j, SimTime::ZERO));
            }
        })
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("channel/submit_10k", |b| {
        b.iter(|| {
            let ch = Channel::new("bench", 1e9);
            for i in 0..10_000u64 {
                black_box(ch.submit(SimTime::from_secs(i as f64 * 1e-6), 4096));
            }
        })
    });
}

fn bench_memory_timeline(c: &mut Criterion) {
    c.bench_function("memory/timeline_10k_events", |b| {
        let clock = SimClock::new();
        let mem = GpuMemory::new(clock.clone(), 1 << 40);
        for _ in 0..5000 {
            use ssdtrain_tensor::{MemClass, MemTracker};
            clock.advance_by(1e-6);
            mem.on_alloc(4096, MemClass::Activation);
            mem.on_free(1024, MemClass::Activation);
        }
        b.iter(|| black_box(mem.peak_activations()))
    });
}

fn bench_cache_roundtrip(c: &mut Criterion) {
    c.bench_function("cache/pack_unpack_roundtrip", |b| {
        let clock = SimClock::new();
        let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 40));
        let dev = Device::cpu();
        dev.set_tracker(mem.clone());
        let io = IoEngine::new(clock.clone(), 1e12, 1e12);
        let cache = TensorCache::new(
            TensorCacheConfig::offload_everything(),
            Arc::new(CpuTarget::new(1 << 40)),
            io,
            mem,
        );
        b.iter(|| {
            cache.begin_step();
            let t = Tensor::zeros([32, 32], &dev);
            let packed = cache.pack(&t);
            clock.advance_by(1.0);
            let back = cache.unpack(&packed);
            black_box(back);
            cache.flush();
        })
    });
}

fn bench_f16(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| i as f32 * 0.37 - 512.0).collect();
    c.bench_function("storage/f16_convert_4k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for v in &values {
                acc = acc.wrapping_add(f32_to_f16_bits(*v) as u32);
            }
            black_box(acc)
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let dev = Device::cpu();
    let a = Tensor::ones([64, 64], &dev);
    let w = Tensor::ones([64, 64], &dev);
    c.bench_function("kernels/matmul_64", |b| {
        b.iter(|| black_box(a.matmul(black_box(&w))))
    });
}

fn bench_adaptive_planner(c: &mut Criterion) {
    use ssdtrain::adaptive::{AdaptivePlan, ModuleProfile, StepProfile};
    let profile = StepProfile {
        modules: (0..64)
            .map(|i| ModuleProfile {
                path: format!("layer{}/{}", i / 2, if i % 2 == 0 { "attn" } else { "mlp" }),
                offload_bytes: 1 << 30,
                fwd_secs: 0.05,
                store_secs: 0.04,
                load_secs: 0.04,
            })
            .collect(),
        fwd_total_secs: 3.2,
        fwd_io_bytes: 64 << 30,
        fwd_io_secs: 2.8,
    };
    c.bench_function("adaptive/decide_64_modules", |b| {
        b.iter(|| black_box(AdaptivePlan::decide(black_box(&profile), 24.4e9, 2.0)))
    });
}

fn bench_pipeline_sim(c: &mut Criterion) {
    use ssdtrain_train::PipelineSim;
    let sim = PipelineSim {
        pp: 8,
        micro_batches: 64,
        fwd_secs: 0.02,
        bwd_secs: 0.04,
        act_bytes_per_mb: 1 << 30,
        offload_resident_bytes: 1 << 28,
        send_secs: 0.001,
    };
    c.bench_function("pipeline/1f1b_8x64", |b| b.iter(|| black_box(sim.run())));
}

criterion_group!(
    benches,
    bench_tensor_key,
    bench_write_queue,
    bench_channel,
    bench_memory_timeline,
    bench_cache_roundtrip,
    bench_f16,
    bench_matmul,
    bench_adaptive_planner,
    bench_pipeline_sim
);
criterion_main!(benches);
