//! # ssdtrain-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation. Each binary prints the rows/series of one exhibit:
//!
//! | binary | exhibit |
//! |---|---|
//! | `fig1_trends` | Figure 1 — throughput / model-size / memory growth |
//! | `fig2_instances` | Figure 2 — host memory vs SSD capacity |
//! | `fig7_footprint` | Figure 7 — memory footprint timeline ± offloading |
//! | `fig9_lifespan` | Figure 9 — SSD lifespan, PCIe bandwidth, max activations |
//! | `fig10_overhead` | Figure 10 — step time and activation peak ± TBA |
//! | `fig11_rok` | Figure 11 — the recompute-offload-keep curve |
//! | `tab1_ssds` | Table 1 — endurance-class SSDs |
//! | `tab4_offload` | Table 4 — measured vs modelled offload volume |
//! | `ablations` | design-choice ablations (dedup, forwarding, prefetch, adaptive) |
//!
//! Run one with `cargo run -p ssdtrain-bench --release --bin fig10_overhead`.

use ssdtrain::{chrome_trace_json, text_summary, PlacementStrategy, TraceSink};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_train::{SessionBuilder, SessionConfig, StepMetrics, TrainSession};
use std::path::{Path, PathBuf};

/// Formats bytes as GiB with two decimals.
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Formats bytes as GB (decimal) with two decimals.
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

/// Slugifies a table title into a file stem.
fn slug(title: &str) -> String {
    let mut out = String::new();
    for c in title.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if (c == ' ' || c == '-' || c == '_') && !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').chars().take(64).collect()
}

/// Writes a table as CSV under `results/` (best effort — printing always
/// succeeds even if the directory is read-only).
pub fn write_csv(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut csv = String::new();
    csv.push_str(&headers.join(","));
    csv.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        csv.push_str(&escaped.join(","));
        csv.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("{}.csv", slug(title))), csv);
}

/// Prints a fixed-width table and mirrors it to `results/<slug>.csv`.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    write_csv(title, headers, rows);
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The paper-testbed builder every bench binary starts from: a
/// paper-scale (symbolic) model with TP=2 on the Table 3 machine, seed
/// 42. Layer backend, cache and strategy choices on top and finish with
/// `.build()` — `bench_tiering`, `bench_capacity` and `bench_io` all
/// derive their sessions from this one helper so the testbed cannot
/// drift between exhibits.
pub fn paper_testbed(arch: Arch, hidden: usize, layers: usize, batch: usize) -> SessionBuilder {
    SessionConfig::builder()
        .model(ModelConfig::paper_scale(arch, hidden, layers).with_tp(2))
        .batch_size(batch)
        .symbolic(true)
        .seed(42)
}

/// Builds a paper-scale (symbolic) session on the Table 3 testbed.
pub fn paper_session(
    arch: Arch,
    hidden: usize,
    layers: usize,
    batch: usize,
    strategy: PlacementStrategy,
) -> TrainSession {
    paper_session_traced(arch, hidden, layers, batch, strategy, TraceSink::disabled())
}

/// [`paper_session`] with the session's events routed into `sink`.
pub fn paper_session_traced(
    arch: Arch,
    hidden: usize,
    layers: usize,
    batch: usize,
    strategy: PlacementStrategy,
    sink: TraceSink,
) -> TrainSession {
    let cfg = paper_testbed(arch, hidden, layers, batch)
        .strategy(strategy)
        .trace(sink)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session construction")
}

/// Parses a `--trace <path>` flag from the process arguments (used by
/// every bench binary; other arguments are left alone).
pub fn trace_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// An enabled sink when a trace path was requested, else a disabled one.
pub fn sink_for(path: &Option<PathBuf>) -> TraceSink {
    match path {
        Some(_) => TraceSink::enabled(),
        None => TraceSink::disabled(),
    }
}

/// Writes `sink` as Chrome-trace JSON to `path` and prints the per-step
/// text timeline to stdout.
pub fn export_trace(sink: &TraceSink, path: &Path) {
    let events = sink.events();
    std::fs::write(path, chrome_trace_json(&events)).expect("write trace file");
    println!("\n{}", text_summary(&events));
    println!("chrome trace written to {}", path.display());
}

/// Runs one measured step (with a profiling step first for the offload
/// strategy, as the real system does). Bench sessions run on healthy
/// simulated devices, so a step error is a harness bug.
pub fn measured_step(session: &mut TrainSession, strategy: PlacementStrategy) -> StepMetrics {
    if strategy.uses_cache() {
        let _ = session.profile_step().expect("profile step");
    }
    session.run_step().expect("measured step")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_and_gb() {
        assert_eq!(gib(1 << 30), 1.0);
        assert_eq!(gb(1_000_000_000), 1.0);
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(
            super::slug("Figure 7 — BERT H8192 (GiB)"),
            "figure_7_bert_h8192_gib"
        );
    }

    #[test]
    fn paper_session_builds_and_steps() {
        let mut s = paper_session(Arch::Bert, 1024, 2, 4, PlacementStrategy::Keep);
        let m = measured_step(&mut s, PlacementStrategy::Keep);
        assert!(m.step_secs > 0.0);
    }
}
