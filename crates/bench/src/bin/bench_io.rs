//! I/O-path ablation on the paper testbed: per-tensor stores vs
//! coalesced segments, on-demand backward loads vs double-buffered
//! group prefetch (BERT H2048 L8, batch 8, TP=2, symbolic, tiered
//! backend — a many-small-tensors regime where per-job and per-op
//! overheads actually register). Every arm pays the same per-store-job
//! submission overhead
//! and per-write-op media overhead, so the table isolates what
//! batching buys: fewer jobs on the queue clock, fewer ops on the wear
//! meter, and backward stalls hidden behind the second staging buffer.
//!
//! Prints a table and emits `results/BENCH_io.json`; the
//! `scripts/bench_check.sh` gates read that file.

use ssdtrain::{OffloadStats, PlacementStrategy};
use ssdtrain_bench::{gb, paper_testbed, print_table};
use ssdtrain_models::Arch;
use ssdtrain_train::{OffloadBackend, TrainSession};

/// Fixed per-store-job submission cost (driver/syscall/queue doorbell):
/// the term that makes many small jobs slower than few large ones.
const STORE_JOB_OVERHEAD_SECS: f64 = 1e-3;
/// Media bytes each write op charges beyond its payload (mapping
/// granularity / page padding): the term that inflates the effective
/// WAF of small writes.
const SSD_WRITE_OVERHEAD_BYTES: u64 = 512 << 10;
/// Bounded DRAM front tier, so most of the step's traffic reaches the
/// flash where the wear meter watches it.
const DRAM_FRONT_BYTES: u64 = 1 << 30;

struct Arm {
    name: &'static str,
    /// Coalescing segment size (0 = per-tensor stores).
    segment_bytes: u64,
    /// Group size in modules (0 = per-module prefetch path).
    group_modules: usize,
    /// Prefetch lookahead (modules or groups); 0 disables prefetch.
    depth: usize,
}

struct Row {
    arm: &'static Arm,
    step_secs: f64,
    waf: f64,
    offload: OffloadStats,
}

const ARMS: [Arm; 4] = [
    // Baseline: every tensor its own store job, backward loads only
    // when unpack blocks on them.
    Arm {
        name: "per-tensor-ondemand",
        segment_bytes: 0,
        group_modules: 0,
        depth: 0,
    },
    // The paper's configuration: per-tensor stores, per-module
    // prefetch two modules ahead.
    Arm {
        name: "per-tensor-depth2",
        segment_bytes: 0,
        group_modules: 0,
        depth: 2,
    },
    // The coalesced path at two segment sizes, both consuming backward
    // groups of two modules on the double buffer.
    Arm {
        name: "coalesced-64m-group",
        segment_bytes: 64 << 20,
        group_modules: 2,
        depth: 2,
    },
    Arm {
        name: "coalesced-256m-group",
        segment_bytes: 256 << 20,
        group_modules: 2,
        depth: 2,
    },
];

fn run_arm(arm: &'static Arm) -> Row {
    let mut builder = paper_testbed(Arch::Bert, 2048, 8, 8)
        .strategy(PlacementStrategy::Offload)
        .backend(OffloadBackend::Tiered {
            dram_bytes: DRAM_FRONT_BYTES,
        })
        .store_job_overhead(STORE_JOB_OVERHEAD_SECS)
        .ssd_write_overhead(SSD_WRITE_OVERHEAD_BYTES)
        .coalesce_segment(arm.segment_bytes)
        .prefetch_group(arm.group_modules);
    if arm.depth > 0 {
        builder = builder.prefetch_depth(arm.depth);
    } else {
        builder = builder.cache(ssdtrain::TensorCacheConfig {
            prefetch: false,
            coalesce_segment_bytes: arm.segment_bytes,
            prefetch_group_modules: arm.group_modules,
            ..Default::default()
        });
    }
    let cfg = builder.build().expect("valid config");
    let mut session = TrainSession::new(cfg).expect("session construction");
    let metrics = session.run_step().expect("measured step");

    // Effective WAF straight off the SSD tier's wear meter: media
    // bytes (payload + per-op overhead) over host bytes.
    let cache = session.cache().expect("offload strategy owns a cache");
    let waf = cache
        .tiers()
        .tier_ids()
        .into_iter()
        .find(|t| cache.tiers().name(*t) == "ssd")
        .and_then(|t| cache.tiers().device(t))
        .and_then(|d| d.wear_snapshot())
        .map(|w| w.effective_waf())
        .unwrap_or(0.0);

    Row {
        arm,
        step_secs: metrics.step_secs,
        waf,
        offload: metrics.offload,
    }
}

fn emit_json(rows: &[Row]) {
    let mut out =
        String::from("{\n  \"bench\": \"io\",\n  \"model\": \"bert_h2048_l8\",\n  \"batch\": 8,\n");
    out.push_str(&format!(
        "  \"store_job_overhead_secs\": {STORE_JOB_OVERHEAD_SECS},\n  \"ssd_write_overhead_bytes\": {SSD_WRITE_OVERHEAD_BYTES},\n  \"arms\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        let o = &row.offload;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"segment_mib\": {}, \"group_modules\": {}, \"prefetch_depth\": {}, \"step_secs\": {:.6}, \"waf\": {:.6}, \"load_stall_secs\": {:.6}, \"store_stall_secs\": {:.6}, \"arena_high_water_bytes\": {}, \"store_jobs\": {}, \"coalesce_segments\": {}, \"prefetch_groups\": {}, \"offloaded_bytes\": {}}}{}\n",
            row.arm.name,
            row.arm.segment_bytes >> 20,
            row.arm.group_modules,
            row.arm.depth,
            row.step_secs,
            row.waf,
            o.stall_secs,
            o.store_stall_secs,
            o.arena_high_water_bytes,
            o.store_jobs,
            o.coalesce_segments,
            o.prefetch_groups,
            o.offloaded_bytes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_io.json", &out).is_ok()
    {
        println!("\nwritten results/BENCH_io.json");
    }
}

fn main() {
    let rows: Vec<Row> = ARMS.iter().map(run_arm).collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let o = &row.offload;
            vec![
                row.arm.name.to_owned(),
                if row.arm.segment_bytes > 0 {
                    format!("{}", row.arm.segment_bytes >> 20)
                } else {
                    "-".into()
                },
                format!("{:.3}", row.step_secs),
                format!("{:.3}", row.waf),
                format!("{:.4}", o.stall_secs),
                format!("{:.3}", o.store_stall_secs),
                format!("{:.2}", gb(o.arena_high_water_bytes)),
                format!("{}", o.store_jobs),
                format!("{}", o.coalesce_segments),
                format!("{:.2}", gb(o.offloaded_bytes)),
            ]
        })
        .collect();
    print_table(
        "I/O path ablation (BERT H2048 L8, B=8, TP=2, tiered)",
        &[
            "arm",
            "seg MiB",
            "step s",
            "waf",
            "load stall s",
            "store stall s",
            "arena hw GB",
            "store jobs",
            "segments",
            "offloaded GB",
        ],
        &table,
    );
    emit_json(&rows);
    println!(
        "\ncoalescing collapses thousands of per-tensor store jobs into hundreds of\n\
         sequential segments: the per-job submission overhead leaves the step clock\n\
         and the per-op media padding leaves the wear meter (lower effective WAF).\n\
         group prefetch on the double buffer keeps the backward's next group in\n\
         flight while the current one is consumed, holding the load stall at or\n\
         below the on-demand baseline."
    );
}
