//! Ablations of the design choices DESIGN.md calls out: tensor
//! deduplication, data forwarding, prefetching, the adaptive plan and
//! the prefetch depth — each toggled off individually on the Figure 10
//! BERT H8192 L4 B16 workload.

use ssdtrain::{TensorCacheConfig, TraceSink};
use ssdtrain_bench::{export_trace, gb, gib, print_table, sink_for, trace_path_from_args};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{SessionConfig, StepMetrics, TrainSession};

fn run_on(system: SystemConfig, cache: TensorCacheConfig, sink: TraceSink) -> StepMetrics {
    let cfg = SessionConfig::builder()
        .system(system)
        .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
        .batch_size(16)
        .cache(cache)
        .symbolic(true)
        .seed(42)
        .trace(sink)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let _ = s.profile_step().expect("profile step");
    s.run_step().expect("step")
}

fn run(cache: TensorCacheConfig, sink: TraceSink) -> StepMetrics {
    run_on(SystemConfig::dac_testbed(), cache, sink)
}

fn main() {
    let trace_path = trace_path_from_args();
    let sink = sink_for(&trace_path);
    let base = TensorCacheConfig::default();
    let variants: Vec<(&str, TensorCacheConfig)> = vec![
        ("full system", base.clone()),
        (
            "no dedup",
            TensorCacheConfig {
                dedup: false,
                ..base.clone()
            },
        ),
        (
            "no forwarding",
            TensorCacheConfig {
                forwarding: false,
                cancel_forwarded_stores: false,
                ..base.clone()
            },
        ),
        (
            "no store cancel",
            TensorCacheConfig {
                cancel_forwarded_stores: false,
                ..base.clone()
            },
        ),
        (
            "no prefetch (sync loads)",
            TensorCacheConfig {
                prefetch: false,
                ..base.clone()
            },
        ),
        (
            "no adaptive plan",
            TensorCacheConfig {
                adaptive: false,
                ..base.clone()
            },
        ),
        (
            "prefetch depth 2",
            TensorCacheConfig {
                prefetch_depth: 2,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let m = run(cfg, sink.clone());
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", m.step_secs),
            format!("{:.4}", m.offload.stall_secs),
            format!("{:.2}", gib(m.act_peak_bytes)),
            format!("{:.2}", gb(m.offload.offloaded_bytes)),
            format!("{:.2}", gb(m.offload.reloaded_bytes)),
            format!("{:.2}", gb(m.offload.dedup_avoided_bytes)),
            format!("{:.2}", gb(m.offload.cancelled_bytes)),
            m.offload.forwarded.to_string(),
            m.offload.sync_loads.to_string(),
        ]);
    }
    print_table(
        "Ablations — BERT H8192 L4 B16, TBA offloading",
        &[
            "variant",
            "step s",
            "stall s",
            "peak GiB",
            "stored GB",
            "reloaded GB",
            "dedup GB",
            "cancel GB",
            "fwd",
            "sync",
        ],
        &rows,
    );

    // The adaptive planner earns its keep when bandwidth is scarce: one
    // Optane drive per GPU instead of the testbed's four.
    let slow = {
        let mut sys = SystemConfig::dac_testbed();
        sys.ssd_array.n = 1;
        sys
    };
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("adaptive plan on", base.clone()),
        (
            "adaptive plan off",
            TensorCacheConfig {
                adaptive: false,
                ..base.clone()
            },
        ),
    ] {
        let m = run_on(slow.clone(), cfg, sink.clone());
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", m.step_secs),
            format!("{:.4}", m.offload.stall_secs),
            format!("{:.2}", gib(m.act_peak_bytes)),
            format!("{:.2}", gb(m.offload.offloaded_bytes)),
            m.offload.kept.to_string(),
        ]);
    }
    print_table(
        "Adaptive offloading under scarce bandwidth (1x P5800X, 6.1 GB/s)",
        &[
            "variant",
            "step s",
            "stall s",
            "peak GiB",
            "stored GB",
            "kept",
        ],
        &rows,
    );
    println!(
        "\nexpected: dedup avoids re-storing duplicate saves (dedup GB > 0); disabling\n\
         prefetch exposes every reload on the critical path (stall > 0); under scarce\n\
         bandwidth the adaptive plan keeps enough tail modules to stay off the critical\n\
         path, where the non-adaptive keep-last-only policy stalls."
    );
    if let Some(path) = trace_path {
        export_trace(&sink, &path);
    }
}
