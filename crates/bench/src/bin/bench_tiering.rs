//! Tiered-backend comparison on the paper testbed: SSD-only vs
//! DRAM-only vs a bounded DRAM front tier spilling into the SSD array
//! (BERT H8192 L4, batch 16, TP=2, symbolic). Prints a table and emits
//! `results/BENCH_tiering.json` with the per-tier traffic split and the
//! endurance headroom each backend leaves on the SSD array.

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_bench::{gb, paper_testbed, print_table};
use ssdtrain_models::Arch;
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{OffloadBackend, StepMetrics, TrainSession};

/// A steady month of training at the measured per-step traffic — long
/// enough for the endurance split between backends to show.
const PROJECTION_SECS: f64 = 30.0 * 24.0 * 3600.0;

struct Row {
    label: &'static str,
    metrics: StepMetrics,
    remaining_frac: f64,
    lifespan_years: Option<f64>,
}

fn run_backend(label: &'static str, backend: OffloadBackend) -> Row {
    run_backend_with(label, backend, TensorCacheConfig::default())
}

fn run_backend_with(label: &'static str, backend: OffloadBackend, cache: TensorCacheConfig) -> Row {
    let cfg = paper_testbed(Arch::Bert, 8192, 4, 16)
        .strategy(PlacementStrategy::Offload)
        .backend(backend)
        .cache(cache)
        .build()
        .expect("valid config");
    let mut session = TrainSession::new(cfg).expect("session construction");
    let _ = session.profile_step().expect("profile step");
    let metrics = session.run_step().expect("measured step");

    // Project the SSD array's wear under a month of steady training at
    // this backend's per-step SSD traffic. Only bytes that reach the
    // "ssd" tier wear the flash — the DRAM tier absorbs the rest.
    let ssd_bytes_per_step: u64 = metrics
        .offload
        .tiers
        .iter()
        .filter(|t| t.name == "ssd")
        .map(|t| t.bytes_written)
        .sum();
    let mut meter = SystemConfig::dac_testbed().ssd_array.wear_meter(1.0);
    let steps = (PROJECTION_SECS / metrics.step_secs) as u64;
    meter.record_write(ssd_bytes_per_step.saturating_mul(steps));
    let remaining_frac = meter.remaining_bytes() / meter.endurance_bytes;
    let lifespan_years = (ssd_bytes_per_step > 0)
        .then(|| meter.projected_lifespan_years(ssd_bytes_per_step, metrics.step_secs));

    Row {
        label,
        metrics,
        remaining_frac,
        lifespan_years,
    }
}

fn json_escape_free(s: &str) -> &str {
    // Labels and tier names are ASCII identifiers; nothing to escape.
    s
}

fn emit_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"tiering\",\n  \"model\": \"bert_h8192_l4\",\n  \"batch\": 16,\n  \"backends\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let m = &row.metrics;
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"step_secs\": {:.6},\n      \"store_stall_secs\": {:.6},\n      \"offloaded_bytes\": {},\n      \"spilled_bytes\": {},\n      \"ssd_endurance_remaining_after_30d\": {:.6},\n      \"ssd_lifespan_years\": {},\n      \"tiers\": [\n",
            json_escape_free(row.label),
            m.step_secs,
            m.offload.store_stall_secs,
            m.offload.offloaded_bytes,
            m.offload.spilled_bytes,
            row.remaining_frac,
            row.lifespan_years
                .map(|y| format!("{y:.3}"))
                .unwrap_or_else(|| "null".into()),
        ));
        for (j, t) in m.offload.tiers.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"bytes_written\": {}, \"bytes_read\": {}, \"spilled_in_bytes\": {}, \"demoted_in_bytes\": {}}}{}\n",
                json_escape_free(&t.name),
                t.bytes_written,
                t.bytes_read,
                t.spilled_in_bytes,
                t.demoted_in_bytes,
                if j + 1 < m.offload.tiers.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_tiering.json", &out).is_ok()
    {
        println!("\nwritten results/BENCH_tiering.json");
    }
}

fn main() {
    // A 4 GiB pinned front tier holds part of one step's ~10 GB of
    // activations; the rest spills to the array.
    let rows = vec![
        run_backend("ssd", OffloadBackend::Ssd),
        run_backend("dram", OffloadBackend::Dram),
        run_backend(
            "tiered-4g",
            OffloadBackend::Tiered {
                dram_bytes: 4 << 30,
            },
        ),
        // Same tier stack, but the profile-guided cost model plans the
        // per-module placement and trims the offload set until the store
        // drain hides inside forward compute — the step-time win over
        // the static front-first walk above.
        run_backend_with(
            "tiered-4g-planned",
            OffloadBackend::Tiered {
                dram_bytes: 4 << 30,
            },
            TensorCacheConfig {
                profile_guided: true,
                ..TensorCacheConfig::default()
            },
        ),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            let ssd_bytes: u64 = m
                .offload
                .tiers
                .iter()
                .filter(|t| t.name == "ssd")
                .map(|t| t.bytes_written)
                .sum();
            let front_bytes: u64 = m
                .offload
                .tiers
                .iter()
                .filter(|t| t.name != "ssd")
                .map(|t| t.bytes_written)
                .sum();
            let (ssd_gb, front_gb) = (gb(ssd_bytes), gb(front_bytes));
            vec![
                row.label.to_owned(),
                format!("{:.3}", m.step_secs),
                format!("{:.3}", m.offload.store_stall_secs),
                format!("{:.2}", gb(m.offload.offloaded_bytes)),
                format!("{front_gb:.2}"),
                format!("{ssd_gb:.2}"),
                format!("{:.2}", gb(m.offload.spilled_bytes)),
                format!("{:.1}%", row.remaining_frac * 100.0),
                row.lifespan_years
                    .map(|y| format!("{y:.1}"))
                    .unwrap_or_else(|| "∞".into()),
            ]
        })
        .collect();
    print_table(
        "Tiered offload backends (BERT H8192 L4, B=16, TP=2)",
        &[
            "backend",
            "step s",
            "stall s",
            "offloaded GB",
            "front GB",
            "ssd GB",
            "spilled GB",
            "endurance left 30d",
            "ssd life yrs",
        ],
        &table,
    );
    emit_json(&rows);
    println!(
        "\nthe DRAM front tier absorbs write traffic the flash would otherwise wear\n\
         through; the tiered point keeps most of the SSD array's endurance headroom\n\
         while bounding pinned host memory at 4 GiB (vs the 1 TiB the dram-only\n\
         backend pins)."
    );
}
