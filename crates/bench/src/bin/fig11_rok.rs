//! Figure 11 — the recompute-offload-keep (ROK) curve: each training run
//! is a point (activation memory peak, model throughput). BERT with 3
//! layers at hidden 12288 and 14336, batch sizes swept, all three
//! placement strategies.

use ssdtrain::PlacementStrategy;
use ssdtrain_bench::{gib, measured_step, paper_session, print_table};
use ssdtrain_models::Arch;

fn main() {
    let strategies = [
        PlacementStrategy::Keep,
        PlacementStrategy::Offload,
        PlacementStrategy::Recompute,
        // Interior of the ROK plane: recompute one layer, offload the
        // rest (this repo's extension of the paper's open question).
        PlacementStrategy::Hybrid {
            recompute_layers: 1,
        },
    ];
    for hidden in [12288usize, 14336] {
        let mut rows = Vec::new();
        for batch in [4usize, 8, 16] {
            for strategy in strategies {
                let mut s = paper_session(Arch::Bert, hidden, 3, batch, strategy);
                let m = measured_step(&mut s, strategy);
                rows.push(vec![
                    strategy.to_string(),
                    batch.to_string(),
                    format!("{:.2}", gib(m.act_peak_bytes)),
                    format!("{:.2}", gib(m.alloc.reserved)),
                    format!("{:.1}", m.model_tflops()),
                    format!("{:.3}", m.step_secs),
                    if m.oom { "OOM!".into() } else { "".into() },
                ]);
            }
        }
        print_table(
            &format!("Figure 11 — ROK curve, BERT L3 H{hidden} (x = act peak, y = throughput)"),
            &[
                "strategy",
                "B",
                "act peak GiB",
                "reserved GiB",
                "TFLOP/s",
                "step s",
                "",
            ],
            &rows,
        );
    }
    println!(
        "\npaper claims: offload matches keep's throughput at every batch size with a far \
         lower peak — roughly keep's peak at twice the batch size — while recompute pays \
         ~1/3 extra compute for its memory savings. Offload therefore sits on the ROK \
         plane's upper-left frontier."
    );
}
