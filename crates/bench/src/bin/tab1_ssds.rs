//! Table 1 — endurance-oriented SSD models: rated endurance in petabytes
//! written and price per PBW, plus the sequential-workload endurance
//! stretch (Section 2.3).

use ssdtrain_bench::print_table;
use ssdtrain_simhw::catalog::ssds;

fn main() {
    let mut drives = ssds::table1();
    drives.push(ssds::optane_p5800x());

    let rows: Vec<Vec<String>> = drives
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.cell.clone(),
                format!("{:.1}", d.capacity_bytes as f64 / 1e12),
                format!("{:.0}", d.dwpd),
                format!("{:.0}", d.rated_pbw_bytes() / 1e15),
                format!("${:.1}", d.price_per_pbw()),
                format!("{:.0}", d.endurance_bytes(1.0) / 1e15),
            ]
        })
        .collect();
    print_table(
        "Table 1 — SSDs with high endurance (plus the Table 3 testbed drive)",
        &[
            "model",
            "cell",
            "TB",
            "DWPD",
            "rated PBW",
            "$/PBW",
            "seq-PBW (WAF 1)",
        ],
        &rows,
    );
    println!(
        "\npaper values: FL6 342 PBW @ $13.9/PBW; D7-P5620 65.4 PBW @ $43.8/PBW; \
         D7-P5810 146 PBW @ $11.1/PBW; P5800X ≈ $10.27/PBW. Sequential activation \
         offloading stretches a JESD rating by ~2.5x (WAF 2.5 → 1)."
    );
}
