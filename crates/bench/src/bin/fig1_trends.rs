//! Figure 1 — the growth of GPU FP16 throughput, LLM sizes and GPU
//! memory capacity. Prints the trend points and the fitted growth rates,
//! and checks the paper's claim that memory capacity grows slower than
//! the square root of throughput.

use ssdtrain_analysis::scaling::{fit_exponential, FIGURE1_WINDOW_END};
use ssdtrain_bench::print_table;
use ssdtrain_simhw::catalog::{accelerators, llms};

fn main() {
    let rows: Vec<Vec<String>> = accelerators()
        .iter()
        .map(|a| {
            vec![
                a.name.clone(),
                format!("{:.1}", a.year),
                format!("{:.0}", a.fp16_tflops),
                format!("{:.0}", a.memory_gb),
            ]
        })
        .collect();
    print_table(
        "Figure 1a — accelerators (FP16 TFLOP/s, memory GB)",
        &["device", "year", "tflops", "mem GB"],
        &rows,
    );

    let rows: Vec<Vec<String>> = llms()
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.1}", l.year),
                format!("{:.3}", l.params_b),
            ]
        })
        .collect();
    print_table(
        "Figure 1b — LLM sizes (B params)",
        &["model", "year", "params"],
        &rows,
    );

    let window =
        |f: &dyn Fn(&ssdtrain_simhw::catalog::AcceleratorPoint) -> f64| -> Vec<(f64, f64)> {
            accelerators()
                .iter()
                .filter(|a| a.year <= FIGURE1_WINDOW_END)
                .map(|a| (a.year, f(a)))
                .collect()
        };
    let flops_fit = fit_exponential(&window(&|a| a.fp16_tflops));
    let mem_fit = fit_exponential(&window(&|a| a.memory_gb));
    let llm_fit = fit_exponential(
        &llms()
            .iter()
            .map(|l| (l.year, l.params_b))
            .collect::<Vec<_>>(),
    );

    print_table(
        "Figure 1 — fitted growth (within the paper's observation window)",
        &["series", "CAGR %/yr", "doubling (yr)"],
        &[
            vec![
                "FP16 throughput".into(),
                format!("{:.0}", flops_fit.cagr() * 100.0),
                format!("{:.2}", flops_fit.doubling_years()),
            ],
            vec![
                "LLM parameters".into(),
                format!("{:.0}", llm_fit.cagr() * 100.0),
                format!("{:.2}", llm_fit.doubling_years()),
            ],
            vec![
                "sqrt(throughput)".into(),
                format!("{:.0}", ((1.0 + flops_fit.cagr()).sqrt() - 1.0) * 100.0),
                format!("{:.2}", flops_fit.doubling_years() * 2.0),
            ],
            vec![
                "GPU memory capacity".into(),
                format!("{:.0}", mem_fit.cagr() * 100.0),
                format!("{:.2}", mem_fit.doubling_years()),
            ],
        ],
    );

    println!(
        "\npaper claim: memory capacity grows slower than sqrt(throughput): {} \
         ({:.3}/yr < {:.3}/yr)",
        if mem_fit.b < flops_fit.b / 2.0 {
            "HOLDS"
        } else {
            "FAILS"
        },
        mem_fit.b,
        flops_fit.b / 2.0
    );
}
