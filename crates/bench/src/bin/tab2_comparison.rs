//! Table 2 — what the paper's two measurable design axes buy: the
//! direct GPU↔SSD data path (GDS) vs a bounce buffer through host
//! memory, and asynchronous (prefetched, forwarded) transfers vs
//! synchronous per-tensor I/O. The third Table 2 axis, interoperability,
//! is architectural (see the printout).
//!
//! BERT H8192 L4 B16 on the Table 3 testbed.

use ssdtrain::{PlacementStrategy, TensorCacheConfig, TraceSink};
use ssdtrain_bench::{export_trace, gib, print_table, sink_for, trace_path_from_args};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{SessionConfig, StepMetrics, TrainSession};

fn run(system: SystemConfig, asynchronous: bool, sink: TraceSink) -> StepMetrics {
    let cache = if asynchronous {
        TensorCacheConfig::default()
    } else {
        TensorCacheConfig {
            prefetch: false,
            forwarding: false,
            cancel_forwarded_stores: false,
            adaptive: false,
            ..TensorCacheConfig::default()
        }
    };
    let cfg = SessionConfig::builder()
        .system(system)
        .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
        .batch_size(16)
        .cache(cache)
        .symbolic(true)
        .seed(42)
        .trace(sink)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    if asynchronous {
        let _ = s.profile_step().expect("profile step");
    }
    s.run_step().expect("step")
}

fn main() {
    let trace_path = trace_path_from_args();
    let sink = sink_for(&trace_path);
    let keep = {
        let cfg = SessionConfig::builder()
            .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
            .batch_size(16)
            .strategy(PlacementStrategy::Keep)
            .symbolic(true)
            .seed(42)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        s.run_step().expect("step")
    };

    let direct = SystemConfig::dac_testbed();
    let via_host = SystemConfig::dac_testbed().with_via_host_path(0.5);
    let rows_spec: [(&str, SystemConfig, bool); 4] = [
        ("TBA: direct path + async", direct.clone(), true),
        ("direct path + sync I/O", direct, false),
        ("via-host path + async", via_host.clone(), true),
        ("via-host path + sync I/O", via_host, false),
    ];

    let mut rows = Vec::new();
    for (name, sys, asynchronous) in rows_spec {
        let m = run(sys, asynchronous, sink.clone());
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", m.step_secs),
            format!("{:+.1}%", (m.step_secs / keep.step_secs - 1.0) * 100.0),
            format!("{:.3}", m.offload.stall_secs),
            format!("{:.2}", gib(m.act_peak_bytes)),
        ]);
    }
    rows.push(vec![
        "keep in GPU memory (reference)".into(),
        format!("{:.3}", keep.step_secs),
        "+0.0%".into(),
        "0.000".into(),
        format!("{:.2}", gib(keep.act_peak_bytes)),
    ]);
    print_table(
        "Table 2 — data-path and async-transfer axes (BERT H8192 L4 B16)",
        &[
            "system style",
            "step s",
            "overhead",
            "stall s",
            "act peak GiB",
        ],
        &rows,
    );
    println!(
        "\npaper's Table 2: earlier SSD-offloading systems either bounce through the CPU\n\
         (halving usable bandwidth and perturbing host workloads) or block computation on\n\
         per-tensor I/O; TBA is the only row with both the direct path and async transfer\n\
         — and the only one matching the keep baseline's step time.\n\
         The third axis, interoperability, is architectural: TBA works below the\n\
         framework through process-local hooks (this repo's cache installs onto any\n\
         graph via two hook registrations), instead of a custom runtime."
    );
    if let Some(path) = trace_path {
        export_trace(&sink, &path);
    }
}
