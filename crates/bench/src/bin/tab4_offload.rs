//! Table 4 — the measured offloaded amount vs the closed-form model
//! estimate, and the PCIe write bandwidth required to fully offload
//! (BERT, batch 16, TP=2).

use ssdtrain::PlacementStrategy;
use ssdtrain_analysis::ActivationModel;
use ssdtrain_bench::{gb, paper_session, print_table};
use ssdtrain_models::Arch;

fn main() {
    let configs = [(8192usize, 4usize), (12288, 3), (16384, 2)];
    let batch = 16;
    let mut rows = Vec::new();
    for (h, l) in configs {
        // Measured: a profiling step offloads everything eligible — the
        // paper's "offloaded amount" row.
        let mut s = paper_session(Arch::Bert, h, l, batch, PlacementStrategy::Offload);
        let (profile, _plan) = s.profile_step().expect("profile step");
        let measured = profile.fwd_io_bytes;
        let step = s.run_step().expect("step");

        let estimate = ActivationModel::fp16(batch, 1024, h, l, 2).step_total_bytes();
        let pcie = measured as f64 / (step.step_secs / 2.0);
        rows.push(vec![
            format!("H{h} L{l}"),
            format!("{:.2}", gb(measured)),
            format!("{:.2}", gb(estimate)),
            format!("{:+.1}%", (estimate as f64 / measured as f64 - 1.0) * 100.0),
            format!("{:.1}", pcie / 1e9),
            format!("{:.3}", step.step_secs),
        ]);
    }
    print_table(
        "Table 4 — offloaded amount vs model estimate (BERT, B=16, TP=2)",
        &[
            "config",
            "measured GB",
            "model GB",
            "model err",
            "PCIe GB/s",
            "step s",
        ],
        &rows,
    );
    println!(
        "\npaper values: measured 10.37 / 12.85 / 10.75 GB vs estimates 11.13 / 12.6 / 11.5 GB;\n\
         PCIe write bandwidth 18.0 / 13.8 / 8.76 GB/s — falling as hidden grows, because\n\
         compute scales with h² while activations scale with h."
    );
}
