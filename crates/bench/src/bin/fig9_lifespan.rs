//! Figure 9 — modelled SSD lifespan, required per-GPU PCIe write
//! bandwidth and maximal per-GPU activation volume for published
//! large-system configurations.

use ssdtrain_analysis::endurance::{figure9_configs, LifespanProjection};
use ssdtrain_bench::print_table;
use ssdtrain_simhw::catalog::megatron_configs;

fn main() {
    let proj = LifespanProjection::default();
    let rows: Vec<Vec<String>> = figure9_configs()
        .iter()
        .map(|cfg| {
            let r = proj.project(cfg);
            vec![
                format!("{} {}B", r.framework, r.params_b),
                r.gpus.to_string(),
                format!("{:.1}", r.step_secs),
                format!("{:.1}", r.act_bytes_per_gpu as f64 / 1e9),
                format!("{:.1}", r.pcie_write_bps / 1e9),
                format!("{:.1}", r.lifespan_years),
                format!("{:.2}", r.max_act_bytes_per_gpu as f64 / 1e12),
                r.max_micro_batch.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 9 — lifespan / PCIe bandwidth / max activations (4x D7-P5810-class 12.8TB per GPU)",
        &[
            "config",
            "GPUs",
            "step s",
            "act GB/GPU",
            "PCIe GB/s",
            "life (yr)",
            "max act TB",
            "micro-b",
        ],
        &rows,
    );

    println!(
        "\npaper claims: lifespan > 3 years everywhere; PCIe write <= 12.1 GB/s; \
         max activations 0.4-1.8 TB with micro-batches 8-32; both improve as the system scales."
    );
    // Retention relaxation note (Section 3.4 / 4.4).
    if let Some(cfg) = figure9_configs().first() {
        let row = proj.project(cfg);
        let relaxed = proj.lifespan_with_retention_relaxation(&row, 3.0 * 365.25, 3.0);
        println!(
            "retention relaxation 3y→3d multiplies the first row's lifespan {:.1}y → {:.0}y (~50x)",
            row.lifespan_years, relaxed
        );
    }

    // Completeness: the sub-8k-hidden configs the figure excludes.
    let rows: Vec<Vec<String>> = megatron_configs()
        .iter()
        .filter(|c| c.hidden < 8192)
        .map(|cfg| {
            let r = proj.project(cfg);
            vec![
                format!("{} {}B", r.framework, r.params_b),
                cfg.hidden.to_string(),
                format!("{:.1}", r.pcie_write_bps / 1e9),
                format!("{:.1}", r.lifespan_years),
            ]
        })
        .collect();
    print_table(
        "(excluded sub-8k-hidden configs: unfavourable bytes/FLOP, see EXPERIMENTS.md)",
        &["config", "hidden", "PCIe GB/s", "life (yr)"],
        &rows,
    );
}
