//! Capacity bench: the largest BERT (L4, TP=2, batch 16) that trains
//! without OOM on one 40 GB A100, per offload backend, with gradients
//! and optimizer state offloaded alongside activations — and with the
//! optimizer update either inline or overlapped into the next step's
//! forward. The host pool is deliberately bounded so the dram-only
//! backend hits Figure 2's wall while the array keeps absorbing state.
//!
//! Prints a table and emits `results/BENCH_capacity.json`; the
//! `scripts/bench_check.sh` gates read that file.

use ssdtrain::{OffloadClass, TensorCacheConfig};
use ssdtrain_bench::{gb, paper_testbed, print_table};
use ssdtrain_models::Arch;
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{OffloadBackend, StepMetrics, TrainSession};

const LAYERS: usize = 4;
const BATCH: usize = 16;
/// Hidden sizes are probed on this grid (attention heads want
/// power-of-two-ish multiples).
const HIDDEN_STEP: usize = 512;
const HIDDEN_MAX: usize = 32768;
/// A bounded pinned host pool: big enough for part of a step, far from
/// the unbounded array.
const HOST_POOL_BYTES: u64 = 8 << 30;
/// Common hidden size for the overlap-timing comparison, small enough
/// that every backend fits it.
const TIMING_HIDDEN: usize = 4096;

fn system() -> SystemConfig {
    let mut sys = SystemConfig::dac_testbed();
    sys.host_mem_bytes = HOST_POOL_BYTES;
    sys
}

fn session(backend: OffloadBackend, overlap: bool, hidden: usize) -> TrainSession {
    let cfg = paper_testbed(Arch::Bert, hidden, LAYERS, BATCH)
        .system(system())
        .cache(TensorCacheConfig::default())
        .offload(OffloadClass::Gradient, true)
        .offload(OffloadClass::OptimizerState, true)
        .overlap_optimizer(overlap)
        .momentum(0.9)
        .backend(backend)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session construction")
}

/// Two steps (the first bootstraps the offloaded state; the second is
/// the steady-state shape) — the configuration "fits" when both stay
/// under the device limit.
fn fits(backend: OffloadBackend, overlap: bool, hidden: usize) -> bool {
    let mut s = session(backend, overlap, hidden);
    (0..2).all(|_| s.run_step().map(|m| !m.oom).unwrap_or(false))
}

struct Row {
    label: &'static str,
    overlap: bool,
    max_hidden: usize,
    metrics: StepMetrics,
    planned_state_io_secs: f64,
}

/// Largest hidden size on the grid that fits, by binary search over the
/// grid indices (fitting is monotone in the model size).
fn max_hidden(backend: OffloadBackend, overlap: bool) -> usize {
    let (mut lo, mut hi) = (0, HIDDEN_MAX / HIDDEN_STEP); // lo fits, hi unknown
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if fits(backend, overlap, mid * HIDDEN_STEP) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo * HIDDEN_STEP
}

fn run_config(label: &'static str, backend: OffloadBackend, overlap: bool) -> Row {
    let best = max_hidden(backend, overlap);
    assert!(best > 0, "{label}: even the smallest model must fit");
    let mut s = session(backend, overlap, best);
    let _ = s.run_step().expect("bootstrap step");
    let metrics = s.run_step().expect("steady step");

    // Price one steady-state optimizer update on the cost model: every
    // state byte of the step loaded once and stored once on its tier.
    let cache = s.cache().expect("state classes force a cache");
    let cost = cache.cost_model();
    let state_bytes: u64 = [OffloadClass::Gradient, OffloadClass::OptimizerState]
        .iter()
        .filter_map(|c| metrics.offload.class(*c))
        .map(|c| c.offloaded_bytes)
        .sum();
    let planned_state_io_secs = cost.state_job_secs(0, state_bytes, state_bytes);

    Row {
        label,
        overlap,
        max_hidden: best,
        metrics,
        planned_state_io_secs,
    }
}

/// Inline-vs-overlap timing at a common size every backend fits.
struct Timing {
    backend: &'static str,
    step_secs: [f64; 2],
    opt_secs_inline: f64,
    opt_exposed_overlap: f64,
}

fn timing(backend_label: &'static str, backend: OffloadBackend) -> Timing {
    let steady = |overlap: bool| -> StepMetrics {
        let mut s = session(backend, overlap, TIMING_HIDDEN);
        let _ = s.run_step().expect("bootstrap step");
        // Step 2 carries the first deferred update; step 3 is steady.
        let _ = s.run_step().expect("step");
        s.run_step().expect("steady step")
    };
    let inline = steady(false);
    let overlapped = steady(true);
    Timing {
        backend: backend_label,
        step_secs: [inline.step_secs, overlapped.step_secs],
        opt_secs_inline: inline.opt_secs,
        opt_exposed_overlap: overlapped.opt_exposed_secs,
    }
}

fn emit_json(rows: &[Row], timings: &[Timing]) {
    let mut out = format!(
        "{{\n  \"bench\": \"capacity\",\n  \"model\": \"bert_l{LAYERS}_tp2\",\n  \"batch\": {BATCH},\n  \"host_pool_bytes\": {HOST_POOL_BYTES},\n  \"configs\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let m = &row.metrics;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"overlap\": {}, \"max_hidden\": {}, \"step_secs\": {:.6}, \"opt_secs\": {:.6}, \"opt_exposed_secs\": {:.6}, \"offloaded_bytes\": {}, \"total_peak_bytes\": {}, \"planned_state_io_secs\": {:.6}}}{}\n",
            row.label,
            row.overlap,
            row.max_hidden,
            m.step_secs,
            m.opt_secs,
            m.opt_exposed_secs,
            m.offload.offloaded_bytes,
            m.total_peak_bytes,
            row.planned_state_io_secs,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"timing_hidden\": {TIMING_HIDDEN},\n  \"timing\": [\n"
    ));
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"step_secs_inline\": {:.6}, \"step_secs_overlap\": {:.6}, \"opt_secs_inline\": {:.9}, \"opt_exposed_overlap\": {:.9}}}{}\n",
            t.backend,
            t.step_secs[0],
            t.step_secs[1],
            t.opt_secs_inline,
            t.opt_exposed_overlap,
            if i + 1 < timings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_capacity.json", &out).is_ok()
    {
        println!("\nwritten results/BENCH_capacity.json");
    }
}

fn main() {
    let tiered = OffloadBackend::Tiered {
        dram_bytes: 4 << 30,
    };
    let rows = vec![
        run_config("ssd", OffloadBackend::Ssd, false),
        run_config("ssd", OffloadBackend::Ssd, true),
        run_config("dram", OffloadBackend::Dram, false),
        run_config("dram", OffloadBackend::Dram, true),
        run_config("tiered-4g", tiered, false),
        run_config("tiered-4g", tiered, true),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            vec![
                row.label.to_owned(),
                if row.overlap { "yes" } else { "no" }.to_owned(),
                format!("{}", row.max_hidden),
                format!("{:.3}", m.step_secs),
                format!("{:.4}", m.opt_secs),
                format!("{:.4}", m.opt_exposed_secs),
                format!("{:.2}", gb(m.offload.offloaded_bytes)),
                format!("{:.2}", gb(m.total_peak_bytes)),
                format!("{:.4}", row.planned_state_io_secs),
            ]
        })
        .collect();
    print_table(
        &format!("Max trainable BERT-L{LAYERS} (TP=2, B={BATCH}) on 40 GB, by backend"),
        &[
            "backend",
            "overlap",
            "max hidden",
            "step s",
            "opt s",
            "opt exposed s",
            "offloaded GB",
            "peak GB",
            "planned state io s",
        ],
        &table,
    );

    let timings = vec![
        timing("ssd", OffloadBackend::Ssd),
        timing("dram", OffloadBackend::Dram),
        timing("tiered-4g", tiered),
    ];
    println!("\noverlap timing at H{TIMING_HIDDEN} (steady step):");
    for t in &timings {
        println!(
            "  {:<9}: inline opt {:.6}s vs overlapped exposure {:.6}s (step {:.3}s -> {:.3}s)",
            t.backend, t.opt_secs_inline, t.opt_exposed_overlap, t.step_secs[0], t.step_secs[1],
        );
    }

    emit_json(&rows, &timings);
    println!(
        "\nthe array-backed backends keep absorbing gradients and momentum after the\n\
         bounded host pool is full, so their largest trainable model exceeds the\n\
         dram-only offloader's; overlapping the update hides its loads behind the\n\
         next forward instead of paying them at the step boundary."
    );
}
