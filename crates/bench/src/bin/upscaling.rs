//! Section 4.4, "Impact of upscaling": in large pipelined systems the
//! activation memory TBA frees can buy pipeline utilisation — more
//! micro-batches shrink the (pp−1)/(m+pp−1) bubble — and the bandwidth
//! needed to hide the I/O *falls* as systems scale (weak scaling:
//! S_activations ∝ C^(5/6)).

use ssdtrain::PlacementStrategy;
use ssdtrain_analysis::activations::ActivationModel;
use ssdtrain_analysis::endurance::{figure9_configs, LifespanProjection};
use ssdtrain_analysis::pipeline::{max_micro_batches, pipeline_efficiency, stage_residency};
use ssdtrain_analysis::zero::{ZeroMemoryModel, ZeroStage};
use ssdtrain_bench::{measured_step, paper_session, print_table};
use ssdtrain_models::Arch;
use ssdtrain_train::PipelineSim;

fn main() {
    // A 76B pipelined configuration (TP 8 × PP 4, per the catalog).
    let cfg = figure9_configs()
        .into_iter()
        .find(|c| (c.params_b - 76.1).abs() < 0.5)
        .expect("76B config");
    let layers_per_stage = cfg.layers / cfg.pp;
    let per_mb =
        ActivationModel::fp16(8, cfg.seq, cfg.hidden, layers_per_stage, cfg.tp).with_seq_parallel();

    // Memory left for activations after ZeRO-1 others.
    let others = ZeroMemoryModel::new(
        (cfg.params_b * 1e9) as u64 / (cfg.tp * cfg.pp) as u64,
        cfg.gpus / (cfg.tp * cfg.pp),
        ZeroStage::Stage1,
    )
    .others_bytes_per_gpu();
    // The scaling study's A100s are 40 GB parts.
    let budget = (40u64 << 30).saturating_sub(others);

    let mut rows = Vec::new();
    for m in [1usize, 2, 4, 8, 16, 32] {
        let r = stage_residency(&per_mb, cfg.pp, m);
        let fits_keep = r.keep_bytes <= budget;
        rows.push(vec![
            m.to_string(),
            format!("{:.0}%", pipeline_efficiency(cfg.pp, m) * 100.0),
            format!("{:.1}", r.keep_bytes as f64 / 1e9),
            if fits_keep {
                "yes".into()
            } else {
                "OOM".into()
            },
            format!("{:.1}", r.offload_bytes as f64 / 1e9),
            "yes".into(),
        ]);
    }
    print_table(
        &format!(
            "Pipeline utilisation vs activation residency — {}B, PP {} (budget {:.0} GB)",
            cfg.params_b,
            cfg.pp,
            budget as f64 / 1e9
        ),
        &[
            "micro-b",
            "pipe eff",
            "keep GB",
            "fits?",
            "offload GB",
            "fits?",
        ],
        &rows,
    );

    let (keep_max, offload_ok) = max_micro_batches(&per_mb, cfg.pp, budget);
    println!(
        "\nkeep can hold at most ~{keep_max} resident micro-batches; offloading holds a \
         constant ~{:.1} GB regardless of m (offload fits: {offload_ok}).",
        stage_residency(&per_mb, cfg.pp, 1).offload_bytes as f64 / 1e9
    );

    // Weak scaling: bandwidth need falls with system size.
    let proj = LifespanProjection::default();
    let rows: Vec<Vec<String>> = figure9_configs()
        .iter()
        .filter(|c| c.framework == "Megatron")
        .map(|c| {
            let r = proj.project(c);
            vec![
                format!("{}B / {} GPUs", c.params_b, c.gpus),
                format!("{:.1}", r.pcie_write_bps / 1e9),
                format!("{:.1}", r.lifespan_years),
            ]
        })
        .collect();
    print_table(
        "Weak scaling — required bandwidth falls, lifespan grows",
        &["system", "PCIe GB/s", "lifespan yr"],
        &rows,
    );

    // Ground the pipeline discussion in a measured single-stage step:
    // one 8192-hidden, 4-layer stage (B=4 per micro-batch) on the
    // testbed, keep vs offload, then simulate the 1F1B schedule.
    let mut keep = paper_session(Arch::Bert, 8192, 4, 4, PlacementStrategy::Keep);
    let mk = measured_step(&mut keep, PlacementStrategy::Keep);
    let mut off = paper_session(Arch::Bert, 8192, 4, 4, PlacementStrategy::Offload);
    let mo = measured_step(&mut off, PlacementStrategy::Offload);

    let pp = 4;
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16, 32] {
        let sim = PipelineSim::from_step_metrics(pp, m, &mk, mo.act_peak_bytes, 0.002);
        let r = sim.run();
        rows.push(vec![
            m.to_string(),
            format!("{:.3}", r.step_secs),
            format!("{:.0}%", r.bubble_fraction * 100.0),
            format!("{:.1}", r.keep_peak_bytes as f64 / 1e9),
            format!("{:.1}", r.offload_peak_bytes as f64 / 1e9),
        ]);
    }
    print_table(
        "Measured-grounded 1F1B simulation (stage = BERT H8192 L4, mb of 4 seqs)",
        &[
            "micro-b",
            "step s",
            "bubble",
            "keep GB/stage",
            "offload GB/stage",
        ],
        &rows,
    );
    println!(
        "\npaper: \"the scaling of LLM is essentially a weak scaling scenario, and the\n\
         SSD IO latency is easier to hide when it is scaled up.\""
    );
}
