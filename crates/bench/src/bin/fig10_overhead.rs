//! Figure 10 — step time and activation memory peak with and without
//! TBA offloading, for BERT/GPT/T5 at the paper's three
//! (hidden, layers) points, batch 16, tensor-parallel over 2 GPUs.

use ssdtrain::PlacementStrategy;
use ssdtrain_bench::{
    export_trace, gib, measured_step, paper_session, paper_session_traced, print_table, sink_for,
    trace_path_from_args,
};
use ssdtrain_models::Arch;

fn main() {
    let trace_path = trace_path_from_args();
    let sink = sink_for(&trace_path);
    let configs = [(8192usize, 4usize), (12288, 3), (16384, 2)];
    let archs = [Arch::Bert, Arch::Gpt, Arch::T5];
    let batch = 16;

    let mut rows = Vec::new();
    for arch in archs {
        for (h, l) in configs {
            let mut keep = paper_session(arch, h, l, batch, PlacementStrategy::Keep);
            let mk = measured_step(&mut keep, PlacementStrategy::Keep);
            let mut off =
                paper_session_traced(arch, h, l, batch, PlacementStrategy::Offload, sink.clone());
            let mo = measured_step(&mut off, PlacementStrategy::Offload);
            let overhead = (mo.step_secs / mk.step_secs - 1.0) * 100.0;
            let reduction = (1.0 - mo.act_peak_bytes as f64 / mk.act_peak_bytes as f64) * 100.0;
            rows.push(vec![
                format!("{arch} H{h} L{l}"),
                format!("{:.3}", mk.step_secs),
                format!("{:.3}", mo.step_secs),
                format!("{:+.2}%", overhead),
                format!("{:.2}", gib(mk.act_peak_bytes)),
                format!("{:.2}", gib(mo.act_peak_bytes)),
                format!("{:.0}%", reduction),
                format!("{:.4}", mo.offload.stall_secs),
            ]);
        }
    }
    print_table(
        "Figure 10 — step time and activation peak, keep vs TBA offload (B=16, TP=2)",
        &[
            "model", "keep s", "TBA s", "overhead", "keep GiB", "TBA GiB", "peak cut", "stall s",
        ],
        &rows,
    );
    println!(
        "\npaper claims: TBA has almost no step-time overhead in all cases (I/O fully \
         overlapped; stall ≈ 0) and cuts the activation peak by 28–47%."
    );
    if let Some(path) = trace_path {
        export_trace(&sink, &path);
    }
}
