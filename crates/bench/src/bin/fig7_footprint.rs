//! Figure 7 — the memory footprint of one GPU in a BERT training step
//! with and without offloading: the offloaded curve's peak is lower and
//! delayed into backward propagation, and the level at the start of
//! backward drops sharply.

use ssdtrain::PlacementStrategy;
use ssdtrain_bench::{gib, measured_step, paper_session, print_table};
use ssdtrain_models::Arch;

fn main() {
    // The paper's Figure 7 BERT config on the Table 3 testbed.
    let (h, l, b) = (8192, 4, 16);

    let mut keep = paper_session(Arch::Bert, h, l, b, PlacementStrategy::Keep);
    let mk = measured_step(&mut keep, PlacementStrategy::Keep);
    let mut off = paper_session(Arch::Bert, h, l, b, PlacementStrategy::Offload);
    let mo = measured_step(&mut off, PlacementStrategy::Offload);

    // Sample both timelines on a common grid.
    let end = mk.step_secs.max(mo.step_secs);
    let samples = 24;
    let level = |m: &ssdtrain_train::StepMetrics, t: f64| -> u64 {
        m.timeline
            .iter()
            .take_while(|p| p.time.as_secs() <= t)
            .last()
            .map(|p| p.activations)
            .unwrap_or(0)
    };
    let rows: Vec<Vec<String>> = (0..=samples)
        .map(|i| {
            let t = end * i as f64 / samples as f64;
            vec![
                format!("{:.3}", t),
                format!("{:.2}", gib(level(&mk, t))),
                format!("{:.2}", gib(level(&mo, t))),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 7 — BERT H{h} L{l} B{b} activation footprint (GiB)"),
        &["t (s)", "keep", "offload"],
        &rows,
    );

    let at_bwd_reduction = 1.0 - mo.act_at_bwd_start as f64 / mk.act_at_bwd_start.max(1) as f64;
    let peak_reduction = 1.0 - mo.act_peak_bytes as f64 / mk.act_peak_bytes.max(1) as f64;
    println!(
        "\nforward ends at {:.3}s; offload peak occurs at t={:.3}s (delayed into backward)",
        mo.fwd_secs,
        mo.timeline
            .iter()
            .max_by(|a, b| a.activations.cmp(&b.activations))
            .map(|p| p.time.as_secs())
            .unwrap_or(0.0)
    );
    println!(
        "reduction at start of backward: {:.0}% (paper Fig. 7: 45%)",
        at_bwd_reduction * 100.0
    );
    println!(
        "end-to-end activation peak reduction: {:.0}% (paper Fig. 7: 25% total footprint; \
         Fig. 10: 28–40% activations)",
        peak_reduction * 100.0
    );
    println!(
        "allocator events: keep {} vs offload {} (offloading adds release/reload events)",
        mk.timeline.len(),
        mo.timeline.len()
    );
}
