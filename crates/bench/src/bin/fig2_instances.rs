//! Figure 2 — clusters and cloud instances have limited host memory,
//! while local NVMe is far larger and elastic.

use ssdtrain_bench::print_table;
use ssdtrain_simhw::catalog::instances;

fn main() {
    let rows: Vec<Vec<String>> = instances()
        .iter()
        .map(|i| {
            vec![
                i.name.clone(),
                i.gpus.to_string(),
                format!("{:.0}", i.host_mem_gb),
                format!("{:.0}", i.host_mem_gb / i.gpus as f64),
                format!("{:.0}", i.local_ssd_gb),
                format!("{:.1}x", i.local_ssd_gb / i.host_mem_gb),
            ]
        })
        .collect();
    print_table(
        "Figure 2 — host memory vs local SSD per node",
        &[
            "instance",
            "GPUs",
            "host GB",
            "host GB/GPU",
            "SSD GB",
            "SSD/host",
        ],
        &rows,
    );
    println!(
        "\npaper claim: host memory per GPU is bounded (~100–250 GB) while SSDs reach \
         tens of TB and can be extended with more drives or remote storage."
    );
}
