//! Workspace discovery: find and lex every first-party `.rs` file.

use crate::lexer::{lex, Lexed};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names that are never first-party source: build output,
/// vendored offline dep shims, VCS metadata, and the lint's own seeded
/// fixture trees (which exist to *contain* violations).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    /// Raw source lines (for suppression spans and context).
    pub lines: Vec<String>,
    /// Token stream and comments.
    pub lexed: Lexed,
}

/// Every scanned file of the workspace under one root.
#[derive(Debug)]
pub struct Workspace {
    /// The scanned root directory.
    pub root: PathBuf,
    /// Files sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root`, lexing every `.rs` file outside the skip list.
    ///
    /// # Errors
    /// Returns an error if the root cannot be read; unreadable
    /// individual files are skipped.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        collect(root, root, &mut paths)?;
        paths.sort();
        let files = paths
            .into_iter()
            .filter_map(|rel| {
                let src = fs::read_to_string(root.join(&rel)).ok()?;
                Some(SourceFile {
                    rel,
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(&src),
                })
            })
            .collect();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_vendor_target_and_fixture_trees() {
        let dir = std::env::temp_dir().join(format!("ssdtrain-lint-ws-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for sub in [
            "src",
            "vendor/dep/src",
            "target/debug",
            "tests/fixtures/bad",
        ] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        fs::write(dir.join("src/lib.rs"), "pub fn ok() {}").unwrap();
        fs::write(dir.join("vendor/dep/src/lib.rs"), "junk").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "junk").unwrap();
        fs::write(dir.join("tests/fixtures/bad/x.rs"), "junk").unwrap();
        let ws = Workspace::load(&dir).unwrap();
        let rels: Vec<&str> = ws.files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, vec!["src/lib.rs"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
