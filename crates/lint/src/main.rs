//! `ssdtrain-lint` CLI.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use ssdtrain_lint::{lint_root, rules, sarif};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

const USAGE: &str = "\
ssdtrain-lint: workspace-aware static analysis for the SSDTrain repo

USAGE:
    ssdtrain-lint [OPTIONS]

OPTIONS:
    --root <dir>      Workspace root to lint (default: current directory)
    --format <fmt>    Output format: text | json | sarif (default: text)
    --changed-only    Only report diagnostics in files changed since the
                      merge base with origin/main (falls back to main;
                      lints everything if git is unavailable)
    --list-rules      Print the rule catalogue and exit
    -h, --help        Print this help
";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    format: Format,
    changed_only: bool,
    list_rules: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("ssdtrain-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules::registry() {
            println!("{:<24} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let only = if opts.changed_only {
        changed_paths(&opts.root)
    } else {
        None
    };
    let report = match lint_root(&opts.root, only.as_ref()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("ssdtrain-lint: cannot scan {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
        Format::Sarif => print!("{}", sarif::render_sarif(&report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        changed_only: false,
        list_rules: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format must be `text`, `json` or `sarif`, got {}",
                        other.unwrap_or("nothing")
                    ));
                }
            },
            "--changed-only" => opts.changed_only = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Workspace-relative paths changed since the merge base with
/// `origin/main` (or `main`), plus untracked files. `None` (lint
/// everything) when git is unavailable or no base branch exists —
/// failing open here would hide violations, so we fail closed to a
/// full lint instead.
fn changed_paths(root: &std::path::Path) -> Option<BTreeSet<String>> {
    let base = ["origin/main", "main"].iter().find_map(|branch| {
        let out = git(root, &["merge-base", "HEAD", branch])?;
        let base = out.trim().to_owned();
        (!base.is_empty()).then_some(base)
    })?;
    let mut paths = BTreeSet::new();
    let diff = git(root, &["diff", "--name-only", &base])?;
    paths.extend(diff.lines().map(str::to_owned));
    if let Some(untracked) = git(root, &["ls-files", "--others", "--exclude-standard"]) {
        paths.extend(untracked.lines().map(str::to_owned));
    }
    Some(paths)
}

fn git(root: &std::path::Path, args: &[&str]) -> Option<String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}
