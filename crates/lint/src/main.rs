//! `ssdtrain-lint` CLI.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use ssdtrain_lint::{lint_root, rules, sarif};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

const USAGE: &str = "\
ssdtrain-lint: workspace-aware static analysis for the SSDTrain repo

USAGE:
    ssdtrain-lint [OPTIONS]

OPTIONS:
    --root <dir>      Workspace root to lint (default: current directory)
    --format <fmt>    Output format: text | json | sarif (default: text)
    --changed-only    Only report diagnostics in files changed since the
                      merge base with origin/main (falls back to main;
                      lints everything if git is unavailable)
    --list-rules      Print the rule catalogue and exit
    --explain <rule>  Print one rule's full documentation (what, why,
                      example, suppression syntax) and exit
    -h, --help        Print this help
";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    format: Format,
    changed_only: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("ssdtrain-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules::registry() {
            println!("{:<24} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &opts.explain {
        return explain(name);
    }

    let only = if opts.changed_only {
        changed_paths(&opts.root)
    } else {
        None
    };
    let report = match lint_root(&opts.root, only.as_ref()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("ssdtrain-lint: cannot scan {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
        Format::Sarif => print!("{}", sarif::render_sarif(&report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Prints the full documentation of one rule. The `suppression`
/// pseudo-rule (not in the registry, not suppressible) is documented
/// too — it shows up in reports, so `--explain suppression` must work.
fn explain(name: &str) -> ExitCode {
    if name == "suppression" {
        println!("suppression");
        println!("  malformed or unknown `ssdtrain-lint: allow(...)` directive\n");
        println!("WHY");
        println!(
            "  An allow comment that names an unknown rule or omits its reason silences\n  \
             nothing — pretending otherwise would hide real violations. Malformed allows\n  \
             are therefore violations themselves, and they cannot be suppressed: nobody\n  \
             can silence the silencer."
        );
        println!("\nSUPPRESSION");
        println!("  Not suppressible. Fix the directive instead.");
        return ExitCode::SUCCESS;
    }
    let registry = rules::registry();
    let Some(rule) = registry.iter().find(|r| r.name() == name) else {
        let names = rules::rule_names();
        let hint = rules::did_you_mean(name, &names)
            .map(|m| format!(" — did you mean `{m}`?"))
            .unwrap_or_default();
        eprintln!("ssdtrain-lint: unknown rule `{name}`{hint} (see --list-rules)");
        return ExitCode::from(2);
    };
    println!("{}", rule.name());
    println!("  {}\n", rule.description());
    println!("WHY");
    for line in wrap(rule.rationale(), 76) {
        println!("  {line}");
    }
    println!("\nEXAMPLE");
    for line in rule.example().lines() {
        println!("  {}", line.trim_end());
    }
    println!("\nSUPPRESSION");
    println!("  // ssdtrain-lint: allow({}): <reason>", rule.name());
    println!(
        "  Trailing form suppresses its own line; standalone form suppresses the next\n  \
         code line. The reason is mandatory. For effect-driven findings, an allow at\n  \
         the seed releases every transitive caller."
    );
    ExitCode::SUCCESS
}

/// Greedy word-wrap at `width` columns.
fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            out.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        out.push(line);
    }
    out
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        changed_only: false,
        list_rules: false,
        explain: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format must be `text`, `json` or `sarif`, got {}",
                        other.unwrap_or("nothing")
                    ));
                }
            },
            "--changed-only" => opts.changed_only = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Workspace-relative paths changed since the merge base with
/// `origin/main` (or `main`), plus untracked files. `None` (lint
/// everything) when git is unavailable or no base branch exists —
/// failing open here would hide violations, so we fail closed to a
/// full lint instead.
fn changed_paths(root: &std::path::Path) -> Option<BTreeSet<String>> {
    let base = ["origin/main", "main"].iter().find_map(|branch| {
        let out = git(root, &["merge-base", "HEAD", branch])?;
        let base = out.trim().to_owned();
        (!base.is_empty()).then_some(base)
    })?;
    let mut paths = BTreeSet::new();
    let diff = git(root, &["diff", "--name-only", &base])?;
    paths.extend(diff.lines().map(str::to_owned));
    if let Some(untracked) = git(root, &["ls-files", "--others", "--exclude-standard"]) {
        paths.extend(untracked.lines().map(str::to_owned));
    }
    Some(paths)
}

fn git(root: &std::path::Path, args: &[&str]) -> Option<String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}
