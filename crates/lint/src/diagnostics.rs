//! Diagnostics, deterministic ordering, and the two output formats.

use std::fmt::Write as _;

/// A secondary location an interprocedural diagnostic points at: the
/// intermediate call sites and the effect seed of a chain finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelatedLocation {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What this location contributes to the finding.
    pub message: String,
}

/// One rule violation, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the rule that fired (kebab-case).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
    /// Chain locations for interprocedural findings (empty for local
    /// ones); SARIF renders them as `relatedLocations`.
    pub related: Vec<RelatedLocation>,
}

impl Diagnostic {
    /// A diagnostic with no related locations.
    pub fn new(rule: &'static str, path: String, line: u32, col: u32, message: String) -> Self {
        Diagnostic {
            rule,
            path,
            line,
            col,
            message,
            related: Vec::new(),
        }
    }
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (path, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Diagnostics silenced by `ssdtrain-lint: allow(…)` comments.
    pub suppressed: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sorts by path, then line, then column, then rule name, and drops
    /// duplicate (rule, path, line) entries — several token patterns on
    /// one line are one violation. The order is a pure function of the
    /// diagnostics, so output is byte-stable across filesystems and
    /// directory-walk orders.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        self.diagnostics
            .dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                d.path, d.line, d.col, d.rule, d.message
            );
        }
        let _ = writeln!(
            out,
            "ssdtrain-lint: {} violation(s), {} file(s) scanned, {} suppressed",
            self.diagnostics.len(),
            self.files_scanned,
            self.suppressed
        );
        out
    }

    /// Renders the machine-readable report: stable field order, sorted
    /// violations, 2-space indent, trailing newline.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        if self.diagnostics.is_empty() {
            out.push_str("  \"violations\": []\n");
        } else {
            out.push_str("  \"violations\": [\n");
            for (i, d) in self.diagnostics.iter().enumerate() {
                let comma = if i + 1 == self.diagnostics.len() {
                    ""
                } else {
                    ","
                };
                let mut related = String::new();
                if !d.related.is_empty() {
                    related.push_str(", \"related\": [");
                    for (j, r) in d.related.iter().enumerate() {
                        let rcomma = if j + 1 == d.related.len() { "" } else { ", " };
                        let _ = write!(
                            related,
                            "{{\"path\": {}, \"line\": {}, \"column\": {}, \
                             \"message\": {}}}{rcomma}",
                            json_str(&r.path),
                            r.line,
                            r.col,
                            json_str(&r.message)
                        );
                    }
                    related.push(']');
                }
                let _ = writeln!(
                    out,
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \
                     \"message\": {}{related}}}{comma}",
                    json_str(d.rule),
                    json_str(&d.path),
                    d.line,
                    d.col,
                    json_str(&d.message)
                );
            }
            out.push_str("  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: u32, col: u32) -> Diagnostic {
        Diagnostic::new(rule, path.to_owned(), line, col, "m".to_owned())
    }

    #[test]
    fn normalize_sorts_and_dedups_per_line() {
        let mut r = Report {
            diagnostics: vec![
                diag("b-rule", "b.rs", 2, 1),
                diag("a-rule", "a.rs", 9, 4),
                diag("a-rule", "a.rs", 9, 1),
                diag("a-rule", "a.rs", 3, 1),
            ],
            files_scanned: 2,
            suppressed: 0,
        };
        r.normalize();
        let keys: Vec<(String, u32, u32)> = r
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line, d.col))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs".to_owned(), 3, 1),
                ("a.rs".to_owned(), 9, 1),
                ("b.rs".to_owned(), 2, 1)
            ]
        );
    }

    #[test]
    fn json_is_escaped_and_terminated() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic::new(
            "r",
            "a\"b.rs".to_owned(),
            1,
            1,
            "tab\there".to_owned(),
        ));
        r.files_scanned = 1;
        let json = r.render_json();
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn related_locations_render_only_when_present() {
        let mut r = Report::default();
        r.diagnostics.push(diag("r", "a.rs", 1, 1));
        let mut with = diag("r", "b.rs", 2, 1);
        with.related.push(RelatedLocation {
            path: "c.rs".to_owned(),
            line: 9,
            col: 3,
            message: "effect seed: panic!".to_owned(),
        });
        r.diagnostics.push(with);
        r.files_scanned = 3;
        let json = r.render_json();
        // The local diagnostic has no `related` key at all.
        let local = json.lines().find(|l| l.contains("\"a.rs\"")).unwrap();
        assert!(!local.contains("related"));
        let chained = json.lines().find(|l| l.contains("\"b.rs\"")).unwrap();
        assert!(chained.contains("\"related\": [{\"path\": \"c.rs\", \"line\": 9"));
        assert!(chained.contains("effect seed: panic!"));
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(r.render_json().contains("\"violations\": []"));
        assert!(r.render_text().contains("0 violation(s)"));
    }
}
