//! `panic-free-hot-path`: the offload path must degrade, not abort.
//!
//! PR 1's `RecoveryPolicy` guarantees that target failures are absorbed
//! or surfaced as typed errors at the step boundary. A stray `unwrap()`
//! in the store/load path turns a recoverable I/O hiccup into a train
//! crash, so panicking constructs are banned in the functions that make
//! up the offload hot path. The rule is scoped per *function*, not per
//! file: `#[test]` functions and `#[cfg(test)]` modules inside hot-path
//! files probe failure edges on purpose and are exempt, while every
//! non-test function is named in its diagnostic.
//!
//! Two layers:
//!
//! 1. **Direct scan** — every `unwrap`/`expect`/`panic!`/`todo!`/
//!    `unreachable!` token inside a hot-path file, exactly as before the
//!    interprocedural engine existed (no lost coverage).
//! 2. **Transitive reachability** — a resolved call from a hot-path
//!    function into a function *outside* the hot set whose inferred
//!    effects contain [`Effect::MayPanicStrict`] is a hidden panic: the
//!    direct scan cannot see it, so the call site is flagged with the
//!    full `entry → helper → seed` chain and SARIF `relatedLocations`.
//!    Indexing seeds are excluded (the strict channel) — they are
//!    ubiquitous in the tensor kernels and carry their own bounds
//!    reasoning. A seed silenced by `allow(panic-free-hot-path)` stops
//!    the whole transitive tree, so one reasoned allow at the seed is
//!    enough.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::effects::Effect;
use crate::engine::LintContext;

/// The offload hot path: cache pack/unpack and recovery, the placement
/// policy and cost model, the tier stack, the I/O engine, the targets,
/// fault injection, the pinned buffer arena and write coalescer every
/// staged byte crosses, the training executors, and the overlapped
/// optimizer engine.
pub(crate) const HOT_PATH: [&str; 12] = [
    "crates/core/src/cache.rs",
    "crates/core/src/coalesce.rs",
    "crates/core/src/placement.rs",
    "crates/core/src/costmodel.rs",
    "crates/core/src/tier.rs",
    "crates/core/src/io.rs",
    "crates/core/src/target.rs",
    "crates/core/src/fault.rs",
    "crates/simhw/src/arena.rs",
    "crates/train/src/executor.rs",
    "crates/train/src/pipeline_exec.rs",
    "crates/train/src/opt_engine.rs",
];

const BANNED_METHODS: [&str; 2] = ["unwrap", "expect"];
const BANNED_MACROS: [&str; 3] = ["panic", "todo", "unreachable"];

pub struct PanicFreeHotPath;

impl Rule for PanicFreeHotPath {
    fn name(&self) -> &'static str {
        "panic-free-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/todo!/unreachable! banned in non-test offload hot-path functions, \
         directly or through calls"
    }

    fn rationale(&self) -> &'static str {
        "The recovery policy guarantees that a failed store or load degrades the step \
         (recompute, skip offload) instead of killing training. One panic anywhere on the \
         store/load path voids that guarantee. The direct scan catches panics written in the \
         hot files themselves; the interprocedural layer catches panics *reached* from the \
         hot path through helper calls — a `pack_into` that ends in `.expect()` three crates \
         away crashes the step just as surely as a local `unwrap()`."
    }

    fn example(&self) -> &'static str {
        "    // crates/core/src/cache.rs (hot path)\n\
             fn flush_all(&mut self) {\n\
                 let block = fetch(self.key);   // <-- flagged: flush_all → fetch → .unwrap()\n\
             }\n\
             // crates/util/src/fetch.rs (not hot, but reached from it)\n\
             fn fetch(key: u64) -> Block { TABLE.get(&key).unwrap().clone() }\n\
         \n\
         Fix: return `Result<_, OffloadError>` from the helper and propagate with `?`,\n\
         or silence at the seed with a reasoned\n\
         `// ssdtrain-lint: allow(panic-free-hot-path): <why this cannot fail>`."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (fi, fc) in ctx.files.iter().enumerate() {
            if !HOT_PATH.contains(&fc.file.rel.as_str()) {
                continue;
            }
            let toks = &fc.file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if fc.items.is_test_tok(i) {
                    continue;
                }
                let in_fn = || {
                    fc.fn_containing(i)
                        .map(|f| format!(" (in `{}`)", f.name))
                        .unwrap_or_default()
                };
                let prev_dot = i > 0 && toks[i - 1].is_punct(".");
                let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
                if prev_dot && next_paren && BANNED_METHODS.iter().any(|m| t.is_ident(m)) {
                    out.push(Diagnostic::new(
                        "panic-free-hot-path",
                        fc.file.rel.clone(),
                        t.line,
                        t.col,
                        format!(
                            "`.{}()` in the offload hot path{}; propagate a typed \
                             `OffloadError`/`StepError` instead of panicking",
                            t.text,
                            in_fn()
                        ),
                    ));
                }
                if next_bang && BANNED_MACROS.iter().any(|m| t.is_ident(m)) {
                    out.push(Diagnostic::new(
                        "panic-free-hot-path",
                        fc.file.rel.clone(),
                        t.line,
                        t.col,
                        format!(
                            "`{}!` in the offload hot path{}; recovery must absorb or \
                             surface failures as typed errors",
                            t.text,
                            in_fn()
                        ),
                    ));
                }
            }

            // Transitive layer: resolved calls out of the hot set into
            // functions that (transitively) reach an explicit panic.
            // Callees inside the hot set are already covered by the
            // direct scan at their seed, so only escapes are new.
            for (k, f) in fc.items.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                for site in ctx.graph.calls_of((fi, k)) {
                    let Some(callee) = site.callee else { continue };
                    if HOT_PATH.contains(&ctx.files[callee.0].file.rel.as_str()) {
                        continue;
                    }
                    if !ctx.effects.has(callee, Effect::MayPanicStrict) {
                        continue;
                    }
                    let Some(chain) = ctx.effect_chain(&f.name, callee, Effect::MayPanicStrict)
                    else {
                        continue;
                    };
                    let mut d = Diagnostic::new(
                        "panic-free-hot-path",
                        fc.file.rel.clone(),
                        site.line,
                        site.col,
                        format!(
                            "call to `{}` can panic (`{}`, seed at {}:{}); the offload hot \
                             path must propagate typed errors, not abort",
                            ctx.fn_item(callee).name,
                            chain.path,
                            chain.seed_path,
                            chain.seed_line,
                        ),
                    );
                    d.related = chain.related;
                    out.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let ctx = LintContext::new(ws);
        let mut out = Vec::new();
        PanicFreeHotPath.check(&ctx, &mut out);
        out
    }

    #[test]
    fn transitive_panic_across_files_is_flagged_with_the_chain() {
        let ws = ws_of(&[
            (
                "crates/core/src/cache.rs",
                "fn flush_all(k: u64) -> u8 { fetch(k) }\n",
            ),
            (
                "crates/util/src/fetch.rs",
                "pub fn fetch(k: u64) -> u8 { lookup(k).unwrap() }\n\
                 fn lookup(k: u64) -> Option<u8> { None }\n",
            ),
        ]);
        let out = run(&ws);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("flush_all → fetch → .unwrap()"));
        assert!(out[0]
            .message
            .contains("seed at crates/util/src/fetch.rs:1"));
        assert_eq!(out[0].path, "crates/core/src/cache.rs");
        // Related locations: no intermediate hops, just the seed.
        assert_eq!(out[0].related.len(), 1);
        assert_eq!(out[0].related[0].message, "effect seed: .unwrap()");
    }

    #[test]
    fn callees_inside_the_hot_set_report_at_the_seed_only() {
        let ws = ws_of(&[(
            "crates/core/src/io.rs",
            "fn outer() { inner(); }\n\
             fn inner() { panic!(\"boom\"); }\n",
        )]);
        let out = run(&ws);
        // Only the direct macro finding — no duplicate at the call.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`panic!`"));
    }

    #[test]
    fn indexing_reached_through_a_call_is_not_strict() {
        let ws = ws_of(&[
            (
                "crates/core/src/tier.rs",
                "fn pick_tier(v: &[u8]) -> u8 { head(v) }\n",
            ),
            (
                "crates/util/src/sl.rs",
                "pub fn head(v: &[u8]) -> u8 { v[0] }\n",
            ),
        ]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn allow_at_the_seed_silences_the_whole_chain() {
        let ws = ws_of(&[
            (
                "crates/core/src/cache.rs",
                "fn flush_all(k: u64) -> u8 { fetch(k) }\n",
            ),
            (
                "crates/util/src/fetch.rs",
                "pub fn fetch(k: u64) -> u8 {\n\
                 // ssdtrain-lint: allow(panic-free-hot-path): key proven present by caller\n\
                 lookup(k).unwrap()\n\
                 }\n\
                 fn lookup(k: u64) -> Option<u8> { Some(1) }\n",
            ),
        ]);
        assert!(run(&ws).is_empty());
    }
}
