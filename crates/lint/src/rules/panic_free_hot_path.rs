//! `panic-free-hot-path`: the offload path must degrade, not abort.
//!
//! PR 1's `RecoveryPolicy` guarantees that target failures are absorbed
//! or surfaced as typed errors at the step boundary. A stray `unwrap()`
//! in the store/load path turns a recoverable I/O hiccup into a train
//! crash, so panicking constructs are banned in the functions that make
//! up the offload hot path. The rule is scoped per *function*, not per
//! file: `#[test]` functions and `#[cfg(test)]` modules inside hot-path
//! files probe failure edges on purpose and are exempt, while every
//! non-test function is named in its diagnostic.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;

/// The offload hot path: cache pack/unpack and recovery, the placement
/// policy and cost model, the tier stack, the I/O engine, the targets,
/// fault injection, the training executors, and the overlapped
/// optimizer engine.
pub(crate) const HOT_PATH: [&str; 10] = [
    "crates/core/src/cache.rs",
    "crates/core/src/placement.rs",
    "crates/core/src/costmodel.rs",
    "crates/core/src/tier.rs",
    "crates/core/src/io.rs",
    "crates/core/src/target.rs",
    "crates/core/src/fault.rs",
    "crates/train/src/executor.rs",
    "crates/train/src/pipeline_exec.rs",
    "crates/train/src/opt_engine.rs",
];

const BANNED_METHODS: [&str; 2] = ["unwrap", "expect"];
const BANNED_MACROS: [&str; 3] = ["panic", "todo", "unreachable"];

pub struct PanicFreeHotPath;

impl Rule for PanicFreeHotPath {
    fn name(&self) -> &'static str {
        "panic-free-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/todo!/unreachable! banned in non-test offload hot-path functions"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for fc in &ctx.files {
            if !HOT_PATH.contains(&fc.file.rel.as_str()) {
                continue;
            }
            let toks = &fc.file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if fc.items.is_test_tok(i) {
                    continue;
                }
                let in_fn = || {
                    fc.fn_containing(i)
                        .map(|f| format!(" (in `{}`)", f.name))
                        .unwrap_or_default()
                };
                let prev_dot = i > 0 && toks[i - 1].is_punct(".");
                let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
                if prev_dot && next_paren && BANNED_METHODS.iter().any(|m| t.is_ident(m)) {
                    out.push(Diagnostic {
                        rule: "panic-free-hot-path",
                        path: fc.file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`.{}()` in the offload hot path{}; propagate a typed \
                             `OffloadError`/`StepError` instead of panicking",
                            t.text,
                            in_fn()
                        ),
                    });
                }
                if next_bang && BANNED_MACROS.iter().any(|m| t.is_ident(m)) {
                    out.push(Diagnostic {
                        rule: "panic-free-hot-path",
                        path: fc.file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{}!` in the offload hot path{}; recovery must absorb or \
                             surface failures as typed errors",
                            t.text,
                            in_fn()
                        ),
                    });
                }
            }
        }
    }
}
