//! `span-balance`: a manually opened trace span must be closed on
//! every path.
//!
//! `TraceSink::begin_span` exists because a span's end timestamp comes
//! from the simulated clock, which a `Drop` impl cannot read — so the
//! RAII route is closed and the obligation is manual: every
//! [`OpenSpan`](../../../trace/src/lib.rs) must reach `.end(ts)` or
//! `.cancel()` on every CFG path, or the Chrome trace grows
//! `<name>.open` markers where a duration should be. RAII
//! `StageScope`/`stage_scope` helpers close themselves and are
//! naturally outside this rule (they are not `begin_span` calls).

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::facts::{self, Binding};
use crate::engine::LintContext;
use std::collections::HashSet;

pub struct SpanBalance;

impl Rule for SpanBalance {
    fn name(&self) -> &'static str {
        "span-balance"
    }

    fn description(&self) -> &'static str {
        "every begin_span must reach end/cancel (or escape) on all CFG paths"
    }

    fn rationale(&self) -> &'static str {
        "A span's end timestamp comes from the simulated clock, which a `Drop` impl cannot \
         read, so closing spans is a manual obligation. A span leaked on an early return \
         leaves a `<name>.open` marker in the Chrome trace where a duration should be, and \
         every profile built on that trace silently loses the step it cared about."
    }

    fn example(&self) -> &'static str {
        "    let span = self.trace.begin_span(Cat::Step, \"fwd\", t0);\n\
             self.run()?;                    // <-- early exit leaks the span\n\
             span.end(self.clock.now());\n\
         \n\
         Fix: close on the error path too (match the result, `span.cancel()` before\n\
         propagating), or pass the span to the helper so it escapes."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for fc in &ctx.files {
            let toks = &fc.file.lexed.tokens;
            for f in &fc.items.functions {
                // `begin_span` itself returns the open span by design.
                if f.is_test || f.name == "begin_span" {
                    continue;
                }
                let Some(body) = f.body.clone() else { continue };
                let calls: Vec<_> = fc
                    .calls_in(f)
                    .into_iter()
                    .filter(|c| c.name == "begin_span")
                    .collect();
                if calls.is_empty() {
                    continue;
                }
                let cfg = match fc.cfg_of(f) {
                    Some(c) => c,
                    None => continue,
                };
                for call in calls {
                    let at = &toks[call.name_tok];
                    match facts::classify_binding(toks, &fc.items, &call, &body) {
                        Binding::Escapes => {}
                        Binding::Discarded => out.push(Diagnostic::new(
                            "span-balance",
                            fc.file.rel.clone(),
                            at.line,
                            at.col,
                            format!(
                                "open span from `begin_span` is dropped immediately in `{}`; \
                                 bind it and call `.end(ts)` (or `.cancel()`)",
                                f.name
                            ),
                        )),
                        Binding::Bound {
                            names,
                            acq,
                            scope_end,
                        } => {
                            let closes: HashSet<usize> =
                                facts::uses_of(toks, &names, acq, scope_end)
                                    .into_iter()
                                    .collect();
                            let leak = if closes.is_empty() {
                                true
                            } else {
                                cfg.exit_reachable(acq, false, &closes)
                            };
                            if leak {
                                out.push(Diagnostic::new(
                                    "span-balance",
                                    fc.file.rel.clone(),
                                    at.line,
                                    at.col,
                                    format!(
                                        "span opened by `begin_span` in `{}` can reach a \
                                         function exit without `.end`/`.cancel`; close it on \
                                         every path (early `?`/`return` paths included)",
                                        f.name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintContext;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![SourceFile {
                rel: "crates/train/src/session.rs".to_owned(),
                lines: src.lines().map(str::to_owned).collect(),
                lexed: lex(src),
            }],
        };
        let mut out = Vec::new();
        SpanBalance.check(&LintContext::new(&ws), &mut out);
        out
    }

    #[test]
    fn span_leaked_on_error_path_is_flagged() {
        let d = run("impl S { fn step(&mut self) -> Result<(), E> {\n\
             let span = self.trace.begin_span(Cat::Session, \"step\", t0);\n\
             self.run()?;\n\
             span.end(self.clock.now());\n\
             Ok(())\n\
             } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("can reach a function exit"));
    }

    #[test]
    fn span_closed_on_all_paths_is_clean() {
        let d = run("impl S { fn step(&mut self) -> Result<(), E> {\n\
             let span = self.trace.begin_span(Cat::Session, \"step\", t0);\n\
             if let Err(e) = self.run() { span.cancel(); return Err(e); }\n\
             span.end(self.clock.now());\n\
             Ok(())\n\
             } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn immediately_dropped_span_is_flagged() {
        let d = run("impl S { fn step(&mut self) { self.trace.begin_span(Cat::S, \"x\", t0); } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("dropped immediately"));
    }

    #[test]
    fn raii_stage_scope_is_not_this_rules_business() {
        let d = run("impl S { fn step(&mut self) { let _scope = self.stage_scope(Stage::Fwd); } }");
        assert!(d.is_empty(), "{d:?}");
    }
}
