//! `no-deprecated-stage-api`: stage bookkeeping goes through
//! `StageScope`.
//!
//! The manual `set_stage` / `set_next_stage` / `stage_done` shims were
//! deprecated for one release and have since been removed from
//! `TensorCache`; forgetting the matching `stage_done` silently
//! corrupted the double-buffer eviction hints. The RAII `StageScope`
//! cannot be forgotten, and this rule keeps the old call pattern from
//! being reintroduced. `crates/core/src/cache.rs` (where the shims
//! lived, and whose docs still cite the paper's `tc.set_stage` API)
//! stays exempt.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;

/// Where the shims are defined (mentioning them there is not a call).
const DEFINING_FILE: &str = "crates/core/src/cache.rs";

const DEPRECATED: [&str; 3] = ["set_stage", "set_next_stage", "stage_done"];

pub struct NoDeprecatedStageApi;

impl Rule for NoDeprecatedStageApi {
    fn name(&self) -> &'static str {
        "no-deprecated-stage-api"
    }

    fn description(&self) -> &'static str {
        "callers must use the RAII StageScope, not set_stage/set_next_stage/stage_done"
    }

    fn rationale(&self) -> &'static str {
        "Forgetting the `stage_done` that pairs a manual `set_stage` silently corrupted the \
         double-buffer eviction hints — blocks got evicted against the wrong stage's access \
         pattern. The RAII `StageScope` closes the stage in `Drop`, so the bug class is \
         unrepresentable; this rule keeps the removed manual shims from creeping back in."
    }

    fn example(&self) -> &'static str {
        "    cache.set_stage(Stage::Backward);   // <-- flagged\n\
             …\n\
             cache.stage_done();                 // <-- flagged (and forgettable)\n\
         \n\
         Fix: let _scope = cache.stage_scope(Stage::Backward);"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for file in &ctx.ws.files {
            if file.rel == DEFINING_FILE {
                continue;
            }
            let toks = &file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if !DEPRECATED.iter().any(|m| t.is_ident(m)) {
                    continue;
                }
                // Only calls: `.name(` or `path::name(`.
                let qualified = i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"));
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                if qualified && called {
                    out.push(Diagnostic::new(
                        "no-deprecated-stage-api",
                        file.rel.clone(),
                        t.line,
                        t.col,
                        format!(
                            "deprecated `{}()` call; use `stage_scope()`/`announce_next()` \
                             so the stage is closed by RAII",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}
