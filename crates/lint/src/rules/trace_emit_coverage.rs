//! `trace-emit-coverage`: every offload counter reaches the metrics
//! registry.
//!
//! `OffloadStats` — and the per-class `ClassCounters` rows nested
//! inside it — are the ground truth the observability layer exports.
//! Adding a counter field without touching `export_to` means the new
//! signal silently never shows up in dashboards or golden metric
//! files. This rule cross-checks each struct's fields against the
//! identifiers mentioned in `export_to`'s body, in the same file.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;
use crate::lexer::Token;
use crate::workspace::SourceFile;

/// The exported counter structs; every field of each must be mentioned
/// in `export_to`.
const STRUCTS: [&str; 2] = ["OffloadStats", "ClassCounters"];
const EXPORT_FN: &str = "export_to";

pub struct TraceEmitCoverage;

impl Rule for TraceEmitCoverage {
    fn name(&self) -> &'static str {
        "trace-emit-coverage"
    }

    fn description(&self) -> &'static str {
        "every OffloadStats/ClassCounters field must be exported by export_to"
    }

    fn rationale(&self) -> &'static str {
        "`OffloadStats` is the ground truth the observability layer exports. A counter \
         field added without touching `export_to` compiles, accumulates, and then silently \
         never reaches a dashboard or golden metrics file — the signal exists but nobody \
         can see it. Cross-checking fields against the export body makes the omission a \
         lint failure instead of a missing graph."
    }

    fn example(&self) -> &'static str {
        "    pub struct OffloadStats {\n\
                 pub hits: u64,\n\
                 pub spills: u64,        // <-- flagged: never mentioned in export_to\n\
             }\n\
             impl OffloadStats {\n\
                 pub fn export_to(&self, reg: &mut Registry) { reg.gauge(\"hits\", self.hits); }\n\
             }\n\
         \n\
         Fix: export the new field in `export_to` alongside the others."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for file in &ctx.ws.files {
            for struct_name in STRUCTS {
                let Some(fields) = struct_fields(file, struct_name) else {
                    continue;
                };
                let Some(exported) = fn_body_idents(file, EXPORT_FN) else {
                    // The struct exists but nothing exports it at all.
                    if let Some(at) = find_struct(&file.lexed.tokens, struct_name) {
                        let t = &file.lexed.tokens[at];
                        out.push(Diagnostic::new(
                            "trace-emit-coverage",
                            file.rel.clone(),
                            t.line,
                            t.col,
                            format!(
                                "`{struct_name}` has no `{EXPORT_FN}` in this file; counters \
                                 are never exported to the metrics registry"
                            ),
                        ));
                    }
                    continue;
                };
                for f in fields {
                    if !exported.contains(&f.text) {
                        out.push(Diagnostic::new(
                            "trace-emit-coverage",
                            file.rel.clone(),
                            f.line,
                            f.col,
                            format!(
                                "`{struct_name}.{}` is never mentioned in `{EXPORT_FN}`; \
                                 the counter will not reach the metrics registry",
                                f.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Index of the `name` ident in `struct <name>`.
fn find_struct(toks: &[Token], name: &str) -> Option<usize> {
    (1..toks.len()).find(|&i| toks[i].is_ident(name) && toks[i - 1].is_ident("struct"))
}

/// The field-name tokens of `struct <name> { … }`, or `None` if the
/// file does not define it. Field names are the idents at brace depth 1
/// that are directly followed by `:`.
fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<Token>> {
    let toks = &file.lexed.tokens;
    let at = find_struct(toks, name)?;
    let open = (at + 1..toks.len()).find(|&i| toks[i].is_punct("{"))?;
    let mut depth = 0i32;
    let mut fields = Vec::new();
    for i in open..toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && crate::lexer::TokKind::Ident == t.kind
            && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
            && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(":"))
        {
            fields.push(t.clone());
        }
    }
    Some(fields)
}

/// Every ident appearing in the body of `fn <name>` in this file.
fn fn_body_idents(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let toks = &file.lexed.tokens;
    let at = (1..toks.len()).find(|&i| toks[i].is_ident(name) && toks[i - 1].is_ident("fn"))?;
    let open = (at + 1..toks.len()).find(|&i| toks[i].is_punct("{"))?;
    let mut depth = 0i32;
    let mut idents = Vec::new();
    for t in &toks[open..] {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == crate::lexer::TokKind::Ident {
            idents.push(t.text.clone());
        }
    }
    Some(idents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/core/src/stats.rs".to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = crate::workspace::Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![file(src)],
        };
        let mut out = Vec::new();
        TraceEmitCoverage.check(&LintContext::new(&ws), &mut out);
        out
    }

    #[test]
    fn missing_field_in_export_is_flagged_at_the_field() {
        let d = run(
            "pub struct OffloadStats {\n    pub hits: u64,\n    pub misses: u64,\n}\n\
             impl OffloadStats {\n    pub fn export_to(&self) { use_it(self.hits); }\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("misses"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn full_coverage_is_clean_and_other_structs_are_ignored() {
        let d = run("pub struct Other { pub x: u64 }\n\
             pub struct OffloadStats { pub hits: u64 }\n\
             impl OffloadStats { pub fn export_to(&self) { emit(self.hits); } }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn absent_export_fn_is_flagged_at_the_struct() {
        let d = run("pub struct OffloadStats { pub hits: u64 }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no `export_to`"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn class_counter_fields_must_reach_export_to_as_well() {
        let d = run(
            "pub struct ClassCounters {\n    pub class: String,\n    pub stores: u64,\n}\n\
             pub struct OffloadStats { pub hits: u64 }\n\
             impl OffloadStats {\n    pub fn export_to(&self) \
             { emit(self.hits); emit(c.class); }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ClassCounters.stores"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn fully_exported_class_counters_are_clean() {
        let d = run(
            "pub struct ClassCounters { pub class: String, pub stores: u64 }\n\
             pub struct OffloadStats { pub hits: u64 }\n\
             impl OffloadStats {\n    pub fn export_to(&self) \
             { emit(self.hits); emit(c.class); emit(c.stores); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
