//! `typed-errors`: public APIs carry structured errors.
//!
//! `Box<dyn Error>` erases the error's type and `Result<_, String>`
//! erases everything; both make the caller's recovery decision
//! (retry? fall back? fail the step?) impossible to write. Every `pub
//! fn` in the workspace must use a concrete error type.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;
use crate::lexer::{TokKind, Token};

pub struct TypedErrors;

impl Rule for TypedErrors {
    fn name(&self) -> &'static str {
        "typed-errors"
    }

    fn description(&self) -> &'static str {
        "no Box<dyn Error> or Result<_, String> in pub fn signatures"
    }

    fn rationale(&self) -> &'static str {
        "The recovery policy needs to *match* on failures — was this a target fault to \
         retry, a capacity miss to spill, or a config error to abort? `Box<dyn Error>` \
         erases the type and `Result<_, String>` erases everything, so the caller's \
         recovery decision becomes string-parsing. Concrete error enums keep failures \
         machine-matchable."
    }

    fn example(&self) -> &'static str {
        "    pub fn store(&mut self, b: Block) -> Result<(), String> { … }     // <-- flagged\n\
             pub fn load(&mut self, k: Key) -> Result<Block, Box<dyn Error>> { … } // <-- flagged\n\
         \n\
         Fix: return a concrete enum (`OffloadError`, `StepError`, `ConfigError`, …)."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for file in &ctx.ws.files {
            let toks = &file.lexed.tokens;
            let mut i = 0;
            while i < toks.len() {
                if let Some((name, sig)) = pub_fn_signature(toks, i) {
                    check_signature(&file.rel, name, sig, out);
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// If `toks[at]` begins a `pub … fn` item, returns the function-name
/// token and the signature's token span (from `fn` to the body brace).
fn pub_fn_signature(toks: &[Token], at: usize) -> Option<(&Token, &[Token])> {
    if !toks[at].is_ident("pub") {
        return None;
    }
    let mut j = at + 1;
    // Restricted visibility: pub(crate), pub(in path), …
    if toks.get(j).is_some_and(|t| t.is_punct("(")) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("(") {
                depth += 1;
            } else if toks[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Qualifiers before `fn`. A bare `pub const NAME` is a constant,
    // not a function — `const` only counts when `fn` follows.
    loop {
        let t = toks.get(j)?;
        if t.is_ident("async")
            || t.is_ident("unsafe")
            || (t.is_ident("const") && toks.get(j + 1).is_some_and(|n| n.is_ident("fn")))
        {
            j += 1;
        } else if t.is_ident("extern") {
            j += 1;
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                j += 1;
            }
        } else {
            break;
        }
    }
    if !toks.get(j)?.is_ident("fn") {
        return None;
    }
    let name = toks.get(j + 1)?;
    // The signature runs to the body `{` or the trait-decl `;` at
    // bracket depth zero.
    let start = j + 2;
    let mut depth = 0i32;
    let mut end = start;
    while end < toks.len() {
        let t = &toks[end];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && (t.is_punct("{") || t.is_punct(";")) {
            break;
        }
        end += 1;
    }
    Some((name, &toks[start..end]))
}

fn check_signature(rel: &str, name: &Token, sig: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in sig.iter().enumerate() {
        // `Box<dyn … Error …>` anywhere in the signature.
        if t.is_ident("Box")
            && sig.get(i + 1).is_some_and(|n| n.is_punct("<"))
            && sig.get(i + 2).is_some_and(|n| n.is_ident("dyn"))
            && sig[i + 3..].iter().take(12).any(|n| n.is_ident("Error"))
        {
            out.push(Diagnostic::new(
                "typed-errors",
                rel.to_owned(),
                t.line,
                t.col,
                format!(
                    "`pub fn {}` uses `Box<dyn Error>`; use a concrete error type \
                     (`OffloadError`, `StepError`, `ConfigError`, …) so callers can recover",
                    name.text
                ),
            ));
        }
        // `Result<_, String>` — a stringly-typed error channel.
        if t.is_ident("Result") && sig.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            if let Some(err_arg) = second_generic_arg(&sig[i + 1..]) {
                let is_string = err_arg
                    .iter()
                    .rfind(|t| t.kind == TokKind::Ident)
                    .is_some_and(|t| t.text == "String")
                    && !err_arg.iter().any(|t| t.is_punct("<"));
                if is_string {
                    out.push(Diagnostic::new(
                        "typed-errors",
                        rel.to_owned(),
                        t.line,
                        t.col,
                        format!(
                            "`pub fn {}` returns `Result<_, String>`; define a typed error \
                             so failures stay machine-matchable",
                            name.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Given tokens starting at the `<` of a generic list, returns the
/// second top-level argument's token span, if any.
fn second_generic_arg(toks: &[Token]) -> Option<&[Token]> {
    let mut angle = 0i32;
    let mut round = 0i32;
    let mut first_comma = None;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
            if angle == 0 {
                let start = first_comma? + 1;
                return Some(&toks[start..i]);
            }
        } else if t.is_punct("(") || t.is_punct("[") {
            round += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            round -= 1;
        } else if t.is_punct(",") && angle == 1 && round == 0 && first_comma.is_none() {
            first_comma = Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check_src(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let mut out = Vec::new();
        let mut i = 0;
        while i < lexed.tokens.len() {
            if let Some((name, sig)) = pub_fn_signature(&lexed.tokens, i) {
                check_signature("x.rs", name, sig, &mut out);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn flags_stringly_results_and_boxed_errors() {
        let d = check_src(
            "pub fn bad() -> Result<(), String> { Ok(()) }\n\
             pub fn worse() -> Result<u8, Box<dyn std::error::Error>> { Ok(1) }\n",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn typed_and_private_signatures_pass() {
        let d = check_src(
            "pub fn good() -> Result<(), std::io::Error> { Ok(()) }\n\
             fn private() -> Result<(), String> { Ok(()) }\n\
             pub fn ok_string() -> Result<String, std::io::Error> { todo!() }\n\
             pub fn wrapped() -> Result<(), Wrapper<String>> { Ok(()) }\n\
             pub const LIMIT: usize = 3;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn qualified_pub_fns_are_still_checked() {
        let d = check_src("pub(crate) async fn bad() -> Result<(), String> {}\n");
        assert_eq!(d.len(), 1);
    }
}
