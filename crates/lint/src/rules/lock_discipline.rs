//! `lock-discipline`: a workspace-wide lock-order graph plus two
//! intra-function hold checks.
//!
//! The cache, tier stack and trace sink all guard shared state with
//! `Mutex`/`RwLock` fields. Three bug classes the type system cannot
//! see:
//!
//! 1. **Order inversion** — function `f` acquires `A` then `B` while
//!    `g` acquires `B` then `A`. Each is fine alone; together they
//!    deadlock under concurrency. We collect every "acquired `B` while
//!    `A` held" edge across the workspace into one order graph and flag
//!    every edge that sits on a cycle.
//! 2. **Re-acquisition** — locking a mutex whose guard is already held
//!    in the same function. `std`'s mutex deadlocks, parking-lot-style
//!    mutexes do too; either way the thread hangs.
//! 3. **Held across a clock advance** — in hot-path modules, holding a
//!    guard across anything that advances the simulated clock
//!    serialises the I/O engine behind a lock that other stages contend
//!    on. A clock advance is either a *direct* call to one of
//!    [`CLOCK_ADVANCING`], or a resolved call to any workspace function
//!    whose inferred effects contain [`Effect::AdvancesClock`] — a
//!    wrapper like `flush()` that ends in `advance_to` three calls down
//!    is flagged with its full chain, not silently missed.
//!
//! A guard is considered held from its binding statement until an
//! explicit `drop(guard)` or the end of its lexical scope, following
//! the function's CFG (so a `drop` on one branch releases only that
//! branch). Inline temporaries (`self.stats.lock().x += 1;`) hold the
//! guard for a single expression and contribute no edges. Guards that
//! escape the function (returned/passed on) are not tracked —
//! interprocedural holds are out of scope, which is why returning
//! guards from helpers is worth avoiding.
//!
//! A lock *site* is a `.lock()`/`.read()`/`.write()` call with empty
//! argument parens whose receiver resolves to a declared
//! `Mutex`/`RwLock` field (`Type.field`); `TierStack::write(tier, …)`
//! and friends take arguments and are never mistaken for lock calls.

use super::panic_free_hot_path::HOT_PATH;
use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::callgraph::FnId;
use crate::engine::effects::{Effect, CLOCK_ADVANCING};
use crate::engine::facts::{self, Binding};
use crate::engine::LintContext;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One "acquired `to` while `from` was held" observation.
struct Edge {
    from: String,
    to: String,
    path: String,
    line: u32,
    col: u32,
    fn_name: String,
}

/// A call site inside a hot-path function that advances the clock.
enum AdvanceSite<'a> {
    /// A direct call to one of [`CLOCK_ADVANCING`], by name.
    Direct(&'a str),
    /// A resolved call to a workspace function whose effect set
    /// contains `AdvancesClock`.
    Via(FnId),
}

pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "lock-order cycles, re-acquisition of held guards, guards held across clock advances"
    }

    fn rationale(&self) -> &'static str {
        "Deadlocks and lock-serialised I/O do not show up in unit tests — they need \
         concurrency and contention. The order graph catches inversions across the whole \
         workspace before they can interleave; the re-acquisition check catches guaranteed \
         self-deadlocks; and the hold-across-advance check keeps the simulated I/O engine \
         from running with a stage's lock held, which in the real system would stall every \
         other stage for the duration of an SSD write. The advance check is effect-driven: \
         calling a wrapper that transitively reaches `advance_to` is as bad as calling \
         `advance_to` itself."
    }

    fn example(&self) -> &'static str {
        "    impl Engine {\n\
             fn run(&self) {\n\
                 let g = self.q.lock();\n\
                 self.flush();          // <-- flagged: run → flush → advance_to\n\
                 drop(g);\n\
             }\n\
             fn flush(&self) { self.clock.advance_to(self.t); }\n\
         }\n\
         \n\
         Fix: drop the guard before the advancing call, or restructure so the\n\
         clock-advancing work happens outside the critical section."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let mut edges: Vec<Edge> = Vec::new();
        let mut diags: Vec<Diagnostic> = Vec::new();

        for (fi, fc) in ctx.files.iter().enumerate() {
            let toks = &fc.file.lexed.tokens;
            let hot = HOT_PATH.contains(&fc.file.rel.as_str());
            for (k, f) in fc.items.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let Some(body) = f.body.clone() else { continue };
                let calls = fc.calls_in(f);
                // name_tok → lock symbol, for every resolvable lock site.
                let mut lock_sites: HashMap<usize, String> = HashMap::new();
                for c in &calls {
                    if c.args_empty && LOCK_METHODS.contains(&c.name.as_str()) && !c.recv.is_empty()
                    {
                        if let Some(sym) = ctx.lock_symbol(f.impl_type.as_deref(), &c.recv) {
                            lock_sites.insert(c.name_tok, sym);
                        }
                    }
                }
                if lock_sites.is_empty() {
                    continue;
                }
                let mut advance_sites: HashMap<usize, AdvanceSite> = HashMap::new();
                if hot {
                    // Effect-carrying resolved calls first; direct
                    // clock-named calls override them (same token), so
                    // the seed site keeps its precise message.
                    for site in ctx.graph.calls_of((fi, k)) {
                        if let Some(callee) = site.callee {
                            if ctx.effects.has(callee, Effect::AdvancesClock) {
                                advance_sites.insert(site.name_tok, AdvanceSite::Via(callee));
                            }
                        }
                    }
                    for c in &calls {
                        if CLOCK_ADVANCING.contains(&c.name.as_str()) {
                            advance_sites.insert(c.name_tok, AdvanceSite::Direct(c.name.as_str()));
                        }
                    }
                }
                let cfg = match fc.cfg_of(f) {
                    Some(c) => c,
                    None => continue,
                };
                for c in &calls {
                    let Some(sym) = lock_sites.get(&c.name_tok) else {
                        continue;
                    };
                    // A projection chain (`self.inner.lock().records…`)
                    // binds a *derived* value; the guard itself is a
                    // temporary dying at the statement's end. Only a
                    // lock call that is the entire initialiser hands
                    // its guard to the binding.
                    if !toks.get(c.close_paren + 1).is_some_and(|t| t.is_punct(";")) {
                        continue;
                    }
                    // Only a *bound* guard has a cross-statement extent.
                    let Binding::Bound {
                        names,
                        acq,
                        scope_end,
                    } = facts::classify_binding(toks, &fc.items, c, &body)
                    else {
                        continue;
                    };
                    // Held until scope end or an explicit `drop(guard)`.
                    let mut stops: HashSet<usize> = HashSet::new();
                    stops.insert(scope_end);
                    for u in facts::uses_of(toks, &names, acq, scope_end) {
                        if u >= 2 && toks[u - 1].is_punct("(") && toks[u - 2].is_ident("drop") {
                            stops.insert(u);
                        }
                    }
                    let mut targets: HashSet<usize> = lock_sites
                        .keys()
                        .copied()
                        .filter(|&t| t != c.name_tok)
                        .collect();
                    targets.extend(advance_sites.keys().copied());
                    for t in cfg.reach_all(acq, false, &targets, &stops) {
                        let at = &toks[t];
                        if let Some(tsym) = lock_sites.get(&t) {
                            if tsym == sym {
                                diags.push(Diagnostic::new(
                                    "lock-discipline",
                                    fc.file.rel.clone(),
                                    at.line,
                                    at.col,
                                    format!(
                                        "`{}` re-acquired in `{}` while the guard from line {} \
                                         is still held; this self-deadlocks — drop the first \
                                         guard before relocking",
                                        sym, f.name, toks[c.name_tok].line
                                    ),
                                ));
                            } else {
                                edges.push(Edge {
                                    from: sym.clone(),
                                    to: tsym.clone(),
                                    path: fc.file.rel.clone(),
                                    line: at.line,
                                    col: at.col,
                                    fn_name: f.name.clone(),
                                });
                            }
                        } else {
                            match advance_sites.get(&t) {
                                Some(AdvanceSite::Direct(m)) => {
                                    diags.push(Diagnostic::new(
                                        "lock-discipline",
                                        fc.file.rel.clone(),
                                        at.line,
                                        at.col,
                                        format!(
                                            "guard of `{}` held across `.{}()` in `{}`; the call \
                                             advances the simulated clock while the lock blocks \
                                             other users — drop the guard first",
                                            sym, m, f.name
                                        ),
                                    ));
                                }
                                Some(AdvanceSite::Via(callee)) => {
                                    let Some(chain) =
                                        ctx.effect_chain(&f.name, *callee, Effect::AdvancesClock)
                                    else {
                                        continue;
                                    };
                                    let mut d = Diagnostic::new(
                                        "lock-discipline",
                                        fc.file.rel.clone(),
                                        at.line,
                                        at.col,
                                        format!(
                                            "guard of `{}` held across call to `{}` in `{}`; the \
                                             callee advances the simulated clock (`{}`) while \
                                             the lock blocks other users — drop the guard first",
                                            sym,
                                            ctx.fn_item(*callee).name,
                                            f.name,
                                            chain.path
                                        ),
                                    );
                                    d.related = chain.related;
                                    diags.push(d);
                                }
                                None => {}
                            }
                        }
                    }
                }
            }
        }

        // Workspace order graph: flag every edge that sits on a cycle.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
        for e in &edges {
            if graph_reaches(&adj, &e.to, &e.from) {
                diags.push(Diagnostic::new(
                    "lock-discipline",
                    e.path.clone(),
                    e.line,
                    e.col,
                    format!(
                        "lock order inversion in `{}`: `{}` acquired while `{}` is held, but \
                         elsewhere in the workspace the opposite order occurs; pick one global \
                         acquisition order",
                        e.fn_name, e.to, e.from
                    ),
                ));
            }
        }

        // Overlapping guards of the same symbol can rediscover the same
        // site; report each (site, message) once.
        let mut seen = HashSet::new();
        diags.retain(|d| seen.insert((d.path.clone(), d.line, d.col, d.message.clone())));
        out.extend(diags);
    }
}

/// Whether `to` is reachable from `from` in the order graph.
fn graph_reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: HashSet<&str> = HashSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintContext;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn run_in(rel: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![SourceFile {
                rel: rel.to_owned(),
                lines: src.lines().map(str::to_owned).collect(),
                lexed: lex(src),
            }],
        };
        let mut out = Vec::new();
        LockDiscipline.check(&LintContext::new(&ws), &mut out);
        out
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        run_in("crates/core/src/state.rs", src)
    }

    const TWO_LOCKS: &str = "struct S { a: Mutex<u64>, b: Mutex<u64> }\n";

    #[test]
    fn order_inversion_across_functions_is_flagged_at_both_sites() {
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{\n\
             fn f(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n\
             fn g(&self) {{ let gb = self.b.lock(); let ga = self.a.lock(); drop(ga); drop(gb); }}\n\
             }}"
        ));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("lock order inversion")));
    }

    #[test]
    fn consistent_order_everywhere_is_clean() {
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{\n\
             fn f(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n\
             fn g(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n\
             }}"
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reacquiring_a_held_mutex_is_flagged() {
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ let g = self.a.lock(); let h = self.a.lock(); }} }}"
        ));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("re-acquired"));
    }

    #[test]
    fn dropped_guard_allows_relocking() {
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ let g = self.a.lock(); drop(g); \
             let h = self.a.lock(); drop(h); }} }}"
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_held_across_clock_advance_in_hot_path_is_flagged() {
        let d = run_in(
            "crates/core/src/io.rs",
            "struct E { q: Mutex<u64> }\n\
             impl E { fn run(&self) { let g = self.q.lock(); self.clock.advance_to(t); drop(g); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("held across `.advance_to()`"));
    }

    #[test]
    fn guard_held_across_a_transitive_advance_is_flagged_with_the_chain() {
        let d = run_in(
            "crates/core/src/io.rs",
            "struct E { q: Mutex<u64> }\n\
             impl E {\n\
             fn run(&self) { let g = self.q.lock(); self.flush(); drop(g); }\n\
             fn flush(&self) { self.clock.advance_to(self.t); }\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message
                .contains("held across call to `flush` in `run`"),
            "{d:?}"
        );
        assert!(d[0].message.contains("run → flush → advance_to"));
        // Related locations: the seed inside `flush`.
        assert_eq!(d[0].related.len(), 1, "{:?}", d[0].related);
        assert_eq!(d[0].related[0].message, "effect seed: advance_to");
    }

    #[test]
    fn transitive_advance_outside_hot_path_is_ignored() {
        let d = run_in(
            "crates/core/src/state.rs",
            "struct E { q: Mutex<u64> }\n\
             impl E {\n\
             fn run(&self) { let g = self.q.lock(); self.flush(); drop(g); }\n\
             fn flush(&self) { self.clock.advance_to(self.t); }\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_dropped_before_the_advance_is_clean() {
        let d = run_in(
            "crates/core/src/io.rs",
            "struct E { q: Mutex<u64> }\n\
             impl E { fn run(&self) { let g = self.q.lock(); drop(g); self.clock.advance_to(t); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inline_temporary_guards_contribute_nothing() {
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{ fn f(&self) {{ *self.a.lock() += 1; *self.b.lock() += 1; }} }}"
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn projection_chains_do_not_hold_the_guard() {
        // `self.b.lock().count()` binds the count; the guard dies at
        // the `;`, so `g` contributes no b → a edge and no cycle forms
        // with `f`'s a → b.
        let d = run(&format!(
            "{TWO_LOCKS}impl S {{\n\
             fn f(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }}\n\
             fn g(&self) {{ let n = self.b.lock().count(); let ga = self.a.lock(); drop(ga); }}\n\
             }}"
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn write_with_arguments_is_not_a_lock_site() {
        let d = run("struct T { inner: Mutex<u64> }\n\
             impl T { fn f(&self) { let g = self.inner.lock(); \
             self.tiers.write(tier, key, data); drop(g); } }");
        assert!(d.is_empty(), "{d:?}");
    }
}
