//! `doc-coverage`: every prelude re-export is documented.
//!
//! The preludes are the advertised API surface — `use
//! ssdtrain::prelude::*` is the first line of every example. An
//! undocumented re-export is an advertised item nobody can discover
//! from `cargo doc`. A re-export counts as documented when the
//! `pub use` itself carries a doc comment, or when the item's
//! definition anywhere in the workspace does.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;
use crate::lexer::{TokKind, Token};
use crate::workspace::SourceFile;
use std::collections::HashMap;

/// Keywords that introduce a nameable top-level definition.
const DEF_KEYWORDS: [&str; 9] = [
    "struct", "enum", "trait", "fn", "type", "const", "static", "union", "mod",
];

pub struct DocCoverage;

impl Rule for DocCoverage {
    fn name(&self) -> &'static str {
        "doc-coverage"
    }

    fn description(&self) -> &'static str {
        "every prelude re-export must have a doc comment"
    }

    fn rationale(&self) -> &'static str {
        "`use ssdtrain::prelude::*` is the first line of every example, so the preludes \
         *are* the advertised API surface. An undocumented re-export is an advertised item \
         that renders as a bare name in `cargo doc` — discoverable by grep only. Requiring \
         a doc comment on the definition or on the `pub use` keeps the front door labelled."
    }

    fn example(&self) -> &'static str {
        "    // crates/core/src/prelude.rs\n\
             pub use crate::cache::{TensorCache, EvictionHint};  // <-- EvictionHint flagged\n\
         \n\
         Fix: document the definition (`/// Hint consumed by the eviction scan…`)\n\
         or the `pub use` itself."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        // name -> is any top-level definition of it documented?
        let mut defs: HashMap<String, bool> = HashMap::new();
        for file in &ctx.ws.files {
            index_definitions(file, &mut defs);
        }
        for file in &ctx.ws.files {
            if !file.rel.ends_with("/prelude.rs") {
                continue;
            }
            for leaf in reexport_leaves(file) {
                if has_doc_above(file, leaf.stmt_line) {
                    continue;
                }
                match defs.get(&leaf.name) {
                    Some(true) => {}
                    // A name we cannot resolve (external crate, inline
                    // module) is out of scope for this rule.
                    None => {}
                    Some(false) => out.push(Diagnostic::new(
                        "doc-coverage",
                        file.rel.clone(),
                        leaf.line,
                        leaf.col,
                        format!(
                            "prelude re-export `{}` has no doc comment on its definition \
                             or on the `pub use`; document the advertised API surface",
                            leaf.name
                        ),
                    )),
                }
            }
        }
    }
}

/// One re-exported name in a prelude `pub use` statement.
struct Leaf {
    /// Name to resolve against the definition index (pre-`as` name).
    name: String,
    /// Line of the `pub` keyword, for doc-comment lookup.
    stmt_line: u32,
    line: u32,
    col: u32,
}

/// Extracts every leaf name of the file's `pub use` statements. Glob
/// imports (`::*`) contribute nothing — their doc coverage is the
/// source module's problem.
fn reexport_leaves(file: &SourceFile) -> Vec<Leaf> {
    let toks = &file.lexed.tokens;
    let mut leaves = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("use"))) {
            i += 1;
            continue;
        }
        let stmt_line = toks[i].line;
        let mut j = i + 2;
        // Current path tail since the last separator, and whether an
        // `as` rename or `*` glob intervened.
        let mut tail: Option<&Token> = None;
        let mut glob = false;
        let mut renamed = false;
        while j < toks.len() && !toks[j].is_punct(";") {
            let t = &toks[j];
            if t.kind == TokKind::Ident {
                if t.text == "as" {
                    renamed = true; // keep the pre-`as` name for lookup
                } else if !renamed {
                    if t.text == "self" {
                        // `x::{self, …}` re-exports the module `x`,
                        // whose tail we have already recorded: keep it.
                    } else {
                        tail = Some(t);
                    }
                }
            } else if t.is_punct("*") {
                glob = true;
            } else if t.is_punct(",") || t.is_punct("}") {
                if let Some(leaf) = tail.take() {
                    if !glob {
                        leaves.push(Leaf {
                            name: leaf.text.clone(),
                            stmt_line,
                            line: leaf.line,
                            col: leaf.col,
                        });
                    }
                }
                glob = false;
                renamed = false;
            } else if t.is_punct("{") {
                // Group opens: the path prefix before it is not a leaf.
                tail = None;
                renamed = false;
            }
            j += 1;
        }
        if let Some(leaf) = tail.take() {
            if !glob {
                leaves.push(Leaf {
                    name: leaf.text.clone(),
                    stmt_line,
                    line: leaf.line,
                    col: leaf.col,
                });
            }
        }
        i = j;
    }
    leaves
}

/// Records every brace-depth-0 definition of `file` into `defs`,
/// keeping "documented" sticky across multiple definitions of a name
/// (e.g. a `cfg`-gated pair).
fn index_definitions(file: &SourceFile, defs: &mut HashMap<String, bool>) {
    let toks = &file.lexed.tokens;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.kind == TokKind::Ident {
            let name = if DEF_KEYWORDS.iter().any(|k| t.is_ident(k)) {
                toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)
            } else if t.is_ident("macro_rules") && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                toks.get(i + 2)
            } else {
                None
            };
            if let Some(name) = name {
                let documented = has_doc_above(file, t.line);
                let entry = defs.entry(name.text.clone()).or_insert(false);
                *entry = *entry || documented;
            }
        }
    }
}

/// Whether an outer doc comment (or `#[doc…]` attribute) is attached
/// above source line `line` — walking back over attributes, plain
/// comments and blank lines, as rustdoc attachment does.
fn has_doc_above(file: &SourceFile, line: u32) -> bool {
    let mut idx = line as usize; // lines are 1-based; start one above
    while idx >= 2 {
        idx -= 1;
        let l = file.lines[idx - 1].trim_start();
        if (l.starts_with("///") && !l.starts_with("////"))
            || (l.starts_with("/**") && !l.starts_with("/***") && l != "/**/")
            || l.starts_with("#[doc")
        {
            return true;
        }
        let attachment = l.is_empty()
            || l.starts_with("#[")
            || l.starts_with("//")
            || l.starts_with('*') // middle of a block doc comment
            || l.ends_with("]"); // tail of a multi-line attribute
        if !attachment {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        }
    }

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let ws = crate::workspace::Workspace {
            root: std::path::PathBuf::from("."),
            files,
        };
        let mut out = Vec::new();
        DocCoverage.check(&LintContext::new(&ws), &mut out);
        out
    }

    #[test]
    fn undocumented_reexport_is_flagged_at_the_leaf() {
        let d = run(vec![
            file("crates/x/src/lib.rs", "pub struct Naked;\n"),
            file("crates/x/src/prelude.rs", "pub use crate::{Naked};\n"),
        ]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Naked"));
        assert_eq!(d[0].path, "crates/x/src/prelude.rs");
    }

    #[test]
    fn doc_on_definition_or_on_the_use_satisfies_the_rule() {
        let d = run(vec![
            file(
                "crates/x/src/lib.rs",
                "/// Documented.\n#[derive(Debug)]\npub struct Seen;\npub struct Late;\n",
            ),
            file(
                "crates/x/src/prelude.rs",
                "pub use crate::Seen;\n/// Documented at the use site.\npub use crate::Late;\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn globs_renames_and_unresolved_names_are_skipped() {
        let d = run(vec![
            file(
                "crates/x/src/lib.rs",
                "/// Doc.\npub struct Orig;\n",
            ),
            file(
                "crates/x/src/prelude.rs",
                "pub use other_crate::prelude::*;\npub use crate::Orig as Renamed;\npub use std::io::Read;\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn group_imports_check_each_leaf() {
        let d = run(vec![
            file(
                "crates/x/src/lib.rs",
                "/// Doc.\npub struct A;\npub struct B;\n",
            ),
            file("crates/x/src/prelude.rs", "pub use crate::{A, B};\n"),
        ]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains('B'));
    }
}
