//! `no-wall-clock`: the simulated-time crates must not read wall-clock
//! time.
//!
//! The reproduction's central transparency claim is that all timing is
//! taken from the simulated clock, so results are a pure function of
//! the configuration. One `std::time::Instant::now()` inside `simhw`,
//! `core` or `trace` silently turns deterministic step times and golden
//! traces into machine-dependent ones.

use super::{in_dir, Rule};
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;
use crate::lexer::Token;

/// The lint itself is scoped too: its text/JSON/SARIF output must be
/// byte-stable across runs, which a wall-clock read would break.
const SCOPED_DIRS: [&str; 5] = [
    "crates/simhw",
    "crates/core",
    "crates/trace",
    "crates/train",
    "crates/lint",
];
const BANNED: [&str; 2] = ["Instant", "SystemTime"];

pub struct NoWallClock;

impl Rule for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "std::time::{Instant,SystemTime} banned in simhw/core/trace; use the simulated clock"
    }

    fn rationale(&self) -> &'static str {
        "Every latency, bandwidth and step-time figure in the reproduction is a pure \
         function of the configuration because all timing flows through `SimClock`. One \
         wall-clock read makes step times machine-dependent, breaks golden traces, and \
         silently invalidates any A/B comparison between placement policies."
    }

    fn example(&self) -> &'static str {
        "    use std::time::Instant;          // <-- flagged\n\
             let t0 = Instant::now();          // <-- flagged\n\
         \n\
         Fix: take a `&SimClock` (or a timestamp argument) and read `clock.now()`."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for file in &ctx.ws.files {
            if !SCOPED_DIRS.iter().any(|d| in_dir(&file.rel, d)) {
                continue;
            }
            let toks = &file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                // `time::Instant` / `time::SystemTime` paths, and the
                // grouped form `use std::time::{Instant, …}`.
                if t.is_ident("time") && punct_at(toks, i + 1, "::") {
                    match toks.get(i + 2) {
                        Some(next) if BANNED.iter().any(|b| next.is_ident(b)) => {
                            push(out, file_rel(file), next, &next.text);
                        }
                        Some(next) if next.is_punct("{") => {
                            for t in toks[i + 3..]
                                .iter()
                                .take_while(|t| !t.is_punct("}"))
                                .filter(|t| BANNED.iter().any(|b| t.is_ident(b)))
                            {
                                push(out, file_rel(file), t, &t.text);
                            }
                        }
                        _ => {}
                    }
                }
                // A pre-imported `Instant::now()` / `SystemTime::now()`.
                if BANNED.iter().any(|b| t.is_ident(b))
                    && punct_at(toks, i + 1, "::")
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
                {
                    push(out, file_rel(file), t, &t.text);
                }
            }
        }
    }
}

fn file_rel(file: &crate::workspace::SourceFile) -> &str {
    &file.rel
}

fn punct_at(toks: &[Token], i: usize, p: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(p))
}

fn push(out: &mut Vec<Diagnostic>, rel: &str, at: &Token, what: &str) {
    out.push(Diagnostic::new(
        "no-wall-clock",
        rel.to_owned(),
        at.line,
        at.col,
        format!(
            "wall-clock `std::time::{what}` in a simulated-time crate; timing must come \
             from `SimClock` so runs stay deterministic"
        ),
    ));
}
