//! `no-alloc-hot-loop`: the per-step loops must not allocate.
//!
//! The cache eviction scan, the I/O submission/drain loops, the tier
//! walk and the overlapped optimizer sweep run once per training step,
//! over every block. An allocation inside those loops turns into
//! thousands of allocator round-trips per step and — worse — into
//! allocator lock contention against the I/O threads. The fix is
//! almost always mechanical: hoist the container out of the loop and
//! `clear()` it, or take a scratch buffer.
//!
//! The rule is effect-driven. A *loop range* is the body of a `for`
//! (its header runs once) or the header-plus-body of a `while`/`loop`
//! (the condition re-runs every iteration) inside a non-test function
//! of a hot-loop file. Inside a loop range it flags:
//!
//! - **direct allocation seeds** — `Vec::new`-family constructors,
//!   `with_capacity`, `.collect()`/`.to_vec()`, `vec!`/`format!`;
//! - **resolved calls whose inferred effects contain
//!   [`Effect::Allocates`]** — a helper that builds a `Vec` three calls
//!   down allocates per iteration just the same, and the diagnostic
//!   carries the full chain.
//!
//! Silence a justified site with
//! `// ssdtrain-lint: allow(no-alloc-hot-loop): <why>`; an allow at a
//! seed also releases every transitive caller.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::effects::Effect;
use crate::engine::items::FileItems;
use crate::engine::LintContext;
use crate::lexer::Token;
use std::collections::HashSet;
use std::ops::Range;

/// The per-step loop modules: cache maintenance, the write coalescer,
/// the I/O engine, the tier stack, the pinned buffer arena, and the
/// overlapped optimizer engine.
const HOT_LOOP_FILES: [&str; 6] = [
    "crates/core/src/cache.rs",
    "crates/core/src/coalesce.rs",
    "crates/core/src/io.rs",
    "crates/core/src/tier.rs",
    "crates/simhw/src/arena.rs",
    "crates/train/src/opt_engine.rs",
];

pub struct NoAllocHotLoop;

impl Rule for NoAllocHotLoop {
    fn name(&self) -> &'static str {
        "no-alloc-hot-loop"
    }

    fn description(&self) -> &'static str {
        "allocation (direct or through calls) inside per-step loops of cache/io/tier/opt_engine"
    }

    fn rationale(&self) -> &'static str {
        "The eviction scan, I/O submission loop, tier walk and optimizer sweep run per step \
         over every block; an allocation inside them multiplies into thousands of allocator \
         round-trips per step and contends on the allocator lock against the I/O threads. \
         The effect analysis also catches the hidden case: a tidy-looking helper call that \
         builds a `Vec` internally allocates per iteration exactly like an inline \
         `Vec::new()` would."
    }

    fn example(&self) -> &'static str {
        "    // crates/core/src/io.rs (hot-loop file)\n\
             for req in &self.queue {\n\
                 let staged: Vec<u8> = req.bytes.to_vec();   // <-- flagged: allocates per request\n\
                 self.submit(&staged);\n\
             }\n\
         \n\
         Fix: hoist the buffer out of the loop and `clear()` it per iteration,\n\
         or pass a scratch buffer owned by the engine. A justified site takes\n\
         `// ssdtrain-lint: allow(no-alloc-hot-loop): <why>` (at a seed, this also\n\
         releases every caller)."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for (fi, fc) in ctx.files.iter().enumerate() {
            if !HOT_LOOP_FILES.contains(&fc.file.rel.as_str()) {
                continue;
            }
            let toks = &fc.file.lexed.tokens;
            for (k, f) in fc.items.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let Some(body) = f.body.clone() else { continue };
                let loops = loop_ranges(toks, &fc.items, &body);
                if loops.is_empty() {
                    continue;
                }
                let in_loop = |tok: usize| loops.iter().any(|r| r.contains(&tok));
                let mut direct_toks: HashSet<usize> = HashSet::new();
                for seed in ctx.effects.direct_seeds((fi, k)) {
                    if !seed.feeds(Effect::Allocates) || !in_loop(seed.tok) {
                        continue;
                    }
                    direct_toks.insert(seed.tok);
                    out.push(Diagnostic::new(
                        "no-alloc-hot-loop",
                        fc.file.rel.clone(),
                        seed.line,
                        seed.col,
                        format!(
                            "`{}` allocates inside a hot loop (in `{}`); hoist the \
                             allocation out of the loop or reuse a scratch buffer",
                            seed.what, f.name
                        ),
                    ));
                }
                for site in ctx.graph.calls_of((fi, k)) {
                    if !in_loop(site.name_tok) || direct_toks.contains(&site.name_tok) {
                        continue;
                    }
                    let Some(callee) = site.callee else { continue };
                    if !ctx.effects.has(callee, Effect::Allocates) {
                        continue;
                    }
                    let Some(chain) = ctx.effect_chain(&f.name, callee, Effect::Allocates) else {
                        continue;
                    };
                    let mut d = Diagnostic::new(
                        "no-alloc-hot-loop",
                        fc.file.rel.clone(),
                        site.line,
                        site.col,
                        format!(
                            "call to `{}` allocates (`{}`, seed at {}:{}) inside a hot loop \
                             (in `{}`); hoist it out of the loop or pass a scratch buffer",
                            ctx.fn_item(callee).name,
                            chain.path,
                            chain.seed_path,
                            chain.seed_line,
                            f.name,
                        ),
                    );
                    d.related = chain.related;
                    out.push(d);
                }
            }
        }
    }
}

/// Token ranges that re-run per iteration inside `body`: the brace body
/// of each `for` (its header runs once per loop entry), and the
/// header-plus-body of each `while`/`loop` (the condition re-evaluates
/// every iteration). Nested loops contribute their own ranges.
fn loop_ranges(toks: &[Token], items: &FileItems, body: &Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for i in body.clone() {
        let t = &toks[i];
        let is_for = t.is_ident("for");
        let is_head = t.is_ident("while") || t.is_ident("loop");
        if !is_for && !is_head {
            continue;
        }
        // `impl Trait for Type` — not a loop.
        if is_for && i > 0 && toks[i - 1].kind == crate::lexer::TokKind::Ident {
            continue;
        }
        // The loop body is the first `{` at bracket depth 0 after the
        // keyword (struct literals are illegal in loop headers, so it
        // cannot be anything else).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut open = None;
        while j < body.end {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let Some(&close) = items.close_of.get(&open) else {
            continue;
        };
        if is_for {
            out.push(open + 1..close);
        } else {
            out.push(i + 1..close);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let ctx = LintContext::new(ws);
        let mut out = Vec::new();
        NoAllocHotLoop.check(&ctx, &mut out);
        out
    }

    #[test]
    fn direct_allocation_in_a_for_body_is_flagged() {
        let ws = ws_of(&[(
            "crates/core/src/io.rs",
            "fn drain(reqs: &[R]) {\n\
                 for r in reqs {\n\
                     let staged = r.bytes.to_vec();\n\
                 }\n\
             }\n",
        )]);
        let d = run(&ws);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("`.to_vec()` allocates inside a hot loop (in `drain`)"));
    }

    #[test]
    fn allocation_in_a_for_header_runs_once_and_is_clean() {
        let ws = ws_of(&[(
            "crates/core/src/io.rs",
            "fn drain(reqs: &[R]) {\n\
                 for r in reqs.to_vec() {\n\
                     submit(r);\n\
                 }\n\
             }\n\
             fn submit(r: R) {}\n",
        )]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn while_headers_rerun_per_iteration_and_are_flagged() {
        let ws = ws_of(&[(
            "crates/core/src/cache.rs",
            "fn spin(q: &Q) {\n\
                 while q.snapshot().to_vec().is_empty() {\n\
                     step();\n\
                 }\n\
             }\n\
             fn step() {}\n",
        )]);
        let d = run(&ws);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".to_vec()"));
    }

    #[test]
    fn transitive_allocation_through_a_helper_is_flagged_with_the_chain() {
        let ws = ws_of(&[
            (
                "crates/core/src/tier.rs",
                "fn sweep(keys: &[u64]) {\n\
                     for k in keys {\n\
                         stage(*k);\n\
                     }\n\
                 }\n",
            ),
            (
                "crates/util/src/stage.rs",
                "pub fn stage(k: u64) -> Vec<u8> { Vec::new() }\n",
            ),
        ]);
        let d = run(&ws);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sweep → stage → Vec::new"), "{d:?}");
        assert_eq!(d[0].related.len(), 1);
        assert_eq!(d[0].related[0].message, "effect seed: Vec::new");
    }

    #[test]
    fn allocation_outside_any_loop_is_clean() {
        let ws = ws_of(&[(
            "crates/core/src/cache.rs",
            "fn rebuild(&mut self) {\n\
                 let mut staged = Vec::new();\n\
                 for k in &self.keys {\n\
                     staged.push(*k);\n\
                 }\n\
             }\n",
        )]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn non_hot_files_are_out_of_scope() {
        let ws = ws_of(&[(
            "crates/core/src/placement.rs",
            "fn plan(xs: &[u8]) {\n\
                 for x in xs {\n\
                     let v = vec![*x];\n\
                 }\n\
             }\n",
        )]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn allow_at_the_seed_releases_transitive_callers() {
        let ws = ws_of(&[
            (
                "crates/core/src/tier.rs",
                "fn sweep(keys: &[u64]) {\n\
                     for k in keys {\n\
                         stage(*k);\n\
                     }\n\
                 }\n",
            ),
            (
                "crates/util/src/stage.rs",
                "pub fn stage(k: u64) -> Vec<u8> {\n\
                 // ssdtrain-lint: allow(no-alloc-hot-loop): amortised, grows once then reused\n\
                 Vec::new()\n\
                 }\n",
            ),
        ]);
        assert!(run(&ws).is_empty());
    }
}
