//! `reservation-pairing`: a tier reservation must be settled on every
//! path.
//!
//! `TierStack::reserve`/`reserve_preferring` debit capacity counters
//! immediately; the bytes come back only when the placement is handed
//! to `write` (commit) or given back via `release`. A code path that
//! lets the returned `TierPlacement` fall on the floor — an early `?`,
//! a forgotten error arm — leaks capacity forever and slowly starves
//! the tier, which the capacity-accounting tests only catch when the
//! leak happens to be on the tested path. This rule walks each
//! function's CFG in the two files that own reservations and demands
//! that every `reserve`-family call either escapes the function (the
//! caller inherits the obligation) or is *settled* — the bound
//! placement is mentioned again — before any reachable exit.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::facts::{self, Binding};
use crate::engine::LintContext;
use std::collections::HashSet;

/// The files that create and settle reservations. Everything else only
/// sees placements second-hand.
const SCOPED_FILES: [&str; 2] = ["crates/core/src/tier.rs", "crates/core/src/cache.rs"];

/// A call that debits tier capacity and returns a placement obligation.
fn is_reserve_family(name: &str) -> bool {
    name == "reserve" || name == "try_reserve" || name.starts_with("reserve_")
}

pub struct ReservationPairing;

impl Rule for ReservationPairing {
    fn name(&self) -> &'static str {
        "reservation-pairing"
    }

    fn description(&self) -> &'static str {
        "every tier reserve must reach a commit/release (or escape) on all CFG paths"
    }

    fn rationale(&self) -> &'static str {
        "`reserve` debits the tier's capacity counter immediately; the bytes only come \
         back at `write` (commit) or `release`. A placement dropped on an early `?` leaks \
         capacity forever and slowly starves the tier — and the capacity tests only catch \
         it when the leak sits on the tested path. The CFG walk demands settlement on \
         *every* reachable exit, untested error paths included."
    }

    fn example(&self) -> &'static str {
        "    fn store(&mut self, b: Block) -> Result<(), OffloadError> {\n\
                 let p = self.tiers.reserve(b.bytes)?;\n\
                 self.encode(&b)?;              // <-- early exit leaks `p`\n\
                 self.tiers.write(p, &b);\n\
                 Ok(())\n\
             }\n\
         \n\
         Fix: release on the error path (match the encode result, `release(p)` before `?`),\n\
         or reserve after the fallible work."
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for fc in &ctx.files {
            if !SCOPED_FILES.contains(&fc.file.rel.as_str()) {
                continue;
            }
            let toks = &fc.file.lexed.tokens;
            for f in &fc.items.functions {
                // The reserve family itself manipulates the counters it
                // guards; wrappers like `reserve_preferring` tail-call
                // `reserve` and hand the obligation to their caller.
                if f.is_test || is_reserve_family(&f.name) {
                    continue;
                }
                let Some(body) = f.body.clone() else { continue };
                let calls: Vec<_> = fc
                    .calls_in(f)
                    .into_iter()
                    .filter(|c| is_reserve_family(&c.name))
                    .collect();
                if calls.is_empty() {
                    continue;
                }
                let cfg = match fc.cfg_of(f) {
                    Some(c) => c,
                    None => continue,
                };
                for call in calls {
                    let at = &toks[call.name_tok];
                    match facts::classify_binding(toks, &fc.items, &call, &body) {
                        // Returned / passed on: the caller owns it now.
                        Binding::Escapes => {}
                        Binding::Discarded => out.push(Diagnostic::new(
                            "reservation-pairing",
                            fc.file.rel.clone(),
                            at.line,
                            at.col,
                            format!(
                                "result of `.{}()` is discarded in `{}`; bind the placement \
                                 and commit it (`write`) or `release` it",
                                call.name, f.name
                            ),
                        )),
                        Binding::Bound {
                            names,
                            acq,
                            scope_end,
                        } => {
                            let settles: HashSet<usize> =
                                facts::uses_of(toks, &names, acq, scope_end)
                                    .into_iter()
                                    .collect();
                            let leak = if settles.is_empty() {
                                true
                            } else {
                                cfg.exit_reachable(acq, false, &settles)
                            };
                            if leak {
                                out.push(Diagnostic::new(
                                    "reservation-pairing",
                                    fc.file.rel.clone(),
                                    at.line,
                                    at.col,
                                    format!(
                                        "reservation from `.{}()` in `{}` can reach a function \
                                         exit without being settled; commit or `release` it on \
                                         every path (early `?`/`return` paths included)",
                                        call.name, f.name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintContext;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![SourceFile {
                rel: "crates/core/src/tier.rs".to_owned(),
                lines: src.lines().map(str::to_owned).collect(),
                lexed: lex(src),
            }],
        };
        let mut out = Vec::new();
        ReservationPairing.check(&LintContext::new(&ws), &mut out);
        out
    }

    #[test]
    fn leak_on_early_return_is_flagged() {
        let d = run("impl Cache { fn store(&mut self, b: u64) -> Option<()> {\n\
             let p = self.tiers.reserve(b)?;\n\
             if b > 4 { return None; }\n\
             self.commit(p); Some(())\n\
             } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("can reach a function exit"));
    }

    #[test]
    fn settled_on_all_paths_is_clean() {
        let d = run("impl Cache { fn store(&mut self, b: u64) -> Option<()> {\n\
             let p = self.tiers.reserve(b)?;\n\
             if b > 4 { self.tiers.release(p.tier, b); return None; }\n\
             self.commit(p); Some(())\n\
             } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn escaping_reserve_is_the_callers_problem() {
        let d = run(
            "impl Cache { fn grab(&mut self, b: u64) -> Option<Placement> {\n\
             self.tiers.reserve(b)\n\
             } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn discarded_reserve_is_flagged() {
        let d = run("impl Cache { fn poke(&mut self, b: u64) { self.tiers.reserve(b); } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("discarded"));
    }
}
