//! `no-deprecated-target-api`: backends are chosen by `OffloadBackend`.
//!
//! The builder's old `target(..)` shim took a two-variant enum that
//! predated the placement/tier/device stack and could not express
//! tiered backends, so callers silently lost the DRAM+SSD option. The
//! enum and the shim have been removed in favour of
//! `SessionBuilder::backend(OffloadBackend)`; this rule keeps the old
//! type from being reintroduced anywhere in the workspace. Only the
//! type name is matched — `backend(..)`, `OffloadError::target()` and
//! `cache.target()` are all legitimate and stay untouched.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;

/// The removed enum's name, as an identifier. (A string literal here,
/// so this file does not flag itself.)
const REMOVED_TYPE: &str = "TargetKind";

pub struct NoDeprecatedTargetApi;

impl Rule for NoDeprecatedTargetApi {
    fn name(&self) -> &'static str {
        "no-deprecated-target-api"
    }

    fn description(&self) -> &'static str {
        "the removed TargetKind enum must not come back; use OffloadBackend"
    }

    fn rationale(&self) -> &'static str {
        "The removed two-variant enum predated the placement/tier/device stack and could \
         not express tiered backends, so code written against it silently lost the \
         DRAM+SSD option. Any reappearance — even in a type alias or doc test — invites \
         new callers onto the dead API."
    }

    fn example(&self) -> &'static str {
        "    pub enum TargetKind { Cpu, Ssd }      // <-- flagged (any identifier use)\n\
         \n\
         Fix: builder.backend(OffloadBackend::DramSsd { .. })"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for file in &ctx.ws.files {
            for t in &file.lexed.tokens {
                if t.is_ident(REMOVED_TYPE) {
                    out.push(Diagnostic::new(
                        "no-deprecated-target-api",
                        file.rel.clone(),
                        t.line,
                        t.col,
                        format!(
                            "`{REMOVED_TYPE}` was removed; select backends with \
                             `SessionBuilder::backend(OffloadBackend)`"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![SourceFile {
                rel: "crates/train/src/session.rs".to_owned(),
                lines: src.lines().map(str::to_owned).collect(),
                lexed: lex(src),
            }],
        };
        let mut out = Vec::new();
        NoDeprecatedTargetApi.check(&LintContext::new(&ws), &mut out);
        out
    }

    #[test]
    fn any_mention_of_the_removed_enum_is_flagged() {
        let d = run("pub enum TargetKind { Cpu, Ssd }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("OffloadBackend"));
    }

    #[test]
    fn legitimate_target_methods_are_not_flagged() {
        let d = run(
            "fn f(cache: &TensorCache) {\n    let _ = cache.target();\n    \
             let _ = OffloadError::target(\"ssd0\", 4);\n    b.backend(OffloadBackend::Ssd);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn string_literals_do_not_count_as_identifiers() {
        let d = run("const DOC: &str = \"TargetKind\";\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
