//! The rule registry.
//!
//! Each rule checks one project invariant the generic toolchain lints
//! cannot express. Rules see the whole lexed workspace, so cross-file
//! invariants (prelude doc coverage, `OffloadStats` export coverage)
//! are first-class.

use crate::diagnostics::Diagnostic;
use crate::workspace::Workspace;

mod doc_coverage;
mod no_deprecated_stage_api;
mod no_deprecated_target_api;
mod no_wall_clock;
mod panic_free_hot_path;
mod trace_emit_coverage;
mod typed_errors;

/// One lint rule.
pub trait Rule {
    /// Kebab-case rule name (what `allow(<rule>)` refers to).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Appends this rule's violations over the workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in a fixed order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_wall_clock::NoWallClock),
        Box::new(panic_free_hot_path::PanicFreeHotPath),
        Box::new(typed_errors::TypedErrors),
        Box::new(no_deprecated_stage_api::NoDeprecatedStageApi),
        Box::new(no_deprecated_target_api::NoDeprecatedTargetApi),
        Box::new(trace_emit_coverage::TraceEmitCoverage),
        Box::new(doc_coverage::DocCoverage),
    ]
}

/// Names `allow(<rule>)` accepts: every registered rule. The
/// `suppression` pseudo-rule (malformed allows) is deliberately not
/// listed — a suppression problem cannot be suppressed.
pub fn rule_names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}

/// Whether `rel` lives under the `/`-separated directory `dir`.
pub(crate) fn in_dir(rel: &str, dir: &str) -> bool {
    rel.strip_prefix(dir)
        .is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_seven_rules() {
        let names = rule_names();
        assert_eq!(
            names,
            vec![
                "no-wall-clock",
                "panic-free-hot-path",
                "typed-errors",
                "no-deprecated-stage-api",
                "no-deprecated-target-api",
                "trace-emit-coverage",
                "doc-coverage",
            ]
        );
    }

    #[test]
    fn in_dir_matches_whole_components() {
        assert!(in_dir("crates/core/src/cache.rs", "crates/core"));
        assert!(!in_dir("crates/core_extra/src/x.rs", "crates/core"));
        assert!(!in_dir("crates/core", "crates/core"));
    }
}
