//! The rule registry.
//!
//! Each rule checks one project invariant the generic toolchain lints
//! cannot express. Rules see the whole indexed workspace (a
//! [`LintContext`]), so cross-file invariants (prelude doc coverage,
//! the workspace-wide lock-order graph) are first-class, and the flow
//! rules can query per-function CFGs.

use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;

mod doc_coverage;
mod lock_discipline;
mod no_deprecated_stage_api;
mod no_deprecated_target_api;
mod no_wall_clock;
mod panic_free_hot_path;
mod reservation_pairing;
mod span_balance;
mod trace_emit_coverage;
mod typed_errors;

/// One lint rule.
pub trait Rule {
    /// Kebab-case rule name (what `allow(<rule>)` refers to).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Appends this rule's violations over the workspace.
    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in a fixed order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_wall_clock::NoWallClock),
        Box::new(panic_free_hot_path::PanicFreeHotPath),
        Box::new(typed_errors::TypedErrors),
        Box::new(no_deprecated_stage_api::NoDeprecatedStageApi),
        Box::new(no_deprecated_target_api::NoDeprecatedTargetApi),
        Box::new(trace_emit_coverage::TraceEmitCoverage),
        Box::new(doc_coverage::DocCoverage),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(reservation_pairing::ReservationPairing),
        Box::new(span_balance::SpanBalance),
    ]
}

/// Names `allow(<rule>)` accepts: every registered rule. The
/// `suppression` pseudo-rule (malformed allows) is deliberately not
/// listed — a suppression problem cannot be suppressed.
pub fn rule_names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}

/// Whether `rel` lives under the `/`-separated directory `dir`.
pub(crate) fn in_dir(rel: &str, dir: &str) -> bool {
    rel.strip_prefix(dir)
        .is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_ten_rules() {
        let names = rule_names();
        assert_eq!(
            names,
            vec![
                "no-wall-clock",
                "panic-free-hot-path",
                "typed-errors",
                "no-deprecated-stage-api",
                "no-deprecated-target-api",
                "trace-emit-coverage",
                "doc-coverage",
                "lock-discipline",
                "reservation-pairing",
                "span-balance",
            ]
        );
    }

    #[test]
    fn in_dir_matches_whole_components() {
        assert!(in_dir("crates/core/src/cache.rs", "crates/core"));
        assert!(!in_dir("crates/core_extra/src/x.rs", "crates/core"));
        assert!(!in_dir("crates/core", "crates/core"));
    }
}
