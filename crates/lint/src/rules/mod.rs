//! The rule registry.
//!
//! Each rule checks one project invariant the generic toolchain lints
//! cannot express. Rules see the whole indexed workspace (a
//! [`LintContext`]), so cross-file invariants (prelude doc coverage,
//! the workspace-wide lock-order graph) are first-class, the flow
//! rules can query per-function CFGs, and the interprocedural rules
//! can walk the call graph and the inferred effect labels.

use crate::diagnostics::Diagnostic;
use crate::engine::LintContext;

mod doc_coverage;
mod lock_discipline;
mod no_alloc_hot_loop;
mod no_deprecated_stage_api;
mod no_deprecated_target_api;
mod no_wall_clock;
mod panic_free_hot_path;
mod reservation_pairing;
mod span_balance;
mod trace_emit_coverage;
mod typed_errors;

/// One lint rule.
pub trait Rule {
    /// Kebab-case rule name (what `allow(<rule>)` refers to).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Why the invariant matters for this codebase — the paragraph
    /// `--explain <rule>` prints under WHY.
    fn rationale(&self) -> &'static str;

    /// A minimal violating snippet (and, where useful, the fix) for
    /// `--explain <rule>`.
    fn example(&self) -> &'static str;

    /// Appends this rule's violations over the workspace.
    fn check(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in a fixed order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_wall_clock::NoWallClock),
        Box::new(panic_free_hot_path::PanicFreeHotPath),
        Box::new(typed_errors::TypedErrors),
        Box::new(no_deprecated_stage_api::NoDeprecatedStageApi),
        Box::new(no_deprecated_target_api::NoDeprecatedTargetApi),
        Box::new(trace_emit_coverage::TraceEmitCoverage),
        Box::new(doc_coverage::DocCoverage),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(reservation_pairing::ReservationPairing),
        Box::new(span_balance::SpanBalance),
        Box::new(no_alloc_hot_loop::NoAllocHotLoop),
    ]
}

/// Names `allow(<rule>)` accepts: every registered rule. The
/// `suppression` pseudo-rule (malformed allows) is deliberately not
/// listed — a suppression problem cannot be suppressed.
pub fn rule_names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}

/// Whether `rel` lives under the `/`-separated directory `dir`.
pub(crate) fn in_dir(rel: &str, dir: &str) -> bool {
    rel.strip_prefix(dir)
        .is_some_and(|rest| rest.starts_with('/'))
}

/// The closest candidate to `input` by edit distance, if it is close
/// enough to be a plausible typo (distance ≤ 1/3 of the input length,
/// minimum 2). Used by `--explain` and unknown-`allow` diagnostics.
pub fn did_you_mean<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let budget = (input.len() / 3).max(2);
    candidates
        .iter()
        .map(|c| (levenshtein(input, c), *c))
        .filter(|&(d, _)| d <= budget)
        .min() // ties break alphabetically — deterministic output
        .map(|(_, c)| c)
}

/// Classic two-row Levenshtein distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_eleven_rules() {
        let names = rule_names();
        assert_eq!(
            names,
            vec![
                "no-wall-clock",
                "panic-free-hot-path",
                "typed-errors",
                "no-deprecated-stage-api",
                "no-deprecated-target-api",
                "trace-emit-coverage",
                "doc-coverage",
                "lock-discipline",
                "reservation-pairing",
                "span-balance",
                "no-alloc-hot-loop",
            ]
        );
    }

    #[test]
    fn every_rule_has_explain_content() {
        for rule in registry() {
            assert!(!rule.rationale().is_empty(), "{}", rule.name());
            assert!(!rule.example().is_empty(), "{}", rule.name());
        }
    }

    #[test]
    fn in_dir_matches_whole_components() {
        assert!(in_dir("crates/core/src/cache.rs", "crates/core"));
        assert!(!in_dir("crates/core_extra/src/x.rs", "crates/core"));
        assert!(!in_dir("crates/core", "crates/core"));
    }

    #[test]
    fn did_you_mean_suggests_close_names_only() {
        let names = rule_names();
        assert_eq!(
            did_you_mean("panic-free-hotpath", &names),
            Some("panic-free-hot-path")
        );
        assert_eq!(
            did_you_mean("lockdiscipline", &names),
            Some("lock-discipline")
        );
        assert_eq!(did_you_mean("totally-made-up", &names), None);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }
}
