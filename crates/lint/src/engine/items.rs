//! The item index: functions, structs and impl blocks recovered from
//! the flat token stream.
//!
//! The lexer is exact about tokens but knows nothing about structure;
//! this pass brace-matches the stream and recovers the three shapes the
//! flow rules need:
//!
//! 1. **Functions** — name, enclosing `impl` type, body token range,
//!    and whether the function is test-only (`#[test]`, or anywhere
//!    under a `#[cfg(test)]` item). The flow rules analyse non-test
//!    functions; tests intentionally leak reservations and hold guards
//!    to probe edge cases.
//! 2. **Structs** — field names with their (token-joined) type text, so
//!    `Mutex`/`RwLock` fields can be recognised as lock sites.
//! 3. **Brace matching** — `open_of`/`close_of` maps over the whole
//!    stream, shared by the CFG builder and the idiom classifiers.

use crate::lexer::{TokKind, Token};
use crate::workspace::SourceFile;
use std::collections::HashMap;
use std::ops::Range;

/// One function item (free, impl method, or nested).
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the innermost enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body *including* its braces; `None` for
    /// trait-method declarations without a body.
    pub body: Option<Range<usize>>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / under `#[test]`.
    pub is_test: bool,
}

/// One struct field.
#[derive(Debug)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Type text, tokens joined by single spaces (e.g. `Mutex < u64 >`).
    pub ty: String,
}

/// One struct with named fields.
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldItem>,
}

/// Everything the engine recovered from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions in source order.
    pub functions: Vec<FnItem>,
    /// Structs in source order.
    pub structs: Vec<StructItem>,
    /// `close_of[i] = j` for every `{`/`(`/`[` at token `i` whose
    /// matching closer is at token `j`.
    pub close_of: HashMap<usize, usize>,
    /// Inverse of `close_of`.
    pub open_of: HashMap<usize, usize>,
    /// Per-token: inside a test item.
    pub in_test: Vec<bool>,
}

impl FileItems {
    /// Whether token `i` sits inside test-only code.
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Builds the index for one lexed file.
pub fn index_file(file: &SourceFile) -> FileItems {
    let toks = &file.lexed.tokens;
    let mut out = FileItems {
        in_test: vec![false; toks.len()],
        ..FileItems::default()
    };
    match_brackets(toks, &mut out);
    mark_tests(toks, &mut out);
    collect_structs(toks, &mut out);
    collect_functions(toks, &mut out);
    out
}

/// Is this token any opening bracket?
fn is_open(t: &Token) -> bool {
    t.is_punct("{") || t.is_punct("(") || t.is_punct("[")
}

/// Is this token any closing bracket?
fn is_close(t: &Token) -> bool {
    t.is_punct("}") || t.is_punct(")") || t.is_punct("]")
}

fn match_brackets(toks: &[Token], out: &mut FileItems) {
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if is_open(t) {
            stack.push(i);
        } else if is_close(t) {
            // Tolerate mismatches (macro soup): pop whatever is open.
            if let Some(open) = stack.pop() {
                out.close_of.insert(open, i);
                out.open_of.insert(i, open);
            }
        }
    }
}

/// Marks the token ranges of test-only items: an item annotated
/// `#[test]` (or any `#[…test…]` attribute such as `#[cfg(test)]`),
/// including everything nested inside its braces.
fn mark_tests(toks: &[Token], out: &mut FileItems) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(&attr_close) = out.close_of.get(&(i + 1)) else {
            i += 1;
            continue;
        };
        let is_test_attr = toks[i + 2..attr_close].iter().any(|t| t.is_ident("test"));
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        // The attribute applies to the next item; mark up to the end of
        // its body (the matching `}` of the first top-level `{`).
        let mut j = attr_close + 1;
        let mut body_end = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("#") && toks.get(j + 1).is_some_and(|t| t.is_punct("[")) {
                // Stacked attributes: skip.
                match out.close_of.get(&(j + 1)) {
                    Some(&c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct(";") {
                body_end = Some(j); // item without a body
                break;
            }
            if is_open(t) && !t.is_punct("{") {
                match out.close_of.get(&j) {
                    Some(&c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct("{") {
                body_end = out.close_of.get(&j).copied();
                break;
            }
            j += 1;
        }
        if let Some(end) = body_end {
            for flag in &mut out.in_test[i..=end.min(toks.len() - 1)] {
                *flag = true;
            }
            i = end + 1;
        } else {
            i = attr_close + 1;
        }
    }
}

fn collect_structs(toks: &[Token], out: &mut FileItems) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("struct") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Find the field block: the first `{` before any `;`/`(` at
        // angle-depth 0 (tuple and unit structs carry no named fields).
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && (t.is_punct(";") || t.is_punct("(")) {
                break;
            } else if angle == 0 && t.is_punct("{") {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let mut fields = Vec::new();
        if let Some(open) = open {
            if let Some(&close) = out.close_of.get(&open) {
                let mut k = open + 1;
                while k < close {
                    let t = &toks[k];
                    if is_open(t) {
                        // Nested braces (default exprs, attrs) — skip.
                        match out.close_of.get(&k) {
                            Some(&c) => k = c + 1,
                            None => k += 1,
                        }
                        continue;
                    }
                    if t.kind == TokKind::Ident
                        && toks.get(k + 1).is_some_and(|n| n.is_punct(":"))
                        && !toks.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct(":"))
                    {
                        // Type runs to the `,` at this level or to close.
                        let mut ty = Vec::new();
                        let mut m = k + 2;
                        let mut depth = 0i32;
                        while m < close {
                            let tt = &toks[m];
                            if tt.is_punct("<") || tt.is_punct("(") || tt.is_punct("[") {
                                depth += 1;
                            } else if tt.is_punct(">") || tt.is_punct(")") || tt.is_punct("]") {
                                depth -= 1;
                            } else if depth == 0 && tt.is_punct(",") {
                                break;
                            }
                            ty.push(tt.text.as_str());
                            m += 1;
                        }
                        fields.push(FieldItem {
                            name: t.text.clone(),
                            ty: ty.join(" "),
                        });
                        k = m + 1;
                        continue;
                    }
                    k += 1;
                }
            }
        }
        out.structs.push(StructItem {
            name: name.text.clone(),
            fields,
        });
    }
}

/// The self-type name of an `impl` header starting at token `i` (the
/// `impl` keyword): the last identifier at angle-depth 0 before the
/// body `{` (cut at `where`; after `for` when present).
fn impl_self_type(toks: &[Token], i: usize, out: &FileItems) -> Option<(String, Range<usize>)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident = None;
    let mut after_for = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 && t.is_punct("{") {
            let close = out.close_of.get(&j).copied()?;
            return last_ident.map(|name: String| (name, j..close + 1));
        } else if angle == 0 && t.is_ident("where") {
            // The bound list may mention many types; freeze the name.
            after_for = true; // stop updating
        } else if angle == 0 && t.is_ident("for") {
            last_ident = None; // the trait name was not the self type
            after_for = false;
        } else if angle == 0 && t.kind == TokKind::Ident && !after_for {
            last_ident = Some(t.text.clone());
        }
        j += 1;
    }
    None
}

fn collect_functions(toks: &[Token], out: &mut FileItems) {
    // Impl contexts: (body range, self type), innermost last.
    let mut impls: Vec<(Range<usize>, String)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("impl") {
            if let Some((name, range)) = impl_self_type(toks, i, out) {
                impls.push((range, name));
            }
        }
        if !toks[i].is_ident("fn") {
            continue;
        }
        // `fn` as a type (`fn(u8) -> u8`) has no name ident after it.
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Walk to the body `{` (or the decl-only `;`) at bracket depth 0.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(";") {
                break;
            } else if depth == 0 && t.is_punct("{") {
                body = out.close_of.get(&j).map(|&c| j..c + 1);
                break;
            }
            j += 1;
        }
        let impl_type = impls
            .iter()
            .rev()
            .find(|(r, _)| r.contains(&i))
            .map(|(_, n)| n.clone());
        out.functions.push(FnItem {
            name: name.text.clone(),
            impl_type,
            fn_tok: i,
            body,
            line: toks[i].line,
            is_test: out.is_test_tok(i),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "x.rs".to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        }
    }

    #[test]
    fn functions_carry_impl_type_and_body_ranges() {
        let f = file(
            "pub struct Cache { stats: Mutex<u64> }\n\
             impl Cache {\n    fn store(&self) { self.stats.lock(); }\n}\n\
             fn free() {}\n",
        );
        let idx = index_file(&f);
        let names: Vec<(&str, Option<&str>)> = idx
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(names, vec![("store", Some("Cache")), ("free", None)]);
        assert!(idx.functions[0].body.is_some());
    }

    #[test]
    fn trait_impls_use_the_self_type_after_for() {
        let f = file("impl Drop for Guard<'_> {\n    fn drop(&mut self) {}\n}\n");
        let idx = index_file(&f);
        assert_eq!(idx.functions[0].impl_type.as_deref(), Some("Guard"));
    }

    #[test]
    fn struct_fields_keep_their_type_text() {
        let f = file("struct S { a: Mutex<u64>, b: Vec<(u8, u8)>, c: u8 }\nstruct T(u8);\n");
        let idx = index_file(&f);
        let s = &idx.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].ty, "Mutex < u64 >");
        assert_eq!(s.fields[1].name, "b");
        assert!(idx.structs[1].fields.is_empty());
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let f = file(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn probe() {}\n}\n",
        );
        let idx = index_file(&f);
        let by_name = |n: &str| idx.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").is_test);
        assert!(by_name("probe").is_test);
    }

    #[test]
    fn where_clauses_do_not_steal_the_impl_type() {
        let f = file("impl<T> Stack<T> where T: Clone {\n    fn push(&self) {}\n}\n");
        let idx = index_file(&f);
        assert_eq!(idx.functions[0].impl_type.as_deref(), Some("Stack"));
    }
}
