//! The workspace call graph.
//!
//! Interprocedural rules need to know, for every function, which other
//! *workspace* functions it calls. This module scans each non-test
//! function body for call sites — `recv.name(…)` method calls,
//! `Type::name(…)` qualified calls, bare `name(…)` free calls, and
//! `name!(…)` macro invocations — and resolves each one against the
//! item index:
//!
//! - `self.m()` resolves against the enclosing `impl` type (trait
//!   impls included: [`FnItem::impl_type`] is the self type).
//! - `self.field.m()` resolves through the field's declared type,
//!   looking through `Arc`/`Rc`/`Box` wrappers.
//! - `Self::m(…)` / `Type::m(…)` resolve against the named type; a
//!   qualifier that is no workspace type falls back to a free function
//!   of that name (module-qualified calls like `facts::method_calls`).
//! - Everything else (locals, trait objects, call-result receivers)
//!   resolves only when the name is unambiguous workspace-wide and not
//!   a common `std` method name.
//!
//! Anything still ambiguous — shadowed method names across impl types,
//! `dyn Trait` dispatch, `std` calls — stays **unresolved** and
//! contributes no interprocedural edge: the effect inference gives up
//! soundly rather than guess, exactly like the escape analysis in
//! [`facts`](super::facts) hands escaping obligations to the caller.

use super::items::FileItems;
use super::FileCtx;
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// A function, addressed as `(file index, function index)` into the
/// context's parallel `files[…].items.functions[…]` arrays.
pub type FnId = (usize, usize);

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)` with the receiver chain (`self.tiers.reserve`
    /// → `["self", "tiers"]`; empty when the receiver is opaque).
    Method(Vec<String>),
    /// `Qualifier::name(…)`; the qualifier is `None` when it is not a
    /// plain identifier (`<T as Trait>::name`).
    Qualified(Option<String>),
    /// Bare `name(…)`.
    Free,
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee-name identifier.
    pub name_tok: usize,
    /// Callee name as written.
    pub name: String,
    /// 1-based source line of the name token.
    pub line: u32,
    /// 1-based source column of the name token.
    pub col: u32,
    /// Syntactic form of the call.
    pub kind: CallKind,
    /// Resolved workspace callee; `None` when the target is outside
    /// the workspace, a macro, or ambiguous (trait objects, shadowed
    /// method names).
    pub callee: Option<FnId>,
}

/// The workspace call graph: call sites per function plus reverse
/// (caller) edges. All maps are ordered so iteration is deterministic.
#[derive(Debug, Default)]
pub struct CallGraph {
    calls: BTreeMap<FnId, Vec<CallSite>>,
    callers: BTreeMap<FnId, Vec<FnId>>,
}

/// Method names too generic to resolve through the *unknown-receiver*
/// fallback: `std` containers and combinators use them, so a unique
/// workspace method of the same name must not capture every call.
const COMMON_METHODS: [&str; 42] = [
    "abs",
    "and_then",
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "contains",
    "contains_key",
    "drain",
    "entry",
    "eq",
    "extend",
    "flush",
    "fmt",
    "get",
    "get_mut",
    "hash",
    "insert",
    "iter",
    "iter_mut",
    "join",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "pop",
    "push",
    "read",
    "remove",
    "replace",
    "split",
    "store",
    "take",
    "to_owned",
    "to_string",
    "unwrap_or",
    "with_capacity",
    "write",
];

/// Keywords that look like `name(`/`name!(…)` heads but are not calls.
const NON_CALL_IDENTS: [&str; 22] = [
    "Self", "as", "async", "await", "box", "break", "continue", "crate", "dyn", "else", "fn",
    "for", "if", "in", "let", "loop", "match", "move", "return", "self", "unsafe", "while",
];

/// Keywords that, immediately before `name(`, mark a definition or
/// declaration instead of a call.
const NON_CALL_PREV: [&str; 5] = ["enum", "fn", "struct", "trait", "union"];

struct Index {
    /// `(impl type, method name)` → definitions.
    methods: BTreeMap<(String, String), Vec<FnId>>,
    /// method name → definitions across all impl types.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// free-fn name → definitions.
    free: BTreeMap<String, Vec<FnId>>,
    /// `(struct name, field name)` → head type identifier.
    field_ty: BTreeMap<(String, String), String>,
}

impl CallGraph {
    /// Builds the graph over every indexed file.
    pub fn build(files: &[FileCtx<'_>]) -> CallGraph {
        let idx = build_index(files);
        let mut graph = CallGraph::default();
        for (fi, fc) in files.iter().enumerate() {
            scan_file(fi, fc, &idx, &mut graph.calls);
        }
        for (&caller, sites) in &graph.calls {
            for site in sites {
                if let Some(callee) = site.callee {
                    let v = graph.callers.entry(callee).or_default();
                    if v.last() != Some(&caller) && !v.contains(&caller) {
                        v.push(caller);
                    }
                }
            }
        }
        for v in graph.callers.values_mut() {
            v.sort_unstable();
        }
        graph
    }

    /// Call sites of `f`, in token order (empty for unknown ids).
    pub fn calls_of(&self, f: FnId) -> &[CallSite] {
        self.calls.get(&f).map_or(&[], Vec::as_slice)
    }

    /// Functions with at least one call site into `f`, sorted.
    pub fn callers_of(&self, f: FnId) -> &[FnId] {
        self.callers.get(&f).map_or(&[], Vec::as_slice)
    }
}

/// The innermost non-test function whose body contains token `tok`.
pub(crate) fn innermost_fn(items: &FileItems, tok: usize) -> Option<usize> {
    items
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test && f.body.as_ref().is_some_and(|b| b.contains(&tok)))
        .min_by_key(|(_, f)| {
            let b = f.body.as_ref().expect("filtered on body");
            b.end - b.start
        })
        .map(|(k, _)| k)
}

fn build_index(files: &[FileCtx<'_>]) -> Index {
    let mut idx = Index {
        methods: BTreeMap::new(),
        methods_by_name: BTreeMap::new(),
        free: BTreeMap::new(),
        field_ty: BTreeMap::new(),
    };
    for (fi, fc) in files.iter().enumerate() {
        for (k, f) in fc.items.functions.iter().enumerate() {
            // Test helpers and body-less trait declarations are not
            // resolution targets; letting them in would both pollute
            // unique-name resolution and resolve calls to stubs.
            if f.is_test || f.body.is_none() {
                continue;
            }
            let id = (fi, k);
            match &f.impl_type {
                Some(ty) => {
                    idx.methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    idx.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                }
                None => idx.free.entry(f.name.clone()).or_default().push(id),
            }
        }
        for s in &fc.items.structs {
            for field in &s.fields {
                if let Some(head) = head_type(&field.ty) {
                    idx.field_ty
                        .insert((s.name.clone(), field.name.clone()), head);
                }
            }
        }
    }
    idx
}

/// The resolution-relevant head of a field type: the first identifier,
/// looking through `&`/`mut` and the deref-transparent `Arc`/`Rc`/`Box`
/// wrappers (`Arc<Mutex<Inner>>` stops at `Mutex`: methods called on
/// that field are the wrapper's, not `Inner`'s).
fn head_type(ty: &str) -> Option<String> {
    let toks: Vec<&str> = ty.split_whitespace().collect();
    let mut i = 0;
    while toks
        .get(i)
        .is_some_and(|t| *t == "&" || *t == "mut" || t.starts_with('\''))
    {
        i += 1;
    }
    while ["Arc", "Rc", "Box"].contains(toks.get(i)?) && toks.get(i + 1) == Some(&"<") {
        i += 2;
    }
    let head = *toks.get(i)?;
    head.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        .then(|| head.to_owned())
}

/// For an identifier at `i`, the token index of the argument-list `(`
/// when this is a call — allowing a `::<…>` turbofish between name and
/// parens — else `None`.
fn arg_paren(toks: &[Token], i: usize) -> Option<usize> {
    let next = toks.get(i + 1)?;
    if next.is_punct("(") {
        return Some(i + 1);
    }
    if !next.is_punct("::") || !toks.get(i + 2).is_some_and(|t| t.is_punct("<")) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i + 2) {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return toks
                    .get(j + 1)
                    .is_some_and(|t| t.is_punct("("))
                    .then_some(j + 1);
            }
        } else if t.is_punct(";") || t.is_punct("{") {
            return None;
        }
    }
    None
}

/// The receiver chain of a method call at `i` (the name identifier),
/// mirroring [`facts::method_calls`](super::facts::method_calls):
/// `self.tiers.reserve` → `["self", "tiers"]`, empty when opaque.
fn receiver_chain(toks: &[Token], i: usize) -> Vec<String> {
    let mut recv = Vec::new();
    let mut k = i - 1; // the `.`
    loop {
        if k == 0 {
            break;
        }
        let p = &toks[k - 1];
        if p.kind == TokKind::Ident {
            recv.push(p.text.clone());
            if k >= 2 && toks[k - 2].is_punct(".") {
                k -= 2;
                continue;
            }
            if k >= 2 && toks[k - 2].is_punct("::") {
                recv.clear(); // path receiver: opaque
            }
            break;
        }
        recv.clear(); // call result / index / literal receiver
        break;
    }
    recv.reverse();
    recv
}

fn scan_file(fi: usize, fc: &FileCtx<'_>, idx: &Index, out: &mut BTreeMap<FnId, Vec<CallSite>>) {
    let toks = &fc.file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || fc.items.is_test_tok(i)
            || NON_CALL_IDENTS.contains(&t.text.as_str())
        {
            continue;
        }
        let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"));
        if !is_macro && arg_paren(toks, i).is_none() {
            continue;
        }
        let prev = (i > 0).then(|| &toks[i - 1]);
        if prev
            .is_some_and(|p| p.kind == TokKind::Ident && NON_CALL_PREV.contains(&p.text.as_str()))
        {
            continue;
        }
        let Some(owner) = innermost_fn(&fc.items, i) else {
            continue;
        };
        let encl_impl = fc.items.functions[owner].impl_type.as_deref();
        let (kind, callee) = if is_macro {
            (CallKind::Macro, None)
        } else if prev.is_some_and(|p| p.is_punct(".")) {
            let recv = receiver_chain(toks, i);
            let callee = resolve_method(&recv, encl_impl, &t.text, idx);
            (CallKind::Method(recv), callee)
        } else if prev.is_some_and(|p| p.is_punct("::")) {
            let qual = (i >= 2)
                .then(|| &toks[i - 2])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone());
            let callee = resolve_qualified(qual.as_deref(), encl_impl, &t.text, idx);
            (CallKind::Qualified(qual), callee)
        } else {
            (CallKind::Free, unique(idx.free.get(&t.text)))
        };
        out.entry((fi, owner)).or_default().push(CallSite {
            name_tok: i,
            name: t.text.clone(),
            line: t.line,
            col: t.col,
            kind,
            callee,
        });
    }
}

/// The single element of `ids`, if there is exactly one.
fn unique(ids: Option<&Vec<FnId>>) -> Option<FnId> {
    match ids.map(Vec::as_slice) {
        Some([only]) => Some(*only),
        _ => None,
    }
}

fn resolve_method(
    recv: &[String],
    encl_impl: Option<&str>,
    name: &str,
    idx: &Index,
) -> Option<FnId> {
    if recv.first().is_some_and(|r| r == "self") {
        if let Some(ty) = encl_impl {
            if recv.len() == 1 {
                // `self.m()`: the receiver type is known exactly; a
                // miss means the method lives outside the workspace
                // (deref/trait-default) — do not guess elsewhere.
                return unique(idx.methods.get(&(ty.to_owned(), name.to_owned())));
            }
            if recv.len() == 2 {
                if let Some(fty) = idx.field_ty.get(&(ty.to_owned(), recv[1].clone())) {
                    return unique(idx.methods.get(&(fty.clone(), name.to_owned())));
                }
            }
        }
    }
    // Unknown receiver (local, long chain, untyped field): resolve only
    // when exactly one workspace method bears the name and the name is
    // not a `std`-common one.
    if COMMON_METHODS.contains(&name) {
        return None;
    }
    unique(idx.methods_by_name.get(name))
}

fn resolve_qualified(
    qual: Option<&str>,
    encl_impl: Option<&str>,
    name: &str,
    idx: &Index,
) -> Option<FnId> {
    let ty = match qual {
        Some("Self") => encl_impl?,
        Some(q) => q,
        None => return None,
    };
    let key = (ty.to_owned(), name.to_owned());
    if idx.methods.contains_key(&key) {
        return unique(idx.methods.get(&key));
    }
    // Not a workspace type: a module-qualified free call
    // (`facts::method_calls(…)`) or an out-of-workspace path
    // (`Vec::new`, enum variants) — the free-fn table decides.
    unique(idx.free.get(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintContext;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    /// The resolved callee names of function `name`, via the context.
    fn resolved(ctx: &LintContext, name: &str) -> Vec<String> {
        let id = ctx.fn_by_name(name).expect("caller exists");
        ctx.graph
            .calls_of(id)
            .iter()
            .filter_map(|s| s.callee)
            .map(|c| ctx.fn_item(c).name.clone())
            .collect()
    }

    #[test]
    fn self_and_field_receivers_resolve_through_impl_types() {
        let ws = ws_of(&[(
            "a.rs",
            "struct Clock; impl Clock { fn tick(&self) {} }\n\
             struct Engine { clock: Arc<Clock> }\n\
             impl Engine {\n\
               fn run(&self) { self.pump(); self.clock.tick(); }\n\
               fn pump(&self) {}\n\
             }\n",
        )]);
        let ctx = LintContext::new(&ws);
        assert_eq!(resolved(&ctx, "run"), vec!["pump", "tick"]);
    }

    #[test]
    fn qualified_and_free_calls_resolve() {
        let ws = ws_of(&[
            (
                "a.rs",
                "struct Clock; impl Clock { fn now() -> u64 { 0 }\n\
                   fn probe(&self) -> u64 { Self::now() } }\n",
            ),
            (
                "b.rs",
                "fn helper(x: u64) -> u64 { x }\n\
                 fn caller() -> u64 { helper(Clock::now()) + util::helper(1) }\n",
            ),
        ]);
        let ctx = LintContext::new(&ws);
        assert_eq!(resolved(&ctx, "probe"), vec!["now"]);
        // Free, qualified-by-type, and module-qualified all resolve.
        assert_eq!(resolved(&ctx, "caller"), vec!["helper", "now", "helper"]);
    }

    #[test]
    fn shadowed_method_names_stay_unresolved() {
        let ws = ws_of(&[(
            "a.rs",
            "struct A; impl A { fn refresh(&self) {} }\n\
             struct B; impl B { fn refresh(&self) {} }\n\
             fn poll(x: &X) { x.refresh(); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        assert!(resolved(&ctx, "poll").is_empty());
    }

    #[test]
    fn unique_unknown_receiver_methods_resolve_unless_std_common() {
        let ws = ws_of(&[(
            "a.rs",
            "struct A; impl A { fn refresh_caches(&self) {} fn len(&self) -> usize { 0 } }\n\
             fn poll(x: &X, v: &Vec<u8>) { x.refresh_caches(); v.len(); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        // `refresh_caches` is unique → resolves; `len` is std-common →
        // never through the fallback.
        assert_eq!(resolved(&ctx, "poll"), vec!["refresh_caches"]);
    }

    #[test]
    fn turbofish_macros_and_defs_are_classified() {
        let ws = ws_of(&[(
            "a.rs",
            "fn parse<T>(s: &str) -> T { todo!() }\n\
             fn caller() { let x = parse::<u64>(\"1\"); vec![1]; }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let id = ctx.fn_by_name("caller").unwrap();
        let sites = ctx.graph.calls_of(id);
        let names: Vec<(&str, &CallKind)> =
            sites.iter().map(|s| (s.name.as_str(), &s.kind)).collect();
        assert!(names.contains(&("parse", &CallKind::Free)));
        assert!(names.contains(&("vec", &CallKind::Macro)));
        // `fn parse` / `fn caller` definitions are not call sites.
        assert!(sites.iter().all(|s| s.name != "caller"));
    }

    #[test]
    fn reverse_edges_are_sorted_and_deduplicated() {
        let ws = ws_of(&[(
            "a.rs",
            "fn leaf() {}\n\
             fn a() { leaf(); leaf(); }\n\
             fn b() { leaf(); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let leaf = ctx.fn_by_name("leaf").unwrap();
        let callers: Vec<String> = ctx
            .graph
            .callers_of(leaf)
            .iter()
            .map(|&c| ctx.fn_item(c).name.clone())
            .collect();
        assert_eq!(callers, vec!["a", "b"]);
    }

    #[test]
    fn test_code_contributes_no_edges() {
        let ws = ws_of(&[(
            "a.rs",
            "fn leaf() {}\n\
             #[cfg(test)]\nmod tests { fn probe() { leaf(); } }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let leaf = ctx.fn_by_name("leaf").unwrap();
        assert!(ctx.graph.callers_of(leaf).is_empty());
    }

    #[test]
    fn head_types_look_through_wrappers() {
        assert_eq!(head_type("Arc < Clock >").as_deref(), Some("Clock"));
        assert_eq!(head_type("Arc < Mutex < u64 > >").as_deref(), Some("Mutex"));
        assert_eq!(head_type("& mut TierStack").as_deref(), Some("TierStack"));
        assert_eq!(head_type("Option < Clock >").as_deref(), Some("Option"));
    }
}
