//! The flow-analysis engine: item index, intraprocedural CFG, symbolic
//! acquisition/release facts, and the interprocedural layer.
//!
//! Layering (each stage consumes only the ones below):
//!
//! ```text
//! lexer  ──►  items  ──►  cfg  ──►  facts
//! tokens      fns/structs  paths    acquire/settle queries
//!                 │
//!                 └──►  callgraph  ──►  effects
//!                       who calls whom  transitive clock/panic/alloc
//! ```
//!
//! [`LintContext`] packages one workspace with every file's item index,
//! the workspace-wide lock-field table, the call graph, the inferred
//! effect labels, and the parsed per-file suppressions — it is what
//! rules receive instead of a bare [`Workspace`].

pub mod callgraph;
pub mod cfg;
pub mod effects;
pub mod facts;
pub mod items;

use crate::diagnostics::{Diagnostic, RelatedLocation};
use crate::suppress::{self, Suppressions};
use crate::workspace::{SourceFile, Workspace};
use callgraph::{CallGraph, FnId};
use cfg::Cfg;
use effects::{Effect, Effects};
use facts::MethodCall;
use items::{FileItems, FnItem};
use std::collections::BTreeMap;

/// One workspace file with its item index.
pub struct FileCtx<'w> {
    /// The lexed source file.
    pub file: &'w SourceFile,
    /// Functions, structs, brace matching, test ranges.
    pub items: FileItems,
}

impl FileCtx<'_> {
    /// The CFG of one of this file's functions.
    pub fn cfg_of(&self, f: &FnItem) -> Option<Cfg> {
        let body = f.body.clone()?;
        Some(Cfg::build(&self.file.lexed.tokens, &self.items, body))
    }

    /// Method-call sites inside one function's body.
    pub fn calls_in(&self, f: &FnItem) -> Vec<MethodCall> {
        match &f.body {
            Some(body) => facts::method_calls(&self.file.lexed.tokens, &self.items, body.clone()),
            None => Vec::new(),
        }
    }

    /// The innermost function whose body contains token `tok`.
    pub fn fn_containing(&self, tok: usize) -> Option<&FnItem> {
        self.items
            .functions
            .iter()
            .filter(|f| f.body.as_ref().is_some_and(|b| b.contains(&tok)))
            .min_by_key(|f| {
                let b = f.body.as_ref().expect("filtered on body");
                b.end - b.start
            })
    }
}

/// A rendered interprocedural finding path: from a reporting function,
/// through the call chain, down to the effect seed.
#[derive(Debug)]
pub struct EffectChain {
    /// `entry → helper → seed` path, names unquoted, the seed rendered
    /// last (`run_step → flush → advance_to`).
    pub path: String,
    /// Number of calls the path traverses (arrows in `path`).
    pub calls: usize,
    /// One related location per intermediate call site, plus the seed.
    pub related: Vec<RelatedLocation>,
    /// Workspace-relative path of the seed's file.
    pub seed_path: String,
    /// 1-based line of the seed.
    pub seed_line: u32,
    /// Seed rendering (`panic!`, `.unwrap()`, `advance_to`, …).
    pub seed_what: String,
}

/// The whole workspace, indexed for the rules.
pub struct LintContext<'w> {
    /// The raw workspace (file list, root).
    pub ws: &'w Workspace,
    /// Per-file item indexes, parallel to `ws.files`.
    pub files: Vec<FileCtx<'w>>,
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Transitive clock/panic/alloc effect labels per function.
    pub effects: Effects,
    /// Parsed suppression comments, parallel to `files`.
    pub suppressions: Vec<Suppressions>,
    /// Malformed-allow diagnostics collected while parsing
    /// suppressions (rule `suppression`; not suppressible).
    pub bad_suppressions: Vec<Diagnostic>,
    /// `struct name → lock-typed field names` (`Mutex`/`RwLock`,
    /// including through `Arc<…>`), workspace-wide.
    lock_fields: BTreeMap<String, Vec<String>>,
}

impl<'w> LintContext<'w> {
    /// Indexes every file of the workspace and runs the
    /// interprocedural passes.
    pub fn new(ws: &'w Workspace) -> LintContext<'w> {
        let files: Vec<FileCtx<'w>> = ws
            .files
            .iter()
            .map(|file| FileCtx {
                file,
                items: items::index_file(file),
            })
            .collect();
        let rule_names = crate::rules::rule_names();
        let mut bad_suppressions = Vec::new();
        let suppressions: Vec<Suppressions> = ws
            .files
            .iter()
            .map(|file| suppress::parse(file, &rule_names, &mut bad_suppressions))
            .collect();
        let mut lock_fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for fc in &files {
            for s in &fc.items.structs {
                for field in &s.fields {
                    if field.ty.contains("Mutex <") || field.ty.contains("RwLock <") {
                        lock_fields
                            .entry(s.name.clone())
                            .or_default()
                            .push(field.name.clone());
                    }
                }
            }
        }
        let graph = CallGraph::build(&files);
        let effects = Effects::infer(&files, &graph, &suppressions);
        LintContext {
            ws,
            files,
            graph,
            effects,
            suppressions,
            bad_suppressions,
            lock_fields,
        }
    }

    /// The function item behind a call-graph node.
    pub fn fn_item(&self, f: FnId) -> &FnItem {
        &self.files[f.0].items.functions[f.1]
    }

    /// The first function (in file, then source order) with `name` —
    /// a lookup for tests and single-definition names.
    pub fn fn_by_name(&self, name: &str) -> Option<FnId> {
        self.files.iter().enumerate().find_map(|(fi, fc)| {
            fc.items
                .functions
                .iter()
                .position(|f| f.name == name)
                .map(|k| (fi, k))
        })
    }

    /// Renders the chain behind a transitive finding: the reporting
    /// function `entry_name` calls `callee`, whose effect set contains
    /// `e`. `None` when `callee` does not carry the effect.
    pub fn effect_chain(&self, entry_name: &str, callee: FnId, e: Effect) -> Option<EffectChain> {
        let w = self.effects.witness(callee, e)?;
        let mut names = vec![entry_name.to_owned(), self.fn_item(callee).name.clone()];
        let mut related = Vec::new();
        for (hop_fn, via) in &w.hops {
            related.push(RelatedLocation {
                path: self.files[hop_fn.0].file.rel.clone(),
                line: via.line,
                col: via.col,
                message: format!(
                    "`{}` calls `{}`",
                    self.fn_item(*hop_fn).name,
                    self.fn_item(via.callee).name
                ),
            });
            names.push(self.fn_item(via.callee).name.clone());
        }
        let seed_path = self.files[w.seed_fn.0].file.rel.clone();
        related.push(RelatedLocation {
            path: seed_path.clone(),
            line: w.seed.line,
            col: w.seed.col,
            message: format!("effect seed: {}", w.seed.what),
        });
        let calls = names.len(); // n names → n-1 fn arrows, +1 to the seed
        Some(EffectChain {
            path: format!("{} → {}", names.join(" → "), w.seed.what),
            calls,
            related,
            seed_path,
            seed_line: w.seed.line,
            seed_what: w.seed.what.clone(),
        })
    }

    /// Resolves a lock call's receiver chain to its `Type.field`
    /// symbol. A `self.<field>` chain resolves against the enclosing
    /// impl type; any other chain resolves by its final identifier when
    /// exactly one struct in the workspace declares a lock field of
    /// that name.
    pub fn lock_symbol(&self, impl_type: Option<&str>, recv: &[String]) -> Option<String> {
        let field = recv.last()?;
        if recv.first().is_some_and(|r| r == "self") && recv.len() == 2 {
            if let Some(ty) = impl_type {
                if self
                    .lock_fields
                    .get(ty)
                    .is_some_and(|fs| fs.iter().any(|f| f == field))
                {
                    return Some(format!("{ty}.{field}"));
                }
            }
        }
        let owners: Vec<&String> = self
            .lock_fields
            .iter()
            .filter(|(_, fs)| fs.iter().any(|f| f == field))
            .map(|(ty, _)| ty)
            .collect();
        match owners.as_slice() {
            [only] => Some(format!("{only}.{field}")),
            _ => None, // unknown or ambiguous: stay silent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    #[test]
    fn lock_symbols_resolve_through_self_and_unique_fields() {
        let ws = ws_of(&[
            (
                "a.rs",
                "pub struct Cache { stats: Mutex<u64>, inner: Mutex<Inner> }\n\
                 pub struct Stack { inner: Mutex<Vec<u8>> }\n",
            ),
            ("b.rs", "pub struct Clock { now: RwLock<f64> }\n"),
        ]);
        let ctx = LintContext::new(&ws);
        let own = |s: &str| s.split('.').map(str::to_owned).collect::<Vec<_>>();
        // self.<field> against the impl type.
        assert_eq!(
            ctx.lock_symbol(Some("Cache"), &own("self.stats")),
            Some("Cache.stats".to_owned())
        );
        // `inner` is declared by two structs: self-resolution works,
        // bare resolution stays silent.
        assert_eq!(
            ctx.lock_symbol(Some("Stack"), &own("self.inner")),
            Some("Stack.inner".to_owned())
        );
        assert_eq!(ctx.lock_symbol(None, &own("x.inner")), None);
        // A unique field name resolves from anywhere.
        assert_eq!(
            ctx.lock_symbol(None, &own("clock.now")),
            Some("Clock.now".to_owned())
        );
        // Non-lock fields never resolve.
        assert_eq!(ctx.lock_symbol(Some("Cache"), &own("self.missing")), None);
    }

    #[test]
    fn effect_chains_render_the_full_path_with_related_locations() {
        let ws = ws_of(&[(
            "crates/train/src/executor.rs",
            "impl Exec {\n\
               fn run_step(&mut self) { self.flush(); }\n\
               fn flush(&mut self) { self.clock.advance_to(self.t); }\n\
             }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let flush = ctx.fn_by_name("flush").unwrap();
        let chain = ctx
            .effect_chain("run_step", flush, Effect::AdvancesClock)
            .unwrap();
        assert_eq!(chain.path, "run_step → flush → advance_to");
        assert_eq!(chain.calls, 2);
        assert_eq!(chain.seed_what, "advance_to");
        // One related location: the seed (no intermediate hops).
        assert_eq!(chain.related.len(), 1);
        assert!(chain.related[0].message.contains("advance_to"));
        assert_eq!(chain.related[0].path, "crates/train/src/executor.rs");
    }

    #[test]
    fn deeper_chains_carry_one_related_location_per_hop() {
        let ws = ws_of(&[(
            "a.rs",
            "fn entry() { mid(); }\n\
             fn mid() { deep(); }\n\
             fn deep() { clock.advance_by(1); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let mid = ctx.fn_by_name("mid").unwrap();
        let chain = ctx
            .effect_chain("entry", mid, Effect::AdvancesClock)
            .unwrap();
        assert_eq!(chain.path, "entry → mid → deep → advance_by");
        assert_eq!(chain.calls, 3);
        assert_eq!(chain.related.len(), 2, "{:?}", chain.related);
        assert!(chain.related[0].message.contains("`mid` calls `deep`"));
        assert!(chain.related[1].message.contains("effect seed"));
    }
}
