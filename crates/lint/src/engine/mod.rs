//! The flow-analysis engine: item index, intraprocedural CFG, and
//! symbolic acquisition/release facts.
//!
//! Layering (each stage consumes only the one below):
//!
//! ```text
//! lexer  ──►  items  ──►  cfg  ──►  facts
//! tokens      fns/structs  paths    acquire/settle queries
//! ```
//!
//! [`LintContext`] packages one workspace with every file's item index
//! plus the workspace-wide lock-field table, and is what rules receive
//! instead of a bare [`Workspace`].

pub mod cfg;
pub mod facts;
pub mod items;

use crate::workspace::{SourceFile, Workspace};
use cfg::Cfg;
use facts::MethodCall;
use items::{FileItems, FnItem};
use std::collections::BTreeMap;

/// One workspace file with its item index.
pub struct FileCtx<'w> {
    /// The lexed source file.
    pub file: &'w SourceFile,
    /// Functions, structs, brace matching, test ranges.
    pub items: FileItems,
}

impl FileCtx<'_> {
    /// The CFG of one of this file's functions.
    pub fn cfg_of(&self, f: &FnItem) -> Option<Cfg> {
        let body = f.body.clone()?;
        Some(Cfg::build(&self.file.lexed.tokens, &self.items, body))
    }

    /// Method-call sites inside one function's body.
    pub fn calls_in(&self, f: &FnItem) -> Vec<MethodCall> {
        match &f.body {
            Some(body) => facts::method_calls(&self.file.lexed.tokens, &self.items, body.clone()),
            None => Vec::new(),
        }
    }

    /// The innermost function whose body contains token `tok`.
    pub fn fn_containing(&self, tok: usize) -> Option<&FnItem> {
        self.items
            .functions
            .iter()
            .filter(|f| f.body.as_ref().is_some_and(|b| b.contains(&tok)))
            .min_by_key(|f| {
                let b = f.body.as_ref().expect("filtered on body");
                b.end - b.start
            })
    }
}

/// The whole workspace, indexed for the rules.
pub struct LintContext<'w> {
    /// The raw workspace (file list, root).
    pub ws: &'w Workspace,
    /// Per-file item indexes, parallel to `ws.files`.
    pub files: Vec<FileCtx<'w>>,
    /// `struct name → lock-typed field names` (`Mutex`/`RwLock`,
    /// including through `Arc<…>`), workspace-wide.
    lock_fields: BTreeMap<String, Vec<String>>,
}

impl<'w> LintContext<'w> {
    /// Indexes every file of the workspace.
    pub fn new(ws: &'w Workspace) -> LintContext<'w> {
        let files: Vec<FileCtx<'w>> = ws
            .files
            .iter()
            .map(|file| FileCtx {
                file,
                items: items::index_file(file),
            })
            .collect();
        let mut lock_fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for fc in &files {
            for s in &fc.items.structs {
                for field in &s.fields {
                    if field.ty.contains("Mutex <") || field.ty.contains("RwLock <") {
                        lock_fields
                            .entry(s.name.clone())
                            .or_default()
                            .push(field.name.clone());
                    }
                }
            }
        }
        LintContext {
            ws,
            files,
            lock_fields,
        }
    }

    /// Resolves a lock call's receiver chain to its `Type.field`
    /// symbol. A `self.<field>` chain resolves against the enclosing
    /// impl type; any other chain resolves by its final identifier when
    /// exactly one struct in the workspace declares a lock field of
    /// that name.
    pub fn lock_symbol(&self, impl_type: Option<&str>, recv: &[String]) -> Option<String> {
        let field = recv.last()?;
        if recv.first().is_some_and(|r| r == "self") && recv.len() == 2 {
            if let Some(ty) = impl_type {
                if self
                    .lock_fields
                    .get(ty)
                    .is_some_and(|fs| fs.iter().any(|f| f == field))
                {
                    return Some(format!("{ty}.{field}"));
                }
            }
        }
        let owners: Vec<&String> = self
            .lock_fields
            .iter()
            .filter(|(_, fs)| fs.iter().any(|f| f == field))
            .map(|(ty, _)| ty)
            .collect();
        match owners.as_slice() {
            [only] => Some(format!("{only}.{field}")),
            _ => None, // unknown or ambiguous: stay silent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    #[test]
    fn lock_symbols_resolve_through_self_and_unique_fields() {
        let ws = ws_of(&[
            (
                "a.rs",
                "pub struct Cache { stats: Mutex<u64>, inner: Mutex<Inner> }\n\
                 pub struct Stack { inner: Mutex<Vec<u8>> }\n",
            ),
            ("b.rs", "pub struct Clock { now: RwLock<f64> }\n"),
        ]);
        let ctx = LintContext::new(&ws);
        let own = |s: &str| s.split('.').map(str::to_owned).collect::<Vec<_>>();
        // self.<field> against the impl type.
        assert_eq!(
            ctx.lock_symbol(Some("Cache"), &own("self.stats")),
            Some("Cache.stats".to_owned())
        );
        // `inner` is declared by two structs: self-resolution works,
        // bare resolution stays silent.
        assert_eq!(
            ctx.lock_symbol(Some("Stack"), &own("self.inner")),
            Some("Stack.inner".to_owned())
        );
        assert_eq!(ctx.lock_symbol(None, &own("x.inner")), None);
        // A unique field name resolves from anywhere.
        assert_eq!(
            ctx.lock_symbol(None, &own("clock.now")),
            Some("Clock.now".to_owned())
        );
        // Non-lock fields never resolve.
        assert_eq!(ctx.lock_symbol(Some("Cache"), &own("self.missing")), None);
    }
}
