//! Fixed-point effect inference over the call graph.
//!
//! Every non-test function is labeled with the transitive effect sets
//! the interprocedural rules ask about:
//!
//! - **advances-clock** — seeded by direct `advance_to` / `advance_by`
//!   / `drain_stores` / `wait_io` calls;
//! - **may-panic** — seeded by `panic!`/`todo!`/`unreachable!`,
//!   `.unwrap()`/`.expect()`, and postfix indexing;
//! - **allocates** — seeded by `Vec::new`-family constructors,
//!   `with_capacity`, `.collect()`/`.to_vec()`, and `vec!`/`format!`.
//!
//! Seeds are *call sites in the seeding function*, so wrappers inherit
//! the label transitively: propagation walks reverse call edges
//! breadth-first in sorted order, recording for each newly labeled
//! function its earliest-token call site into an already labeled callee
//! — a deterministic shortest witness chain, reconstructable down to
//! the seed. Unresolved calls (trait objects, `std`) contribute no
//! effects: the analysis gives up soundly instead of guessing.
//!
//! Two reporting refinements:
//!
//! - [`Effect::MayPanicStrict`] excludes indexing seeds. Indexing is
//!   ubiquitous in the tensor kernels (~100 sites in hot files alone),
//!   so the `panic-free-hot-path` rule reports only explicit panic
//!   seeds; the broader label stays queryable.
//! - A seed whose line carries an `allow(<owning rule>)` suppression is
//!   excluded from propagation — one reasoned allow at the seed
//!   silences the whole transitive tree, instead of forcing an allow at
//!   every caller. Clock seeds are never seed-filtered: an allowed
//!   *hold* does not make the callee stop advancing the clock.

use super::callgraph::{self, CallGraph, CallKind, CallSite, FnId};
use super::FileCtx;
use crate::lexer::{TokKind, Token};
use crate::suppress::Suppressions;
use std::collections::{BTreeMap, BTreeSet};

/// Calls that advance the simulated clock or drain queued I/O.
pub const CLOCK_ADVANCING: [&str; 4] = ["advance_to", "advance_by", "drain_stores", "wait_io"];

/// Macros that abort the hot path.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unreachable"];

/// Container types whose `::new()` allocates.
const ALLOC_TYPES: [&str; 8] = [
    "BTreeMap", "BTreeSet", "Box", "HashMap", "HashSet", "String", "Vec", "VecDeque",
];

/// One transitive effect label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Reaches a clock-advancing call.
    AdvancesClock,
    /// Reaches any panic site, indexing included.
    MayPanic,
    /// Reaches an *explicit* panic site (macro/`unwrap`/`expect`) —
    /// the `panic-free-hot-path` reporting channel.
    MayPanicStrict,
    /// Reaches an allocation site.
    Allocates,
}

const CHAN_CLOCK: u8 = 1;
const CHAN_PANIC: u8 = 1 << 1;
const CHAN_STRICT: u8 = 1 << 2;
const CHAN_ALLOC: u8 = 1 << 3;
const CHANNELS: [u8; 4] = [CHAN_CLOCK, CHAN_PANIC, CHAN_STRICT, CHAN_ALLOC];

fn chan_of(e: Effect) -> u8 {
    match e {
        Effect::AdvancesClock => CHAN_CLOCK,
        Effect::MayPanic => CHAN_PANIC,
        Effect::MayPanicStrict => CHAN_STRICT,
        Effect::Allocates => CHAN_ALLOC,
    }
}

/// One direct effect seed inside a function body.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Token index of the seed site.
    pub tok: usize,
    /// 1-based line of the seed.
    pub line: u32,
    /// 1-based column of the seed.
    pub col: u32,
    /// Rendered seed name (`panic!`, `.unwrap()`, `advance_to`,
    /// `Vec::new`, `indexing`, …), used in chain diagnostics.
    pub what: String,
    /// Channel bitmask this seed feeds.
    channels: u8,
    /// Silenced at the seed line by an `allow(<owning rule>)` — kept
    /// for direct-scan reporting but excluded from propagation.
    pub suppressed: bool,
}

impl Seed {
    /// Whether this seed feeds `e` (ignoring suppression).
    pub fn feeds(&self, e: Effect) -> bool {
        self.channels & chan_of(e) != 0
    }
}

/// The transitive witness through which a function inherits an effect.
#[derive(Debug, Clone)]
pub struct ViaCall {
    /// Token index of the call-site name in the inheriting function.
    pub tok: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
    /// The resolved callee carrying the effect.
    pub callee: FnId,
}

/// The deterministic shortest chain from a function to an effect seed.
#[derive(Debug)]
pub struct Witness<'e> {
    /// `(caller, call site)` hops from the entry; empty when the entry
    /// holds the seed directly.
    pub hops: Vec<(FnId, &'e ViaCall)>,
    /// The function whose body holds the seed.
    pub seed_fn: FnId,
    /// The seed reached.
    pub seed: &'e Seed,
}

/// Inferred effect labels for every function in the workspace.
#[derive(Debug, Default)]
pub struct Effects {
    /// Direct seeds per function, in token order.
    seeds: BTreeMap<FnId, Vec<Seed>>,
    /// Per `(function, channel)`: the BFS witness call site.
    via: BTreeMap<(FnId, u8), ViaCall>,
}

impl Effects {
    /// Seeds + fixed-point propagation over the reverse call graph.
    /// `sups` is parallel to `files`; seeds suppressed at their line
    /// for the owning rule do not propagate.
    pub fn infer(files: &[FileCtx<'_>], graph: &CallGraph, sups: &[Suppressions]) -> Effects {
        let mut eff = Effects {
            seeds: collect_seeds(files, graph, sups),
            via: BTreeMap::new(),
        };
        for chan in CHANNELS {
            eff.propagate(graph, chan);
        }
        eff
    }

    /// Whether `f` carries effect `e`, directly (unsuppressed seed) or
    /// transitively.
    pub fn has(&self, f: FnId, e: Effect) -> bool {
        self.first_seed(f, chan_of(e)).is_some() || self.via.contains_key(&(f, chan_of(e)))
    }

    /// Direct seeds of `f` in token order, suppressed ones included.
    pub fn direct_seeds(&self, f: FnId) -> &[Seed] {
        self.seeds.get(&f).map_or(&[], Vec::as_slice)
    }

    /// The shortest witness chain from `f` to a seed of `e`; `None`
    /// when `f` does not carry the effect.
    pub fn witness(&self, f: FnId, e: Effect) -> Option<Witness<'_>> {
        let chan = chan_of(e);
        let mut hops = Vec::new();
        let mut cur = f;
        loop {
            if let Some(seed) = self.first_seed(cur, chan) {
                return Some(Witness {
                    hops,
                    seed_fn: cur,
                    seed,
                });
            }
            let via = self.via.get(&(cur, chan))?;
            hops.push((cur, via));
            cur = via.callee;
        }
    }

    /// First unsuppressed seed of `f` feeding `chan`, by token order.
    fn first_seed(&self, f: FnId, chan: u8) -> Option<&Seed> {
        self.direct_seeds(f)
            .iter()
            .find(|s| !s.suppressed && s.channels & chan != 0)
    }

    /// Breadth-first reverse propagation of one channel. Layers are
    /// processed in sorted `FnId` order and each newly labeled caller
    /// records its earliest-token call site into an already labeled
    /// callee, so witnesses are shortest and deterministic.
    fn propagate(&mut self, graph: &CallGraph, chan: u8) {
        let mut labeled: BTreeSet<FnId> = self
            .seeds
            .iter()
            .filter(|(_, seeds)| {
                seeds
                    .iter()
                    .any(|s| !s.suppressed && s.channels & chan != 0)
            })
            .map(|(&f, _)| f)
            .collect();
        let mut frontier: Vec<FnId> = labeled.iter().copied().collect();
        while !frontier.is_empty() {
            let candidates: BTreeSet<FnId> = frontier
                .iter()
                .flat_map(|&f| graph.callers_of(f))
                .copied()
                .filter(|c| !labeled.contains(c))
                .collect();
            let mut next = Vec::new();
            for caller in candidates {
                let site = graph
                    .calls_of(caller)
                    .iter()
                    .find(|s| s.callee.is_some_and(|c| labeled.contains(&c)));
                if let Some(site) = site {
                    next.push((caller, site));
                }
            }
            frontier = next.iter().map(|(f, _)| *f).collect();
            for (f, site) in next {
                labeled.insert(f);
                self.via.insert(
                    (f, chan),
                    ViaCall {
                        tok: site.name_tok,
                        line: site.line,
                        col: site.col,
                        callee: site.callee.expect("filtered on resolved callee"),
                    },
                );
            }
        }
    }
}

/// Identifiers that cannot end a value expression — a `[` after one of
/// these opens a pattern/type/array literal, not an indexing site.
const NON_VALUE_PREV: [&str; 30] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "union", "unsafe", "use", "while",
];

fn collect_seeds(
    files: &[FileCtx<'_>],
    graph: &CallGraph,
    sups: &[Suppressions],
) -> BTreeMap<FnId, Vec<Seed>> {
    let mut out: BTreeMap<FnId, Vec<Seed>> = BTreeMap::new();
    for (fi, fc) in files.iter().enumerate() {
        let toks = &fc.file.lexed.tokens;
        for (k, f) in fc.items.functions.iter().enumerate() {
            let id = (fi, k);
            for site in graph.calls_of(id) {
                if let Some(seed) = seed_of_call(site, &sups[fi]) {
                    out.entry(id).or_default().push(seed);
                }
            }
            // Postfix indexing is not a call site; scan the body.
            let Some(body) = &f.body else { continue };
            if f.is_test {
                continue;
            }
            for i in body.clone() {
                if indexing_site(toks, i) && callgraph::innermost_fn(&fc.items, i) == Some(k) {
                    let at = &toks[i];
                    out.entry(id).or_default().push(Seed {
                        tok: i,
                        line: at.line,
                        col: at.col,
                        what: "indexing".to_owned(),
                        channels: CHAN_PANIC,
                        suppressed: sups[fi].is_allowed("panic-free-hot-path", at.line),
                    });
                }
            }
        }
    }
    for seeds in out.values_mut() {
        seeds.sort_by_key(|s| s.tok);
    }
    out
}

/// Whether the `[` at token `i` indexes a value (prev token ends a
/// value expression: a non-keyword identifier, `)` or `]`).
fn indexing_site(toks: &[Token], i: usize) -> bool {
    if !toks[i].is_punct("[") || i == 0 {
        return false;
    }
    let p = &toks[i - 1];
    (p.kind == TokKind::Ident && !NON_VALUE_PREV.contains(&p.text.as_str()))
        || p.is_punct(")")
        || p.is_punct("]")
}

/// The seed a call site contributes, if any.
fn seed_of_call(site: &CallSite, sup: &Suppressions) -> Option<Seed> {
    let name = site.name.as_str();
    let (what, channels, owner): (String, u8, &str) = match &site.kind {
        CallKind::Macro if PANIC_MACROS.contains(&name) => (
            format!("{name}!"),
            CHAN_PANIC | CHAN_STRICT,
            "panic-free-hot-path",
        ),
        CallKind::Macro if name == "vec" || name == "format" => {
            (format!("{name}!"), CHAN_ALLOC, "no-alloc-hot-loop")
        }
        CallKind::Method(_) if name == "unwrap" || name == "expect" => (
            format!(".{name}()"),
            CHAN_PANIC | CHAN_STRICT,
            "panic-free-hot-path",
        ),
        CallKind::Method(_) if name == "collect" || name == "to_vec" => {
            (format!(".{name}()"), CHAN_ALLOC, "no-alloc-hot-loop")
        }
        CallKind::Qualified(Some(q)) if name == "new" && ALLOC_TYPES.contains(&q.as_str()) => {
            (format!("{q}::new"), CHAN_ALLOC, "no-alloc-hot-loop")
        }
        _ if name == "with_capacity" && !matches!(site.kind, CallKind::Macro) => {
            ("with_capacity".to_owned(), CHAN_ALLOC, "no-alloc-hot-loop")
        }
        _ if CLOCK_ADVANCING.contains(&name) && !matches!(site.kind, CallKind::Macro) => {
            (name.to_owned(), CHAN_CLOCK, "")
        }
        _ => return None,
    };
    // Clock seeds are never filtered at the seed: suppressing a *hold*
    // diagnostic does not stop the callee from advancing the clock.
    let suppressed = !owner.is_empty() && sup.is_allowed(owner, site.line);
    Some(Seed {
        tok: site.name_tok,
        line: site.line,
        col: site.col,
        what,
        channels,
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintContext;
    use crate::lexer::lex;
    use crate::workspace::{SourceFile, Workspace};

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: (*rel).to_owned(),
                    lines: src.lines().map(str::to_owned).collect(),
                    lexed: lex(src),
                })
                .collect(),
        }
    }

    fn has(ctx: &LintContext, f: &str, e: Effect) -> bool {
        ctx.effects.has(ctx.fn_by_name(f).expect("fn exists"), e)
    }

    #[test]
    fn effects_propagate_through_wrappers_to_callers() {
        let ws = ws_of(&[(
            "a.rs",
            "impl C {\n\
               fn flush(&mut self) { self.clock.advance_to(self.t); }\n\
               fn run_step(&mut self) { self.flush(); }\n\
               fn idle(&self) {}\n\
             }\n\
             impl C { fn outer(&mut self) { self.run_step(); } }\n",
        )]);
        let ctx = LintContext::new(&ws);
        for f in ["flush", "run_step", "outer"] {
            assert!(has(&ctx, f, Effect::AdvancesClock), "{f}");
        }
        assert!(!has(&ctx, "idle", Effect::AdvancesClock));
    }

    #[test]
    fn witness_chains_are_shortest_and_earliest() {
        let ws = ws_of(&[(
            "a.rs",
            "fn seed_fn() { panic!(\"boom\"); }\n\
             fn mid(x: u8) { seed_fn(); }\n\
             fn entry() { mid(1); seed_fn(); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        let entry = ctx.fn_by_name("entry").unwrap();
        let w = ctx.effects.witness(entry, Effect::MayPanicStrict).unwrap();
        // `entry` calls the seeding fn directly too; BFS takes the
        // 1-hop path, and within it the earliest call site (`mid` at
        // token order... the direct `seed_fn()` call is one hop).
        assert_eq!(w.seed.what, "panic!");
        assert_eq!(ctx.fn_item(w.seed_fn).name, "seed_fn");
        assert_eq!(w.hops.len(), 1);
    }

    #[test]
    fn strict_channel_excludes_indexing_but_may_panic_keeps_it() {
        let ws = ws_of(&[(
            "a.rs",
            "fn pick(v: &[u8], i: usize) -> u8 { v[i] }\n\
             fn caller(v: &[u8]) -> u8 { pick(v, 0) }\n",
        )]);
        let ctx = LintContext::new(&ws);
        assert!(has(&ctx, "pick", Effect::MayPanic));
        assert!(!has(&ctx, "pick", Effect::MayPanicStrict));
        assert!(has(&ctx, "caller", Effect::MayPanic));
        assert!(!has(&ctx, "caller", Effect::MayPanicStrict));
    }

    #[test]
    fn alloc_seeds_cover_constructors_methods_and_macros() {
        let ws = ws_of(&[(
            "a.rs",
            "fn a() -> Vec<u8> { Vec::new() }\n\
             fn b(it: I) -> Vec<u8> { it.collect() }\n\
             fn c() { let v = vec![1, 2]; }\n\
             fn d() -> String { String::with_capacity(8) }\n\
             fn lean(x: u8) -> u8 { x + 1 }\n",
        )]);
        let ctx = LintContext::new(&ws);
        for f in ["a", "b", "c", "d"] {
            assert!(has(&ctx, f, Effect::Allocates), "{f}");
        }
        assert!(!has(&ctx, "lean", Effect::Allocates));
    }

    #[test]
    fn suppressed_seed_stops_propagation_but_stays_direct() {
        let ws = ws_of(&[(
            "a.rs",
            "fn seed_fn(x: Option<u8>) -> u8 {\n\
                 // ssdtrain-lint: allow(panic-free-hot-path): fixture\n\
                 x.unwrap()\n\
             }\n\
             fn entry(x: Option<u8>) -> u8 { seed_fn(x) }\n",
        )]);
        let ctx = LintContext::new(&ws);
        assert!(!has(&ctx, "seed_fn", Effect::MayPanicStrict));
        assert!(!has(&ctx, "entry", Effect::MayPanicStrict));
        let seed_fn = ctx.fn_by_name("seed_fn").unwrap();
        let direct = ctx.effects.direct_seeds(seed_fn);
        assert_eq!(direct.len(), 1);
        assert!(direct[0].suppressed);
    }

    #[test]
    fn unresolved_calls_contribute_no_effects() {
        let ws = ws_of(&[(
            "a.rs",
            "struct A; impl A { fn kick(&self) { panic!(\"x\") } }\n\
             struct B; impl B { fn kick(&self) {} }\n\
             fn poll(h: &H) { h.kick(); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        // Two impls share the name: conservative unknown, no effect.
        assert!(!has(&ctx, "poll", Effect::MayPanicStrict));
    }

    #[test]
    fn recursion_terminates_and_labels_the_cycle() {
        let ws = ws_of(&[(
            "a.rs",
            "fn ping(n: u8) { if n > 0 { pong(n - 1); } }\n\
             fn pong(n: u8) { self_clock(); ping(n); }\n\
             fn self_clock() { clock.advance_by(1); }\n",
        )]);
        let ctx = LintContext::new(&ws);
        assert!(has(&ctx, "ping", Effect::AdvancesClock));
        assert!(has(&ctx, "pong", Effect::AdvancesClock));
        let ping = ctx.fn_by_name("ping").unwrap();
        let w = ctx.effects.witness(ping, Effect::AdvancesClock).unwrap();
        assert_eq!(w.seed.what, "advance_by");
    }
}
