//! Symbolic acquisition/release facts over the item index.
//!
//! The flow rules all reason about the same shape: a call acquires
//! something (a reservation, a lock guard, an open span), the value is
//! bound (or not), and later tokens settle it (a commit, a `drop`, an
//! `end`). This module recovers those facts from the token stream:
//! method-call sites with their receiver chains, and the binding idiom
//! of any call expression — which names hold the result, from where the
//! binding is live, and where its scope ends.

use super::items::FileItems;
use crate::lexer::{TokKind, Token};
use std::ops::Range;

/// One `recv.name(args)` call site.
#[derive(Debug, Clone)]
pub struct MethodCall {
    /// Token index of the method-name identifier.
    pub name_tok: usize,
    /// Method name.
    pub name: String,
    /// Receiver chain identifiers (`self.tiers.reserve` → `["self",
    /// "tiers"]`); empty when the receiver is opaque (a call result, an
    /// index, …).
    pub recv: Vec<String>,
    /// Token index of the argument list's `(`.
    pub open_paren: usize,
    /// Token index of the matching `)`.
    pub close_paren: usize,
    /// The call takes no arguments (`.lock()`, `.read()`, …).
    pub args_empty: bool,
}

/// How a call expression's result is consumed.
#[derive(Debug)]
pub enum Binding {
    /// Bound to names via `let`/`if let`/`while let`/assignment.
    Bound {
        /// Binding identifiers (pattern idents, lowercase-initial).
        names: Vec<String>,
        /// Token index from which the binding is live: the statement's
        /// `;` for a plain `let` (scan strictly after it), or the `{`
        /// of the success block for `if let`/`while let`.
        acq: usize,
        /// Token index bounding the binding's scope (exclusive): the
        /// close brace of the enclosing (or success) block.
        scope_end: usize,
    },
    /// Returned, a tail expression, or passed straight to another call
    /// — responsibility transfers out of this function.
    Escapes,
    /// Dropped on the spot: a bare statement or `let _ =`.
    Discarded,
}

/// Collects every `.name(` method-call site inside `range`.
pub fn method_calls(toks: &[Token], items: &FileItems, range: Range<usize>) -> Vec<MethodCall> {
    let mut out = Vec::new();
    for i in range.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || i == 0
            || !toks[i - 1].is_punct(".")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        let open = i + 1;
        let Some(&close) = items.close_of.get(&open) else {
            continue;
        };
        let mut recv = Vec::new();
        let mut k = i - 1; // the `.`
        loop {
            if k == 0 {
                break;
            }
            let p = &toks[k - 1];
            if p.kind == TokKind::Ident {
                recv.push(p.text.clone());
                if k >= 2 && toks[k - 2].is_punct(".") {
                    k -= 2;
                    continue;
                }
                if k >= 2 && toks[k - 2].is_punct("::") {
                    // A path (`Self::x.lock()` does not occur; a path
                    // receiver is opaque for field resolution).
                    recv.clear();
                }
                break;
            }
            // Call result / index / literal receiver: opaque.
            recv.clear();
            break;
        }
        recv.reverse();
        out.push(MethodCall {
            name_tok: i,
            name: t.text.clone(),
            recv,
            open_paren: open,
            close_paren: close,
            args_empty: close == open + 1,
        });
    }
    out
}

/// Token index where the call's receiver chain starts (the first chain
/// identifier, skipping `&`/`&mut`/`*` prefixes for context checks).
fn expr_start(toks: &[Token], call: &MethodCall) -> usize {
    let mut k = call.name_tok - 1; // the `.`
    loop {
        if k == 0 {
            return k;
        }
        let p = &toks[k - 1];
        if p.kind == TokKind::Ident || p.kind == TokKind::Num {
            if k >= 2 && (toks[k - 2].is_punct(".") || toks[k - 2].is_punct("::")) {
                k -= 2;
                continue;
            }
            return k - 1;
        }
        if p.is_punct(")") || p.is_punct("]") {
            return k; // opaque group; context starts at the `.`
        }
        return k;
    }
}

/// Classifies how the result of `call` is consumed.
///
/// The walk goes backwards from the call expression to the statement
/// context, jumping over matched groups and stepping out through the
/// headers of `match`/`if` value expressions (an arm's value *is* the
/// construct's value).
pub fn classify_binding(
    toks: &[Token],
    items: &FileItems,
    call: &MethodCall,
    fn_body: &Range<usize>,
) -> Binding {
    let start = expr_start(toks, call);
    let mut k = start; // walk back from just before the expression
    let mut eq_at: Option<usize> = None;
    loop {
        if k <= fn_body.start + 1 {
            return finish_without_let(toks, items, call, eq_at, fn_body);
        }
        let p = &toks[k - 1];
        if p.is_punct(")") || p.is_punct("]") {
            match items.open_of.get(&(k - 1)) {
                Some(&o) => {
                    k = o;
                    continue;
                }
                None => return Binding::Escapes,
            }
        }
        if p.is_punct("}") {
            // A matched `{…}` group before us (a previous block
            // statement, or an if/match value we sit after): jump it.
            match items.open_of.get(&(k - 1)) {
                Some(&o) => {
                    k = o;
                    continue;
                }
                None => return finish_without_let(toks, items, call, eq_at, fn_body),
            }
        }
        if p.is_punct(";") {
            return finish_without_let(toks, items, call, eq_at, fn_body);
        }
        if p.is_punct("{") {
            // Unmatched opener: we are inside this block. If its header
            // is a `match`/`if`/`while` value expression, the call's
            // value flows out of the construct — keep walking from
            // before the header keyword. `else` headers diverge or
            // rejoin a construct we already account for.
            match block_header_keyword(toks, k - 1, fn_body) {
                Some(h) if toks[h].is_ident("else") => return Binding::Escapes,
                Some(h) => {
                    k = h;
                    continue;
                }
                None => return finish_without_let(toks, items, call, eq_at, fn_body),
            }
        }
        if p.is_ident("return") {
            return Binding::Escapes;
        }
        if p.is_punct("(") || p.is_punct("[") {
            return Binding::Escapes; // argument position
        }
        if p.is_punct(",") {
            // A comma directly inside a `match { … }` block is an arm
            // separator: the arm's value flows to the match's own
            // consumer. Any other comma (argument, tuple or struct
            // element) escapes.
            match enclosing_open_brace(toks, items, k - 1, fn_body) {
                Some(open) => match block_header_keyword(toks, open, fn_body) {
                    Some(h) if toks[h].is_ident("match") => {
                        k = h;
                        continue;
                    }
                    _ => return Binding::Escapes,
                },
                None => return Binding::Escapes,
            }
        }
        if p.is_punct("=") && !is_part_of_compound_eq(toks, k - 1) {
            eq_at = Some(k - 1);
            k -= 1;
            continue;
        }
        if p.is_ident("let") {
            let Some(eq) = eq_at else {
                return Binding::Escapes; // `let … else`? malformed; bail
            };
            let names = pattern_names(&toks[k..eq]);
            if names.is_empty() {
                return Binding::Discarded; // `let _ = …`
            }
            let scoped = k >= 2 && (toks[k - 2].is_ident("if") || toks[k - 2].is_ident("while"));
            return bound_at(toks, items, call, names, scoped, fn_body);
        }
        k -= 1;
    }
}

/// Whether the `=` at `i` is part of `==`, `!=`, `<=`, `>=`, `+=` … or
/// an arm arrow `=>`.
fn is_part_of_compound_eq(toks: &[Token], i: usize) -> bool {
    let adjacent = |a: usize, b: usize| {
        toks[a].line == toks[b].line && toks[b].col == toks[a].col + toks[a].text.len() as u32
    };
    if i > 0 && toks[i - 1].kind == TokKind::Punct && !toks[i - 1].is_punct("=") {
        let ops = ["!", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^"];
        if ops.contains(&toks[i - 1].text.as_str()) && adjacent(i - 1, i) {
            return true;
        }
    }
    if i > 0 && toks[i - 1].is_punct("=") && adjacent(i - 1, i) {
        return true; // second half of `==`
    }
    if toks.get(i + 1).is_some_and(|t| t.is_punct("=")) && adjacent(i, i + 1) {
        return true; // first half of `==`
    }
    if toks.get(i + 1).is_some_and(|t| t.is_punct(">")) && adjacent(i, i + 1) {
        return true; // arm arrow
    }
    false
}

/// First unmatched `{` opener strictly before token `from`, jumping
/// matched groups; `None` when an unmatched `(`/`[` (or nothing) comes
/// first.
fn enclosing_open_brace(
    toks: &[Token],
    items: &FileItems,
    from: usize,
    fn_body: &Range<usize>,
) -> Option<usize> {
    let mut k = from;
    loop {
        if k <= fn_body.start + 1 {
            return None;
        }
        let p = &toks[k - 1];
        if p.is_punct(")") || p.is_punct("]") || p.is_punct("}") {
            match items.open_of.get(&(k - 1)) {
                Some(&o) => {
                    k = o;
                    continue;
                }
                None => return None,
            }
        }
        if p.is_punct("{") {
            return Some(k - 1);
        }
        if p.is_punct("(") || p.is_punct("[") {
            return None;
        }
        k -= 1;
    }
}

/// For an unmatched `{` at `open`, the keyword introducing it when the
/// block is a `match`/`if`/`while`/`loop`/`else` header.
fn block_header_keyword(toks: &[Token], open: usize, fn_body: &Range<usize>) -> Option<usize> {
    let mut k = open;
    let mut depth = 0i32;
    while k > fn_body.start {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth -= 1;
        } else if depth == 0 && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
            return None;
        } else if depth == 0
            && (t.is_ident("match")
                || t.is_ident("if")
                || t.is_ident("while")
                || t.is_ident("loop")
                || t.is_ident("else"))
        {
            // `else if …` reports the `else`.
            if t.is_ident("if") && k > 0 && toks[k - 1].is_ident("else") {
                return Some(k - 1);
            }
            return Some(k);
        }
    }
    None
}

/// Binding identifiers of a pattern token run: lowercase-initial idents
/// minus keywords (`Some(mut placement)` → `["placement"]`).
fn pattern_names(pattern: &[Token]) -> Vec<String> {
    pattern
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| {
            t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase())
                && !["mut", "ref", "box"].contains(&t.text.as_str())
        })
        .map(|t| t.text.clone())
        .collect()
}

/// No `let` in the statement: an `x = call();` re-assignment binds
/// whatever idents precede the recorded `=`; otherwise the statement
/// form decides between discarded and escaping.
fn finish_without_let(
    toks: &[Token],
    items: &FileItems,
    call: &MethodCall,
    eq_at: Option<usize>,
    fn_body: &Range<usize>,
) -> Binding {
    if let Some(eq) = eq_at {
        // Re-assignment: the LHS run ends at the `=`; take its idents.
        let mut lhs_start = eq;
        while lhs_start > fn_body.start {
            let t = &toks[lhs_start - 1];
            if t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("*") {
                lhs_start -= 1;
            } else {
                break;
            }
        }
        let names = pattern_names(&toks[lhs_start..eq]);
        if !names.is_empty() {
            return bound_at(toks, items, call, names, false, fn_body);
        }
        return Binding::Escapes;
    }
    // Walk the postfix chain after the call to the statement boundary.
    let mut k = call.close_paren + 1;
    loop {
        let Some(t) = toks.get(k) else {
            return Binding::Escapes;
        };
        if t.is_punct("?") {
            k += 1;
            continue;
        }
        if t.is_punct(".") {
            // `.ident` (+ optional arg list): still the same value.
            k += 1;
            if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.is_punct("(")) {
                match items.close_of.get(&k) {
                    Some(&c) => k = c + 1,
                    None => return Binding::Escapes,
                }
            }
            continue;
        }
        if t.is_punct(";") {
            return Binding::Discarded;
        }
        return Binding::Escapes; // `}`/`,`/`)` — tail or argument
    }
}

/// Builds the `Bound` fact: where the binding becomes live and where
/// its scope ends.
fn bound_at(
    toks: &[Token],
    items: &FileItems,
    call: &MethodCall,
    names: Vec<String>,
    scoped: bool,
    fn_body: &Range<usize>,
) -> Binding {
    if scoped {
        // `if let`/`while let`: live inside the success block only.
        let mut k = call.close_paren + 1;
        let mut depth = 0i32;
        while k < fn_body.end {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                let scope_end = items.close_of.get(&k).copied().unwrap_or(fn_body.end - 1);
                return Binding::Bound {
                    names,
                    acq: k,
                    scope_end,
                };
            }
            k += 1;
        }
        return Binding::Escapes;
    }
    // Plain `let` (possibly let-else): the statement's terminating `;`.
    // The call may sit inside match/if braces of the initialiser, so
    // the `;` can be at *negative* depth relative to the call — any
    // deeper `;` (a nested block's own statement) is not ours.
    let mut k = call.close_paren + 1;
    let mut depth = 0i32;
    while k < fn_body.end {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(";") {
            // Scope = the block holding the *statement*, not the call.
            let scope_end = enclosing_block_end(toks, items, k, fn_body);
            return Binding::Bound {
                names,
                acq: k,
                scope_end,
            };
        }
        k += 1;
    }
    Binding::Escapes
}

/// Close-brace token of the innermost block containing token `at`.
fn enclosing_block_end(
    toks: &[Token],
    items: &FileItems,
    at: usize,
    fn_body: &Range<usize>,
) -> usize {
    let mut k = at;
    let mut depth = 0i32;
    while k > fn_body.start {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth -= 1;
        } else if t.is_punct("{") {
            if depth == 0 {
                return items.close_of.get(&k).copied().unwrap_or(fn_body.end - 1);
            }
            depth -= 1;
        }
    }
    fn_body.end - 1
}

/// Token indices in `(after, before)` where one of `names` occurs.
pub fn uses_of(toks: &[Token], names: &[String], after: usize, before: usize) -> Vec<usize> {
    (after + 1..before.min(toks.len()))
        .filter(|&i| toks[i].kind == TokKind::Ident && names.iter().any(|n| *n == toks[i].text))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::items::index_file;
    use crate::lexer::lex;
    use crate::workspace::SourceFile;

    fn setup(src: &str) -> (SourceFile, FileItems) {
        let f = SourceFile {
            rel: "x.rs".to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        };
        let items = index_file(&f);
        (f, items)
    }

    fn call_named<'a>(calls: &'a [MethodCall], name: &str) -> &'a MethodCall {
        calls.iter().find(|c| c.name == name).expect("call site")
    }

    #[test]
    fn receiver_chains_and_arity_are_recovered() {
        let src = "fn f(&self) { self.tiers.reserve(bytes); self.stats.lock(); x().write(); }";
        let (f, items) = setup(src);
        let body = items.functions[0].body.clone().unwrap();
        let calls = method_calls(&f.lexed.tokens, &items, body);
        let reserve = call_named(&calls, "reserve");
        assert_eq!(reserve.recv, vec!["self", "tiers"]);
        assert!(!reserve.args_empty);
        let lock = call_named(&calls, "lock");
        assert_eq!(lock.recv, vec!["self", "stats"]);
        assert!(lock.args_empty);
        // Opaque receiver: chain is empty.
        assert!(call_named(&calls, "write").recv.is_empty());
    }

    fn classify(src: &str, name: &str) -> Binding {
        let (f, items) = setup(src);
        let body = items.functions[0].body.clone().unwrap();
        let calls = method_calls(&f.lexed.tokens, &items, body.clone());
        classify_binding(&f.lexed.tokens, &items, call_named(&calls, name), &body)
    }

    #[test]
    fn plain_let_binds_from_the_statement_end() {
        let b = classify(
            "fn f(&self) { let g = self.stats.lock(); g.x += 1; }",
            "lock",
        );
        let Binding::Bound { names, .. } = b else {
            panic!("expected Bound, got {b:?}");
        };
        assert_eq!(names, vec!["g"]);
    }

    #[test]
    fn let_else_patterns_bind_their_inner_name() {
        let src = "fn f(&self) { let Some(p) = self.t.reserve(b) else { return; }; use_it(p); }";
        let Binding::Bound { names, .. } = classify(src, "reserve") else {
            panic!("expected Bound");
        };
        assert_eq!(names, vec!["p"]);
    }

    #[test]
    fn match_arm_values_flow_to_the_let_of_the_match() {
        let src = "fn f(&self) { let p = match x { Some(t) => self.t.reserve_preferring(t, b), None => self.t.reserve(b), }; done(p); }";
        for call in ["reserve_preferring", "reserve"] {
            let Binding::Bound { names, .. } = classify(src, call) else {
                panic!("{call}: expected Bound");
            };
            assert_eq!(names, vec!["p"], "{call}");
        }
    }

    #[test]
    fn bare_statement_and_let_underscore_are_discarded() {
        assert!(matches!(
            classify("fn f(&self) { self.t.reserve(b); }", "reserve"),
            Binding::Discarded
        ));
        assert!(matches!(
            classify("fn f(&self) { let _ = self.t.reserve(b); }", "reserve"),
            Binding::Discarded
        ));
    }

    #[test]
    fn returns_tails_and_arguments_escape() {
        assert!(matches!(
            classify("fn f(&self) { return self.t.reserve(b); }", "reserve"),
            Binding::Escapes
        ));
        assert!(matches!(
            classify("fn f(&self) -> Option<P> { self.t.reserve(b) }", "reserve"),
            Binding::Escapes
        ));
        assert!(matches!(
            classify("fn f(&self) { settle(self.t.reserve(b)); }", "reserve"),
            Binding::Escapes
        ));
        // Tail position through a match arm (tier.rs idiom).
        assert!(matches!(
            classify(
                "fn g(&self) -> Option<P> { match pref { Some(_) => None, None => self.reserve(b), } }",
                "reserve"
            ),
            Binding::Escapes
        ));
    }

    #[test]
    fn if_let_bindings_are_scoped_to_the_success_block() {
        let src = "fn f(&self) { if let Some(p) = self.t.reserve(b) { settle(p); } done(); }";
        let (f, items) = setup(src);
        let body = items.functions[0].body.clone().unwrap();
        let calls = method_calls(&f.lexed.tokens, &items, body.clone());
        let b = classify_binding(
            &f.lexed.tokens,
            &items,
            call_named(&calls, "reserve"),
            &body,
        );
        let Binding::Bound { acq, scope_end, .. } = b else {
            panic!("expected Bound");
        };
        assert!(f.lexed.tokens[acq].is_punct("{"));
        assert!(f.lexed.tokens[scope_end].is_punct("}"));
        assert!(acq < scope_end);
        // The scope ends before `done` — uses outside don't settle.
        let done = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("done"))
            .unwrap();
        assert!(scope_end < done);
    }
}
