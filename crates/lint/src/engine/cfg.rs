//! Intraprocedural control-flow graph over the token stream.
//!
//! Each node holds the token indices that execute together; edges
//! follow `if`/`else`, `match` arms, loops (with back edges), `?`
//! splits, `return`/`break`/`continue`, and `let … else` divergence.
//! The graph is deliberately conservative: constructs it does not model
//! (closure bodies, `unsafe` blocks, macros) are appended to the
//! current node verbatim, which keeps their tokens visible to the
//! reachability queries without inventing paths around them.
//!
//! Two queries drive every flow rule:
//!
//! * [`Cfg::exit_reachable`] — "can execution leave the function
//!   without passing one of these tokens?" (reservation/span leaks)
//! * [`Cfg::reach`] — "can execution hit one of these tokens before
//!   any of those?" (a second lock while the first guard is live)

use super::items::FileItems;
use crate::lexer::Token;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// One straight-line run of tokens.
#[derive(Debug, Default)]
pub struct Node {
    /// Token indices in execution order.
    pub toks: Vec<usize>,
    /// Successor node ids.
    pub succ: Vec<usize>,
}

/// The CFG of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// All nodes; unreachable (post-`return`) code keeps its own
    /// orphan nodes so queries on its tokens stay well-defined.
    pub nodes: Vec<Node>,
    /// Entry node id.
    pub entry: usize,
    /// Exit node id (empty; every function-leaving edge lands here).
    pub exit: usize,
    node_of: HashMap<usize, usize>,
}

struct Builder<'a> {
    toks: &'a [Token],
    items: &'a FileItems,
    nodes: Vec<Node>,
    exit: usize,
    /// `(continue_target, break_target)` per enclosing loop.
    loops: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG for a function body token range (braces
    /// included).
    pub fn build(toks: &[Token], items: &FileItems, body: Range<usize>) -> Cfg {
        let mut b = Builder {
            toks,
            items,
            nodes: vec![Node::default(), Node::default()],
            exit: 1,
            loops: Vec::new(),
        };
        let entry = 0;
        b.push_tok(entry, body.start); // `{`
        let inner = body.start + 1..body.end.saturating_sub(1);
        let last = b.seq(entry, inner);
        if body.end > body.start {
            b.push_tok(last, body.end - 1); // `}`
        }
        b.edge(last, b.exit);
        let mut node_of = HashMap::new();
        for (id, n) in b.nodes.iter().enumerate() {
            for &t in &n.toks {
                node_of.insert(t, id);
            }
        }
        Cfg {
            nodes: b.nodes,
            entry,
            exit: b.exit,
            node_of,
        }
    }

    /// Whether a path from `from` reaches the function exit without
    /// passing any token in `stops`. `include_from` starts the scan at
    /// `from` itself rather than just after it.
    pub fn exit_reachable(&self, from: usize, include_from: bool, stops: &HashSet<usize>) -> bool {
        self.walk(from, include_from, &HashSet::new(), stops, true)
            .is_some()
    }

    /// The first token of `targets` reachable from `from` without
    /// passing any token in `stops`, if any.
    pub fn reach(
        &self,
        from: usize,
        include_from: bool,
        targets: &HashSet<usize>,
        stops: &HashSet<usize>,
    ) -> Option<usize> {
        self.walk(from, include_from, targets, stops, false)
    }

    /// Every token of `targets` reachable from `from` without passing
    /// any token in `stops`, sorted by token index. A reached target
    /// does not block the path (one path may hit several targets).
    pub fn reach_all(
        &self,
        from: usize,
        include_from: bool,
        targets: &HashSet<usize>,
        stops: &HashSet<usize>,
    ) -> Vec<usize> {
        let mut found = HashSet::new();
        let Some(&start_node) = self.node_of.get(&from) else {
            return Vec::new();
        };
        let Some(start_pos) = self.nodes[start_node].toks.iter().position(|&t| t == from) else {
            return Vec::new();
        };
        let first = if include_from {
            start_pos
        } else {
            start_pos + 1
        };
        let mut stack: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        if self.scan_collect(start_node, first, targets, stops, &mut found) {
            stack.extend(self.nodes[start_node].succ.iter().copied());
        }
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if self.scan_collect(id, 0, targets, stops, &mut found) {
                stack.extend(self.nodes[id].succ.iter().copied());
            }
        }
        let mut out: Vec<usize> = found.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Collects targets along one node; returns whether the scan ran
    /// through (no stop).
    fn scan_collect(
        &self,
        node: usize,
        from_pos: usize,
        targets: &HashSet<usize>,
        stops: &HashSet<usize>,
        found: &mut HashSet<usize>,
    ) -> bool {
        for &t in self.nodes[node].toks.iter().skip(from_pos) {
            if targets.contains(&t) {
                found.insert(t);
            }
            if stops.contains(&t) {
                return false;
            }
        }
        true
    }

    /// Shared DFS. Returns the reached target token (or `usize::MAX`
    /// for the exit when `want_exit`).
    fn walk(
        &self,
        from: usize,
        include_from: bool,
        targets: &HashSet<usize>,
        stops: &HashSet<usize>,
        want_exit: bool,
    ) -> Option<usize> {
        let &start_node = self.node_of.get(&from)?;
        let start_pos = self.nodes[start_node]
            .toks
            .iter()
            .position(|&t| t == from)?;
        let first = if include_from {
            start_pos
        } else {
            start_pos + 1
        };
        // (node, scan-from-start); the initial partial scan is seeded
        // separately and the node may legitimately be revisited in full
        // through a loop back edge.
        let mut stack: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        match self.scan(start_node, first, targets, stops) {
            Scan::Hit(t) => return Some(t),
            Scan::Blocked => return None,
            Scan::Through => stack.extend(self.nodes[start_node].succ.iter().copied()),
        }
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if id == self.exit {
                if want_exit {
                    return Some(usize::MAX);
                }
                continue;
            }
            match self.scan(id, 0, targets, stops) {
                Scan::Hit(t) => return Some(t),
                Scan::Blocked => {}
                Scan::Through => stack.extend(self.nodes[id].succ.iter().copied()),
            }
        }
        None
    }

    fn scan(
        &self,
        node: usize,
        from_pos: usize,
        targets: &HashSet<usize>,
        stops: &HashSet<usize>,
    ) -> Scan {
        for &t in self.nodes[node].toks.iter().skip(from_pos) {
            if targets.contains(&t) {
                return Scan::Hit(t);
            }
            if stops.contains(&t) {
                return Scan::Blocked;
            }
        }
        Scan::Through
    }
}

enum Scan {
    Hit(usize),
    Blocked,
    Through,
}

impl Builder<'_> {
    fn new_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.nodes[a].succ.contains(&b) {
            self.nodes[a].succ.push(b);
        }
    }

    fn push_tok(&mut self, node: usize, i: usize) {
        self.nodes[node].toks.push(i);
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }

    /// Processes the statements of `range` starting in node `cur`;
    /// returns the node live at the end of the range.
    fn seq(&mut self, mut cur: usize, range: Range<usize>) -> usize {
        let mut i = range.start;
        while i < range.end {
            let t = &self.toks[i];
            if t.is_ident("if") {
                let (join, next) = self.handle_if(cur, i, range.end);
                cur = join;
                i = next;
            } else if t.is_ident("match") {
                let (join, next) = self.handle_match(cur, i, range.end);
                cur = join;
                i = next;
            } else if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
                let (after, next) = self.handle_loop(cur, i, range.end);
                cur = after;
                i = next;
            } else if t.is_ident("return") {
                let (c, next) = self.flat_stmt(cur, i, range.end);
                self.edge(c, self.exit);
                cur = self.new_node();
                i = next;
            } else if t.is_ident("break") || t.is_ident("continue") {
                let is_continue = t.is_ident("continue");
                let (c, next) = self.flat_stmt(cur, i, range.end);
                let target = match self.loops.last() {
                    Some(&(cont, brk)) => {
                        if is_continue {
                            cont
                        } else {
                            brk
                        }
                    }
                    None => self.exit,
                };
                self.edge(c, target);
                cur = self.new_node();
                i = next;
            } else if t.is_ident("let") {
                let (c, next) = self.handle_let(cur, i, range.end);
                cur = c;
                i = next;
            } else if t.is_punct("{") {
                // Bare block statement.
                let close = self.close_of(i, range.end);
                self.push_tok(cur, i);
                cur = self.seq(cur, i + 1..close);
                self.push_tok(cur, close);
                i = close + 1;
            } else {
                let (c, next) = self.flat_stmt(cur, i, range.end);
                cur = c;
                // Guarantee progress on malformed input (stray closers
                // from macro definitions and the like).
                if next <= i {
                    self.push_tok(cur, i);
                    i += 1;
                } else {
                    i = next;
                }
            }
        }
        cur
    }

    fn close_of(&self, open: usize, end: usize) -> usize {
        self.items
            .close_of
            .get(&open)
            .copied()
            .unwrap_or(end.saturating_sub(1))
            .min(end.saturating_sub(1))
    }

    /// Appends one statement with no statement-level control flow:
    /// tokens through the terminating depth-0 `;` (or the range end),
    /// splitting at every `?`. Macro bodies, closures and struct
    /// literals pass through verbatim.
    fn flat_stmt(&mut self, mut cur: usize, start: usize, end: usize) -> (usize, usize) {
        let mut depth = 0i32;
        let opens_item = self.toks[start].is_ident("fn") || self.toks[start].is_ident("unsafe");
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    // Ran past the enclosing block (tail expression).
                    return (cur, i);
                }
                self.push_tok(cur, i);
                if depth == 0 && opens_item && t.is_punct("}") {
                    // A nested `fn`/`unsafe` item ends at its brace.
                    return (cur, i + 1);
                }
                i += 1;
                continue;
            } else if t.is_punct("?") {
                self.push_tok(cur, i);
                let cont = self.new_node();
                self.edge(cur, self.exit);
                self.edge(cur, cont);
                cur = cont;
                i += 1;
                continue;
            } else if depth == 0 && t.is_punct(";") {
                self.push_tok(cur, i);
                return (cur, i + 1);
            }
            self.push_tok(cur, i);
            i += 1;
        }
        (cur, end)
    }

    /// `if cond { … } [else if … | else { … }]`; returns the join node.
    fn handle_if(&mut self, cur: usize, i: usize, end: usize) -> (usize, usize) {
        // Condition tokens run in `cur` up to the depth-0 `{`.
        let mut j = i;
        let mut depth = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            self.push_tok(cur, j);
            j += 1;
        }
        if j >= end {
            return (cur, end);
        }
        let open = j;
        let close = self.close_of(open, end);
        let then = self.new_node();
        self.edge(cur, then);
        self.push_tok(then, open);
        let then_end = self.seq(then, open + 1..close);
        self.push_tok(then_end, close);
        let join = self.new_node();
        self.edge(then_end, join);
        let mut next = close + 1;
        if self.tok(next).is_some_and(|t| t.is_ident("else")) {
            let els = self.new_node();
            self.edge(cur, els);
            self.push_tok(els, next);
            if self.tok(next + 1).is_some_and(|t| t.is_ident("if")) {
                let (inner_join, after) = self.handle_if(els, next + 1, end);
                self.edge(inner_join, join);
                next = after;
            } else if self.tok(next + 1).is_some_and(|t| t.is_punct("{")) {
                let eopen = next + 1;
                let eclose = self.close_of(eopen, end);
                self.push_tok(els, eopen);
                let els_end = self.seq(els, eopen + 1..eclose);
                self.push_tok(els_end, eclose);
                self.edge(els_end, join);
                next = eclose + 1;
            } else {
                self.edge(els, join);
                next += 1;
            }
        } else {
            self.edge(cur, join); // no else: fall through
        }
        (join, next)
    }

    /// `match scrutinee { arms… }`; each arm branches from `cur` and
    /// joins after the match.
    fn handle_match(&mut self, cur: usize, i: usize, end: usize) -> (usize, usize) {
        let mut j = i;
        let mut depth = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            self.push_tok(cur, j);
            j += 1;
        }
        if j >= end {
            return (cur, end);
        }
        let open = j;
        let close = self.close_of(open, end);
        self.push_tok(cur, open);
        let join = self.new_node();
        let mut k = open + 1;
        while k < close {
            // Pattern (+ guard) up to the arm arrow.
            let arm = self.new_node();
            self.edge(cur, arm);
            let mut depth = 0i32;
            let mut arrow = None;
            let mut m = k;
            while m < close {
                let t = &self.toks[m];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && self.is_arm_arrow(m) {
                    self.push_tok(arm, m);
                    self.push_tok(arm, m + 1);
                    arrow = Some(m);
                    break;
                }
                self.push_tok(arm, m);
                m += 1;
            }
            let Some(arrow) = arrow else {
                // Trailing tokens without an arrow (macro arm soup).
                self.edge(arm, join);
                break;
            };
            let body_start = arrow + 2;
            let arm_end;
            let next_k;
            if self.tok(body_start).is_some_and(|t| t.is_punct("{")) {
                let bclose = self.close_of(body_start, close);
                self.push_tok(arm, body_start);
                let e = self.seq(arm, body_start + 1..bclose);
                self.push_tok(e, bclose);
                arm_end = e;
                next_k = if self.tok(bclose + 1).is_some_and(|t| t.is_punct(",")) {
                    self.push_tok(arm_end, bclose + 1);
                    bclose + 2
                } else {
                    bclose + 1
                };
            } else {
                // Expression arm: runs to the depth-0 `,` (or close).
                let mut m = body_start;
                let mut depth = 0i32;
                while m < close {
                    let t = &self.toks[m];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(",") {
                        break;
                    }
                    m += 1;
                }
                arm_end = self.seq(arm, body_start..m);
                next_k = if m < close {
                    self.push_tok(arm_end, m);
                    m + 1
                } else {
                    close
                };
            }
            self.edge(arm_end, join);
            k = next_k;
        }
        self.push_tok(join, close);
        (join, close + 1)
    }

    /// `loop`/`while`/`for` with a body, back edge, and break target.
    fn handle_loop(&mut self, cur: usize, i: usize, end: usize) -> (usize, usize) {
        let is_loop = self.toks[i].is_ident("loop");
        let mut j = i;
        let mut depth = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            self.push_tok(cur, j);
            j += 1;
        }
        if j >= end {
            return (cur, end);
        }
        let open = j;
        let close = self.close_of(open, end);
        let body = self.new_node();
        let after = self.new_node();
        self.edge(cur, body);
        if !is_loop {
            self.edge(cur, after); // zero iterations
        }
        self.push_tok(body, open);
        self.loops.push((body, after));
        let body_end = self.seq(body, open + 1..close);
        self.loops.pop();
        self.push_tok(body_end, close);
        self.edge(body_end, body); // next iteration
        self.edge(body_end, after);
        (after, close + 1)
    }

    /// `let` statement; recognises `let … else { diverge }`. A block
    /// expression (`if`/`match`/…) in the RHS keeps its tokens inline —
    /// the binding takes effect only after the statement, so the rules'
    /// queries never start inside it.
    fn handle_let(&mut self, cur: usize, i: usize, end: usize) -> (usize, usize) {
        // Scan ahead for a depth-0 `else {` before the terminating `;`,
        // unless the RHS starts a block expression (whose own `else`
        // belongs to it — and after which a let-else is illegal).
        let mut depth = 0i32;
        let mut block_rhs = false;
        let mut else_at = None;
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0
                && (t.is_ident("if")
                    || t.is_ident("match")
                    || t.is_ident("loop")
                    || t.is_ident("while"))
            {
                block_rhs = true;
            } else if depth == 0 && t.is_punct(";") {
                break;
            } else if depth == 0
                && t.is_ident("else")
                && !block_rhs
                && self.tok(j + 1).is_some_and(|t| t.is_punct("{"))
            {
                else_at = Some(j);
                break;
            }
            j += 1;
        }
        let Some(else_at) = else_at else {
            return self.flat_stmt(cur, i, end);
        };
        // Tokens up to the `else` (the pattern and the scrutinee, with
        // `?` splits) stay in `cur`.
        let (c, _) = self.flat_stmt(cur, i, else_at);
        self.push_tok(c, else_at);
        let open = else_at + 1;
        let close = self.close_of(open, end);
        let els = self.new_node();
        self.edge(c, els);
        self.push_tok(els, open);
        let els_end = self.seq(els, open + 1..close);
        self.push_tok(els_end, close);
        // The else block must diverge; no join edge. Its returns have
        // already been routed to the exit.
        let cont = self.new_node();
        self.edge(c, cont);
        let next = if self.tok(close + 1).is_some_and(|t| t.is_punct(";")) {
            self.push_tok(cont, close + 1);
            close + 2
        } else {
            close + 1
        };
        (cont, next)
    }

    /// `=>` is two adjacent tokens in this lexer.
    fn is_arm_arrow(&self, m: usize) -> bool {
        let (Some(a), Some(b)) = (self.tok(m), self.tok(m + 1)) else {
            return false;
        };
        a.is_punct("=") && b.is_punct(">") && a.line == b.line && b.col == a.col + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::items::index_file;
    use crate::lexer::lex;
    use crate::workspace::SourceFile;

    fn cfg_of(src: &str) -> (SourceFile, Cfg) {
        let file = SourceFile {
            rel: "x.rs".to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        };
        let items = index_file(&file);
        let body = items.functions[0].body.clone().expect("fn body");
        let cfg = Cfg::build(&file.lexed.tokens, &items, body);
        (file, cfg)
    }

    /// Token index of the `n`-th occurrence of ident `name`.
    fn ident_at(file: &SourceFile, name: &str, n: usize) -> usize {
        file.lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident(name))
            .map(|(i, _)| i)
            .nth(n)
            .expect("ident occurrence")
    }

    #[test]
    fn question_mark_opens_an_exit_path() {
        let (f, cfg) = cfg_of("fn f() -> Option<u8> { acquire(); step()?; settle(); None }");
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        // Without stops, exit is reachable; the settle blocks only the
        // fallthrough path, not the `?` path.
        assert!(cfg.exit_reachable(acq, false, &HashSet::from([settle])));
        // Settling before the `?` blocks every path.
        let (f, cfg) = cfg_of("fn f() -> Option<u8> { acquire(); settle(); step()?; None }");
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        assert!(!cfg.exit_reachable(acq, false, &HashSet::from([settle])));
    }

    #[test]
    fn both_if_branches_are_paths() {
        let (f, cfg) = cfg_of("fn f(c: bool) { acquire(); if c { settle(); } end(); }");
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        // The no-else path skips the settle.
        assert!(cfg.exit_reachable(acq, false, &HashSet::from([settle])));
        let (f, cfg) =
            cfg_of("fn f(c: bool) { acquire(); if c { settle(); } else { settle(); } end(); }");
        let acq = ident_at(&f, "acquire", 0);
        let stops = HashSet::from([ident_at(&f, "settle", 0), ident_at(&f, "settle", 1)]);
        assert!(!cfg.exit_reachable(acq, false, &stops));
    }

    #[test]
    fn early_return_in_a_branch_reaches_exit() {
        let (f, cfg) = cfg_of("fn f(c: bool) { acquire(); if c { return; } settle(); }");
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        assert!(cfg.exit_reachable(acq, false, &HashSet::from([settle])));
    }

    #[test]
    fn match_arms_are_independent_paths() {
        let src =
            "fn f(x: Option<u8>) { acquire(); match x { Some(_) => settle(), None => {} } end(); }";
        let (f, cfg) = cfg_of(src);
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        // The None arm leaks through.
        assert!(cfg.exit_reachable(acq, false, &HashSet::from([settle])));
        let src = "fn f(x: Option<u8>) { acquire(); match x { Some(_) => settle(), None => settle() } end(); }";
        let (f, cfg) = cfg_of(src);
        let acq = ident_at(&f, "acquire", 0);
        let stops = HashSet::from([ident_at(&f, "settle", 0), ident_at(&f, "settle", 1)]);
        assert!(!cfg.exit_reachable(acq, false, &stops));
    }

    #[test]
    fn let_else_divergent_path_is_not_searched_from_the_continuation() {
        let src = "fn f() -> Option<u8> {\n\
            let Some(x) = acquire() else { bail(); return None; };\n\
            settle(x);\n    Some(x)\n}";
        let (f, cfg) = cfg_of(src);
        // Start after the let statement's `;` — i.e. at `settle`.
        let settle = ident_at(&f, "settle", 0);
        let x_use = ident_at(&f, "x", 2); // settle(x)'s argument
        assert!(!cfg.exit_reachable(settle, true, &HashSet::from([x_use, settle])));
        // The else block's `bail` is not reachable from the
        // continuation.
        let bail = ident_at(&f, "bail", 0);
        assert!(cfg
            .reach(settle, true, &HashSet::from([bail]), &HashSet::new())
            .is_none());
    }

    #[test]
    fn loops_have_back_edges_but_scoped_stops_block_them() {
        let src = "fn f(v: Vec<u8>) { for x in v { acquire(); settle(); } }";
        let (f, cfg) = cfg_of(src);
        let acq = ident_at(&f, "acquire", 0);
        // Back edge: a second acquire is reachable from the first …
        assert!(cfg
            .reach(acq, false, &HashSet::from([acq]), &HashSet::new())
            .is_some());
        // … but not when the settle between them is a stop.
        let settle = ident_at(&f, "settle", 0);
        assert!(cfg
            .reach(acq, false, &HashSet::from([acq]), &HashSet::from([settle]))
            .is_none());
    }

    #[test]
    fn break_routes_to_after_the_loop() {
        let src = "fn f() { acquire(); loop { if done() { break; } } settle(); }";
        let (f, cfg) = cfg_of(src);
        let acq = ident_at(&f, "acquire", 0);
        let settle = ident_at(&f, "settle", 0);
        assert!(cfg
            .reach(acq, false, &HashSet::from([settle]), &HashSet::new())
            .is_some());
        // `loop` without break does not fall through on its own, but
        // the break edge is the only route to settle.
        assert!(!cfg.exit_reachable(acq, false, &HashSet::from([settle])));
    }

    #[test]
    fn reach_respects_statement_order_within_a_node() {
        let (f, cfg) = cfg_of("fn f() { a(); b(); }");
        let a = ident_at(&f, "a", 0);
        let b = ident_at(&f, "b", 0);
        assert!(cfg
            .reach(a, false, &HashSet::from([b]), &HashSet::new())
            .is_some());
        // b cannot reach a (no loop).
        assert!(cfg
            .reach(b, false, &HashSet::from([a]), &HashSet::new())
            .is_none());
    }
}
