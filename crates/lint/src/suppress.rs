//! Per-line suppression comments.
//!
//! Syntax: `// ssdtrain-lint: allow(<rule>): <reason>` — the reason is
//! mandatory; an allow without one is itself a violation (rule
//! `suppression`), so every silenced diagnostic carries an explanation
//! in the source. A trailing allow suppresses its own line; a
//! standalone allow suppresses the next line that holds code. One
//! comment may carry several allows separated by `;`:
//! `// ssdtrain-lint: allow(a): why; allow(b): why` — each segment is
//! parsed (and reported when malformed) independently.

use crate::diagnostics::Diagnostic;
use crate::workspace::SourceFile;

const MARKER: &str = "ssdtrain-lint:";

/// One parsed, well-formed allow.
#[derive(Debug)]
pub struct Allow {
    /// The rule being silenced.
    pub rule: String,
    /// The source line the allow silences.
    pub effective_line: u32,
}

/// Parsed suppressions of one file: well-formed allows, plus
/// diagnostics for malformed ones.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Well-formed allows.
    pub allows: Vec<Allow>,
}

impl Suppressions {
    /// Whether `rule` is allowed on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.effective_line == line && a.rule == rule)
    }
}

/// Parses every suppression comment of `file`. Malformed allows (no
/// recognisable rule, or a missing/empty reason) are appended to
/// `bad` as `suppression` diagnostics — they are not suppressible.
pub fn parse(
    file: &SourceFile,
    rule_names: &[&'static str],
    bad: &mut Vec<Diagnostic>,
) -> Suppressions {
    let mut out = Suppressions::default();
    for comment in &file.lexed.comments {
        // Doc comments (outer or inner) are documentation — they may
        // legitimately *describe* the directive syntax without being
        // directives themselves.
        if comment.doc || comment.text.starts_with("//!") || comment.text.starts_with("/*!") {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let directive = comment.text[at + MARKER.len()..].trim();
        let effective_line = if comment.trailing {
            comment.line
        } else {
            next_code_line(file, comment.line)
        };
        for segment in split_allows(directive) {
            match parse_directive(&segment, rule_names) {
                Ok(rule) => out.allows.push(Allow {
                    rule,
                    effective_line,
                }),
                Err(why) => bad.push(Diagnostic::new(
                    "suppression",
                    file.rel.clone(),
                    comment.line,
                    1,
                    format!("malformed `ssdtrain-lint:` comment: {why}"),
                )),
            }
        }
    }
    out
}

/// The first line after `line` that holds a code token (a standalone
/// allow suppresses that line). Falls back to `line + 1`.
fn next_code_line(file: &SourceFile, line: u32) -> u32 {
    file.lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > line)
        .unwrap_or(line + 1)
}

/// Splits a directive into `;`-separated allow segments. A `;` inside
/// a reason does not start a new segment unless what follows is itself
/// an `allow(`, so reasons stay free-form.
fn split_allows(directive: &str) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    for part in directive.split(';') {
        let t = part.trim();
        match segs.last_mut() {
            Some(last) if !t.starts_with("allow(") => {
                last.push_str("; ");
                last.push_str(t);
            }
            _ => segs.push(t.to_owned()),
        }
    }
    segs
}

/// Parses `allow(<rule>): <reason>`, returning the rule name.
fn parse_directive(directive: &str, rule_names: &[&'static str]) -> Result<String, String> {
    let rest = directive
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>): <reason>`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` rule name".to_owned())?;
    let rule = rest[..close].trim();
    if !rule_names.contains(&rule) {
        let hint = crate::rules::did_you_mean(rule, rule_names)
            .map(|m| format!(" — did you mean `{m}`?"))
            .unwrap_or_default();
        return Err(format!(
            "unknown rule `{rule}`{hint} (known: {})",
            rule_names.join(", ")
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "allow({rule}) needs a reason: `allow({rule}): <why this is safe>`"
        ));
    }
    Ok(rule.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "x.rs".to_owned(),
            lines: src.lines().map(str::to_owned).collect(),
            lexed: lex(src),
        }
    }

    const RULES: [&str; 2] = ["panic-free-hot-path", "no-wall-clock"];

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = file("x.unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test rig\n");
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(bad.is_empty());
        assert!(s.is_allowed("panic-free-hot-path", 1));
        assert!(!s.is_allowed("no-wall-clock", 1));
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let f = file(
            "// ssdtrain-lint: allow(panic-free-hot-path): known-good\n// another comment\nx.unwrap();\n",
        );
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(bad.is_empty());
        assert!(s.is_allowed("panic-free-hot-path", 3));
        assert!(!s.is_allowed("panic-free-hot-path", 1));
    }

    #[test]
    fn missing_reason_is_a_violation() {
        let f = file("// ssdtrain-lint: allow(no-wall-clock)\nlet t = 0;\n");
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(s.allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "suppression");
        assert!(bad[0].message.contains("needs a reason"));
    }

    #[test]
    fn several_allows_share_one_comment() {
        let f = file(
            "x.unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): rig; \
             allow(no-wall-clock): fixture clock\n",
        );
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(bad.is_empty(), "{bad:?}");
        assert!(s.is_allowed("panic-free-hot-path", 1));
        assert!(s.is_allowed("no-wall-clock", 1));
    }

    #[test]
    fn semicolon_inside_a_reason_stays_in_the_reason() {
        let f = file("x.unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): a; b; c\n");
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(s.allows.len(), 1);
        assert!(s.is_allowed("panic-free-hot-path", 1));
    }

    #[test]
    fn one_bad_segment_does_not_poison_the_good_one() {
        let f = file(
            "// ssdtrain-lint: allow(panic-free-hot-path): fine; allow(made-up): because\n\
             x.unwrap();\n",
        );
        let mut bad = Vec::new();
        let s = parse(&f, &RULES, &mut bad);
        assert!(s.is_allowed("panic-free-hot-path", 2));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn near_miss_rule_names_get_a_hint() {
        let f = file("// ssdtrain-lint: allow(panic-free-hotpath): because\nx.unwrap();\n");
        let mut bad = Vec::new();
        parse(&f, &RULES, &mut bad);
        assert_eq!(bad.len(), 1);
        assert!(
            bad[0]
                .message
                .contains("did you mean `panic-free-hot-path`?"),
            "{}",
            bad[0].message
        );
    }

    #[test]
    fn unknown_rule_is_a_violation() {
        let f = file("// ssdtrain-lint: allow(made-up): because\nlet t = 0;\n");
        let mut bad = Vec::new();
        parse(&f, &RULES, &mut bad);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }
}
