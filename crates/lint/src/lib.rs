//! `ssdtrain-lint` — workspace-aware static analysis for the SSDTrain
//! reproduction.
//!
//! The generic toolchain lints (clippy, rustc) cannot see this
//! project's invariants: timing must come from the simulated clock,
//! the offload hot path must not panic, public APIs must carry typed
//! errors, stage bookkeeping must go through `StageScope`, every
//! `OffloadStats` counter must be exported, and the preludes must be
//! documented. This crate lexes every first-party `.rs` file with a
//! small hand-written scanner (no external parser — the vendor tree is
//! offline-only) and runs six rules over the token streams.
//!
//! Violations can be silenced per line with
//! `// ssdtrain-lint: allow(<rule>): <reason>` — the reason is
//! mandatory, so every suppression is explained in the source.

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod workspace;

pub use diagnostics::{Diagnostic, Report};

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Lints every first-party `.rs` file under `root`.
///
/// When `only_paths` is `Some`, analysis still covers the whole
/// workspace (cross-file rules need the full picture) but only
/// diagnostics anchored in the listed workspace-relative paths are
/// reported.
///
/// # Errors
/// Returns an error only when the root directory cannot be walked.
pub fn lint_root(root: &Path, only_paths: Option<&BTreeSet<String>>) -> io::Result<Report> {
    let ws = workspace::Workspace::load(root)?;
    let mut raw = Vec::new();
    for rule in rules::registry() {
        rule.check(&ws, &mut raw);
    }

    let names = rules::rule_names();
    let mut bad_suppressions = Vec::new();
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    for file in &ws.files {
        let sup = suppress::parse(file, &names, &mut bad_suppressions);
        for d in raw.iter().filter(|d| d.path == file.rel) {
            if sup.is_allowed(d.rule, d.line) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d.clone());
            }
        }
    }
    // A malformed allow is itself a violation — and not a suppressible
    // one, so nobody can silence the silencer.
    report.diagnostics.extend(bad_suppressions);

    if let Some(only) = only_paths {
        report.diagnostics.retain(|d| only.contains(&d.path));
    }
    report.normalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ssdtrain-lint-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/core/src")).unwrap();
        dir
    }

    #[test]
    fn suppressed_violations_are_counted_not_reported() {
        let dir = scratch("sup");
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 {\n    // ssdtrain-lint: allow(panic-free-hot-path): unit-test scaffold\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let report = lint_root(&dir, None).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn only_paths_filters_reporting_not_analysis() {
        let dir = scratch("only");
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        fs::write(
            dir.join("crates/core/src/io.rs"),
            "fn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let full = lint_root(&dir, None).unwrap();
        assert_eq!(full.diagnostics.len(), 2);
        let only: BTreeSet<String> = ["crates/core/src/io.rs".to_owned()].into();
        let filtered = lint_root(&dir, Some(&only)).unwrap();
        assert_eq!(filtered.diagnostics.len(), 1);
        assert_eq!(filtered.diagnostics[0].path, "crates/core/src/io.rs");
        let _ = fs::remove_dir_all(&dir);
    }
}
