//! `ssdtrain-lint` — workspace-aware static analysis for the SSDTrain
//! reproduction.
//!
//! The generic toolchain lints (clippy, rustc) cannot see this
//! project's invariants: timing must come from the simulated clock,
//! the offload hot path must not panic, public APIs must carry typed
//! errors, stage bookkeeping must go through `StageScope`, every
//! `OffloadStats` counter must be exported, and the preludes must be
//! documented. This crate lexes every first-party `.rs` file with a
//! small hand-written scanner (no external parser — the vendor tree is
//! offline-only), indexes it into items and control-flow graphs (the
//! [`engine`]), and runs the rules over the result. Beyond the token
//! rules, the flow rules prove path properties: reservations settle on
//! every exit, lock acquisition order is globally consistent, manually
//! begun trace spans always close.
//!
//! Violations can be silenced per line with
//! `// ssdtrain-lint: allow(<rule>): <reason>` — the reason is
//! mandatory, so every suppression is explained in the source.

pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod suppress;
pub mod workspace;

pub use diagnostics::{Diagnostic, Report};

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Lints every first-party `.rs` file under `root`.
///
/// When `only_paths` is `Some`, analysis still covers the whole
/// workspace (cross-file rules need the full picture) but only
/// diagnostics anchored in the listed workspace-relative paths are
/// reported.
///
/// # Errors
/// Returns an error only when the root directory cannot be walked.
pub fn lint_root(root: &Path, only_paths: Option<&BTreeSet<String>>) -> io::Result<Report> {
    let ws = workspace::Workspace::load(root)?;
    let ctx = engine::LintContext::new(&ws);
    let mut raw = Vec::new();
    for rule in rules::registry() {
        rule.check(&ctx, &mut raw);
    }

    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    // The context already parsed every suppression comment (the effect
    // inference honours seed-level allows); reuse it for reporting.
    for (fi, file) in ws.files.iter().enumerate() {
        let sup = &ctx.suppressions[fi];
        for d in raw.iter().filter(|d| d.path == file.rel) {
            if sup.is_allowed(d.rule, d.line) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d.clone());
            }
        }
    }
    // A malformed allow is itself a violation — and not a suppressible
    // one, so nobody can silence the silencer.
    report
        .diagnostics
        .extend(ctx.bad_suppressions.iter().cloned());

    if let Some(only) = only_paths {
        report.diagnostics.retain(|d| only.contains(&d.path));
    }
    report.normalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ssdtrain-lint-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/core/src")).unwrap();
        dir
    }

    #[test]
    fn suppressed_violations_are_counted_not_reported() {
        let dir = scratch("sup");
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 {\n    // ssdtrain-lint: allow(panic-free-hot-path): unit-test scaffold\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let report = lint_root(&dir, None).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn only_paths_filters_reporting_not_analysis() {
        let dir = scratch("only");
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        fs::write(
            dir.join("crates/core/src/io.rs"),
            "fn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let full = lint_root(&dir, None).unwrap();
        assert_eq!(full.diagnostics.len(), 2);
        let only: BTreeSet<String> = ["crates/core/src/io.rs".to_owned()].into();
        let filtered = lint_root(&dir, Some(&only)).unwrap();
        assert_eq!(filtered.diagnostics.len(), 1);
        assert_eq!(filtered.diagnostics[0].path, "crates/core/src/io.rs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_comment_can_allow_several_rules_on_a_line() {
        let dir = scratch("multi");
        // Both a panic-free and (via a seeded `Instant::now`) a
        // wall-clock violation on one line, silenced by one comment.
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 {\n    \
             // ssdtrain-lint: allow(panic-free-hot-path): scaffold; allow(no-wall-clock): scaffold\n    \
             let _t = Instant::now(); x.unwrap()\n}\n",
        )
        .unwrap();
        let report = lint_root(&dir, None).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn allow_for_unknown_rule_is_reported_not_silenced() {
        let dir = scratch("unknown");
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "fn f(x: Option<u8>) -> u8 {\n    \
             // ssdtrain-lint: allow(totally-made-up): please\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let report = lint_root(&dir, None).unwrap();
        // The unwrap still fires AND the bogus allow is a violation.
        assert_eq!(report.diagnostics.len(), 2, "{}", report.render_text());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "suppression" && d.message.contains("unknown rule")));
        assert_eq!(report.suppressed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_only_filters_suppression_diagnostics_like_any_other() {
        let dir = scratch("chg-sup");
        // A malformed allow in a file outside the changed set must not
        // fail a --changed-only run; in the changed set it must.
        fs::write(
            dir.join("crates/core/src/cache.rs"),
            "// ssdtrain-lint: allow(panic-free-hot-path)\nfn f() {}\n",
        )
        .unwrap();
        fs::write(dir.join("crates/core/src/io.rs"), "fn g() {}\n").unwrap();
        let other: BTreeSet<String> = ["crates/core/src/io.rs".to_owned()].into();
        let report = lint_root(&dir, Some(&other)).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        let changed: BTreeSet<String> = ["crates/core/src/cache.rs".to_owned()].into();
        let report = lint_root(&dir, Some(&changed)).unwrap();
        assert_eq!(report.diagnostics.len(), 1, "{}", report.render_text());
        assert_eq!(report.diagnostics[0].rule, "suppression");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn suppression_of_a_flow_rule_works_end_to_end() {
        let dir = scratch("flow-sup");
        fs::write(
            dir.join("crates/core/src/tier.rs"),
            "impl T { fn store(&mut self, b: u64) -> Option<u64> {\n    \
             // ssdtrain-lint: allow(reservation-pairing): fixture proves flow-rule suppression\n    \
             let p = self.tiers.reserve(b)?;\n    if b > 4 { return None; }\n    \
             self.commit(p); Some(b)\n} }\n",
        )
        .unwrap();
        let report = lint_root(&dir, None).unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
