//! SARIF 2.1.0 output (`--format sarif`).
//!
//! The subset of SARIF that code-review UIs actually consume: one run,
//! a driver with the full rule catalogue (so `ruleIndex` resolves), and
//! one `result` per diagnostic with a physical location. Rendered by
//! hand like [`Report::render_json`] — stable field order, 2-space
//! indent, one result per line, trailing newline — so two runs over the
//! same tree are byte-identical, which `scripts/ci.sh` asserts.

use crate::diagnostics::{json_str, Report};
use crate::rules;
use std::fmt::Write as _;

/// The `suppression` pseudo-rule fires for malformed/unknown `allow`
/// directives; it is not in the registry (it cannot be suppressed) but
/// its diagnostics still need a catalogue entry for `ruleIndex`.
const SUPPRESSION_RULE: (&str, &str) = (
    "suppression",
    "malformed or unknown `ssdtrain-lint: allow(...)` directive",
);

/// Renders `report` as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    let mut catalogue: Vec<(&str, String)> = rules::registry()
        .iter()
        .map(|r| (r.name(), r.description().to_owned()))
        .collect();
    catalogue.push((SUPPRESSION_RULE.0, SUPPRESSION_RULE.1.to_owned()));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n");
    out.push_str("    {\n");
    out.push_str("      \"tool\": {\n");
    out.push_str("        \"driver\": {\n");
    out.push_str("          \"name\": \"ssdtrain-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/ssdtrain\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (name, desc)) in catalogue.iter().enumerate() {
        let comma = if i + 1 == catalogue.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{comma}",
            json_str(name),
            json_str(desc)
        );
    }
    out.push_str("          ]\n");
    out.push_str("        }\n");
    out.push_str("      },\n");
    if report.diagnostics.is_empty() {
        out.push_str("      \"results\": []\n");
    } else {
        out.push_str("      \"results\": [\n");
        for (i, d) in report.diagnostics.iter().enumerate() {
            let comma = if i + 1 == report.diagnostics.len() {
                ""
            } else {
                ","
            };
            let rule_index = catalogue
                .iter()
                .position(|(name, _)| *name == d.rule)
                .expect("every diagnostic rule is in the catalogue");
            let mut related = String::new();
            if !d.related.is_empty() {
                related.push_str(", \"relatedLocations\": [");
                for (j, r) in d.related.iter().enumerate() {
                    let rcomma = if j + 1 == d.related.len() { "" } else { ", " };
                    let _ = write!(
                        related,
                        "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {uri}}}, \
                         \"region\": {{\"startLine\": {line}, \"startColumn\": {col}}}}}, \
                         \"message\": {{\"text\": {msg}}}}}{rcomma}",
                        uri = json_str(&r.path),
                        line = r.line,
                        col = r.col,
                        msg = json_str(&r.message),
                    );
                }
                related.push(']');
            }
            let _ = writeln!(
                out,
                "        {{\"ruleId\": {rule}, \"ruleIndex\": {rule_index}, \
                 \"level\": \"error\", \"message\": {{\"text\": {msg}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {uri}}}, \"region\": {{\"startLine\": {line}, \
                 \"startColumn\": {col}}}}}}}]{related}}}{comma}",
                rule = json_str(d.rule),
                msg = json_str(&d.message),
                uri = json_str(&d.path),
                line = d.line,
                col = d.col,
            );
        }
        out.push_str("      ]\n");
    }
    out.push_str("    }\n");
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostic;

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            diagnostics: diags,
            files_scanned: 1,
            suppressed: 0,
        }
    }

    #[test]
    fn empty_report_is_a_wellformed_empty_run() {
        let s = render_sarif(&report_with(vec![]));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"name\": \"ssdtrain-lint\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn result_points_at_rule_path_and_region() {
        let s = render_sarif(&report_with(vec![Diagnostic::new(
            "lock-discipline",
            "crates/core/src/cache.rs".to_owned(),
            7,
            3,
            "say \"hi\"".to_owned(),
        )]));
        assert!(s.contains("\"ruleId\": \"lock-discipline\""));
        assert!(s.contains("\"uri\": \"crates/core/src/cache.rs\""));
        assert!(s.contains("\"startLine\": 7, \"startColumn\": 3"));
        assert!(s.contains("say \\\"hi\\\""), "{s}");
        assert!(!s.contains("relatedLocations"));
    }

    #[test]
    fn chain_findings_carry_related_locations() {
        let mut d = Diagnostic::new(
            "panic-free-hot-path",
            "crates/train/src/executor.rs".to_owned(),
            4,
            9,
            "chain".to_owned(),
        );
        d.related.push(crate::diagnostics::RelatedLocation {
            path: "crates/tensor/src/kernels.rs".to_owned(),
            line: 88,
            col: 30,
            message: "effect seed: .expect()".to_owned(),
        });
        let s = render_sarif(&report_with(vec![d]));
        assert!(
            s.contains(
                "\"relatedLocations\": [{\"physicalLocation\": {\"artifactLocation\": \
                 {\"uri\": \"crates/tensor/src/kernels.rs\"}, \"region\": \
                 {\"startLine\": 88, \"startColumn\": 30}}, \
                 \"message\": {\"text\": \"effect seed: .expect()\"}}]"
            ),
            "{s}"
        );
    }

    #[test]
    fn rule_index_resolves_into_the_catalogue() {
        let s = render_sarif(&report_with(vec![Diagnostic::new(
            "suppression",
            "a.rs".to_owned(),
            1,
            1,
            "m".to_owned(),
        )]));
        // The suppression pseudo-rule is the last catalogue entry:
        // eleven registry rules, so index 11.
        assert!(s.contains("\"ruleIndex\": 11"), "{s}");
        assert!(s.contains("\"id\": \"suppression\""));
    }

    #[test]
    fn catalogue_lists_every_registry_rule() {
        let s = render_sarif(&report_with(vec![]));
        for rule in rules::registry() {
            assert!(s.contains(&format!("\"id\": {}", json_str(rule.name()))));
        }
    }
}
