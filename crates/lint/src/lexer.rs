//! A small hand-written Rust scanner.
//!
//! The vendor tree is offline-only, so the lint cannot pull `syn`;
//! instead this module lexes source text into a flat token stream that
//! is exact about the three things the rules care about:
//!
//! 1. **Comments and strings never produce code tokens** — a banned
//!    name inside a doc example or a diagnostic message is not a
//!    violation.
//! 2. **Every token knows its line and column**, so diagnostics carry
//!    precise `file:line` anchors.
//! 3. **Comments are kept on the side** (with their doc-ness and
//!    whether they trail code on the same line) for the suppression
//!    parser and the doc-coverage rule.
//!
//! The scanner understands line/block comments (nested), string, raw
//! string, byte string and char literals, lifetimes, identifiers and
//! numbers. Multi-character operators are kept as single-character
//! punctuation tokens except `::` and `->`, which the rules match on as
//! units.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (single char, or the combined `::` / `->`).
    Punct,
    /// String, raw-string or byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), including the leading quote.
    Lifetime,
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokKind,
    /// Exact source text (literals keep their quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment, kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` opener.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Outer doc comment (`///` or `/**`) — attaches to the next item.
    pub doc: bool,
    /// A code token precedes the comment on the same line.
    pub trailing: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    last_token_line: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            last_token_line: 0,
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && f(self.src[self.pos]) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a `//…` comment (cursor on the first `/`).
    fn line_comment(&mut self, out: &mut Lexed) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        let text = self.take_while(|b| b != b'\n');
        // `///x` is an outer doc comment, `////…` is plain, `//!` inner.
        let doc = text.starts_with("///") && !text.starts_with("////");
        out.comments.push(Comment {
            text,
            line,
            doc,
            trailing,
        });
    }

    /// Consumes a (possibly nested) `/* … */` comment.
    fn block_comment(&mut self, out: &mut Lexed) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let doc = text.starts_with("/**") && !text.starts_with("/***") && text != "/**/";
        out.comments.push(Comment {
            text,
            line,
            doc,
            trailing,
        });
    }

    /// Consumes a quoted run with `\`-escapes (cursor on the opening
    /// quote).
    fn quoted(&mut self, quote: u8) -> usize {
        self.bump();
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b if b == quote => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.pos
    }

    /// Consumes a raw string (cursor on the `r`); returns false if the
    /// lookahead is not actually a raw-string opener.
    fn raw_string(&mut self) -> bool {
        let mut ahead = 1; // past 'r'
        let mut hashes = 0usize;
        while self.peek(ahead) == b'#' {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != b'"' {
            return false;
        }
        for _ in 0..=ahead {
            self.bump(); // r, hashes, opening quote
        }
        // Scan for `"` followed by `hashes` hashes.
        while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut n = 0;
                while n < hashes && self.peek(0) == b'#' {
                    self.bump();
                    n += 1;
                }
                if n == hashes {
                    break;
                }
            }
        }
        true
    }

    fn push(&mut self, out: &mut Lexed, kind: TokKind, text: String, line: u32, col: u32) {
        self.last_token_line = self.line;
        out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner::new(src);
    let mut out = Lexed::default();
    while s.pos < s.src.len() {
        let (line, col) = (s.line, s.col);
        let b = s.peek(0);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == b'/' => s.line_comment(&mut out),
            b'/' if s.peek(1) == b'*' => s.block_comment(&mut out),
            b'"' => {
                let start = s.pos;
                let end = s.quoted(b'"');
                let text = String::from_utf8_lossy(&s.src[start..end]).into_owned();
                s.push(&mut out, TokKind::Str, text, line, col);
            }
            b'r' | b'b' if is_raw_or_byte_string(&s) => {
                let start = s.pos;
                if s.peek(0) == b'b' {
                    // br"…" / br#"…"# / b"…" / b'…'
                    match s.peek(1) {
                        b'r' => {
                            s.bump(); // 'b'; raw_string handles the rest
                            s.raw_string();
                        }
                        b'"' => {
                            s.bump();
                            s.quoted(b'"');
                        }
                        _ => {
                            s.bump(); // b'…'
                            s.quoted(b'\'');
                        }
                    }
                } else {
                    s.raw_string();
                }
                let text = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
                s.push(&mut out, TokKind::Str, text, line, col);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_ident_start(s.peek(1)) && s.peek(1) != b'\\' && !char_closes_at(&s) {
                    s.bump(); // quote
                    let name = s.take_while(is_ident_continue);
                    s.push(&mut out, TokKind::Lifetime, format!("'{name}"), line, col);
                } else {
                    let start = s.pos;
                    let end = s.quoted(b'\'');
                    let text = String::from_utf8_lossy(&s.src[start..end]).into_owned();
                    s.push(&mut out, TokKind::Char, text, line, col);
                }
            }
            _ if is_ident_start(b) => {
                let text = s.take_while(is_ident_continue);
                s.push(&mut out, TokKind::Ident, text, line, col);
            }
            _ if b.is_ascii_digit() => {
                // A `.` continues the number only when a digit follows,
                // so `0..n` and `1.max(2)` keep their dots as
                // punctuation (and `.unwrap` after a number stays
                // visible to the rules).
                let start = s.pos;
                while s.pos < s.src.len() {
                    let c = s.peek(0);
                    if is_ident_continue(c) || (c == b'.' && s.peek(1).is_ascii_digit()) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
                s.push(&mut out, TokKind::Num, text, line, col);
            }
            b':' if s.peek(1) == b':' => {
                s.bump();
                s.bump();
                s.push(&mut out, TokKind::Punct, "::".to_owned(), line, col);
            }
            b'-' if s.peek(1) == b'>' => {
                s.bump();
                s.bump();
                s.push(&mut out, TokKind::Punct, "->".to_owned(), line, col);
            }
            _ => {
                s.bump();
                s.push(&mut out, TokKind::Punct, (b as char).to_string(), line, col);
            }
        }
    }
    out
}

/// Whether the scanner sits on a raw/byte string opener rather than a
/// plain identifier starting with `r`/`b`.
fn is_raw_or_byte_string(s: &Scanner<'_>) -> bool {
    match (s.peek(0), s.peek(1)) {
        (b'r', b'"') | (b'r', b'#') => {
            // Distinguish `r"…"` / `r#"…"#` from `r#raw_ident`.
            let mut ahead = 1;
            while s.peek(ahead) == b'#' {
                ahead += 1;
            }
            s.peek(ahead) == b'"'
        }
        (b'b', b'"') | (b'b', b'\'') => true,
        (b'b', b'r') => {
            let mut ahead = 2;
            while s.peek(ahead) == b'#' {
                ahead += 1;
            }
            s.peek(ahead) == b'"'
        }
        _ => false,
    }
}

/// Whether a `'x…` run closes with a quote right after one ident char —
/// i.e. it is the char literal `'x'`, not the lifetime `'x`.
fn char_closes_at(s: &Scanner<'_>) -> bool {
    // A char literal holding an identifier-start char is exactly
    // `'c'` — one char then the closing quote.
    s.peek(2) == b'\''
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let l = lex("let a = \"x.unwrap()\"; // b.unwrap()\n/* c.unwrap() */ real");
        assert_eq!(idents("let a = \"x.unwrap()\";"), vec!["let", "a"]);
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let l = lex("/// outer\n//! inner\n//// not doc\n/** block */\nstruct X;");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, false, false, true]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn raw_strings_swallow_their_payload() {
        let l = lex("let s = r#\"panic!(\"no\")\"#; after");
        assert!(l.tokens.iter().all(|t| t.text != "panic"));
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn double_colon_and_arrow_are_units() {
        let l = lex("fn f() -> std::io::Result<()> {}");
        assert!(l.tokens.iter().any(|t| t.is_punct("->")));
        assert_eq!(l.tokens.iter().filter(|t| t.is_punct("::")).count(), 2);
    }

    #[test]
    fn method_calls_after_numbers_and_ranges_stay_visible() {
        let l = lex("for i in 0..n.unwrap() { let x = 1.5 + 2.max(3); }");
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("max")));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* a /* b */ c */ code");
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("code"));
    }
}
