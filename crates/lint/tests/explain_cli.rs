//! End-to-end tests for the `--explain` CLI surface: every registered
//! rule has a full doc page, the `suppression` pseudo-rule is covered,
//! and unknown names fail with a did-you-mean hint and exit code 2.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ssdtrain-lint"))
}

#[test]
fn explain_covers_every_listed_rule() {
    let listed = bin().arg("--list-rules").output().expect("list rules");
    assert!(listed.status.success());
    let names: Vec<String> = String::from_utf8_lossy(&listed.stdout)
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .filter(|n| n.contains('-'))
        .map(str::to_owned)
        .collect();
    assert!(names.len() >= 11, "rule catalogue shrank: {names:?}");
    for name in names {
        let out = bin().args(["--explain", &name]).output().expect("explain");
        assert!(out.status.success(), "--explain {name} should exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        for section in ["WHY", "EXAMPLE", "SUPPRESSION"] {
            assert!(
                text.contains(section),
                "--explain {name} is missing its {section} section:\n{text}"
            );
        }
        assert!(
            text.starts_with(&name),
            "--explain {name} should lead with the rule name:\n{text}"
        );
    }
}

#[test]
fn explain_alloc_rule_documents_the_seed_release_semantics() {
    let out = bin()
        .args(["--explain", "no-alloc-hot-loop"])
        .output()
        .expect("explain");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("allow(no-alloc-hot-loop)"),
        "suppression syntax must name the rule:\n{text}"
    );
    assert!(
        text.contains("releases every transitive caller"),
        "seed-level allow semantics must be documented:\n{text}"
    );
}

#[test]
fn explain_suppression_pseudo_rule_exits_zero() {
    let out = bin()
        .args(["--explain", "suppression"])
        .output()
        .expect("explain");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("Not suppressible"),
        "the suppression pseudo-rule cannot silence itself:\n{text}"
    );
}

#[test]
fn explain_near_miss_suggests_the_real_rule() {
    let out = bin()
        .args(["--explain", "no-alloc-hotloop"])
        .output()
        .expect("explain");
    assert_eq!(out.status.code(), Some(2), "unknown rule must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("did you mean `no-alloc-hot-loop`?"),
        "near-miss should get a hint:\n{err}"
    );
}

#[test]
fn explain_unknown_rule_exits_two_without_bogus_hint() {
    let out = bin()
        .args(["--explain", "totally-bogus-rule"])
        .output()
        .expect("explain");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown rule `totally-bogus-rule`"), "{err}");
    assert!(
        !err.contains("did you mean"),
        "a far-off name should not get a hint:\n{err}"
    );
}

#[test]
fn explain_without_argument_exits_two_with_usage() {
    let out = bin().arg("--explain").output().expect("explain");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--explain needs a rule name"), "{err}");
    assert!(err.contains("USAGE"), "usage text should follow:\n{err}");
}
