//! Golden tests over the seeded fixture trees.
//!
//! `fixtures/violations/` mirrors real workspace paths and plants one
//! violation per rule (plus one suppressed site and one malformed
//! allow); the JSON report over it is pinned byte-for-byte. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p ssdtrain-lint`.

use ssdtrain_lint::lint_root;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violations_fixture_matches_golden_json() {
    let report = lint_root(&fixture_root("violations"), None).expect("scan fixtures");
    let json = report.render_json();
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/violations.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&golden, &json).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&golden).expect(
        "missing tests/golden/violations.json; run UPDATE_GOLDEN=1 cargo test -p ssdtrain-lint",
    );
    assert_eq!(
        json, want,
        "lint JSON drifted from the golden file; if the change is intentional run \
         UPDATE_GOLDEN=1 cargo test -p ssdtrain-lint"
    );
}

#[test]
fn each_rule_fires_at_its_seeded_anchor() {
    let report = lint_root(&fixture_root("violations"), None).expect("scan fixtures");
    let fired = |rule: &str, path: &str, line: u32| {
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.path == path && d.line == line)
    };
    let anchors = [
        ("no-wall-clock", "crates/simhw/src/clock.rs", 2),
        ("no-wall-clock", "crates/simhw/src/clock.rs", 6),
        ("panic-free-hot-path", "crates/core/src/cache.rs", 5),
        ("panic-free-hot-path", "crates/core/src/cache.rs", 15),
        ("typed-errors", "crates/train/src/api.rs", 4),
        ("typed-errors", "crates/train/src/api.rs", 9),
        ("no-deprecated-stage-api", "crates/train/src/executor.rs", 5),
        ("no-deprecated-stage-api", "crates/train/src/executor.rs", 6),
        ("trace-emit-coverage", "crates/core/src/stats.rs", 8),
        ("doc-coverage", "crates/core/src/prelude.rs", 4),
        ("suppression", "crates/core/src/cache.rs", 13),
        // Flow rules: true positives seeded next to near-misses that
        // live in the `clean` tree.
        ("lock-discipline", "crates/core/src/io.rs", 15),
        ("lock-discipline", "crates/core/src/io.rs", 23),
        ("lock-discipline", "crates/core/src/io.rs", 31),
        ("lock-discipline", "crates/core/src/io.rs", 39),
        ("reservation-pairing", "crates/core/src/tier.rs", 11),
        ("span-balance", "crates/train/src/session.rs", 10),
        // Interprocedural rules: effects inferred through the call
        // graph, reported at the hot-path/hot-loop call site.
        ("lock-discipline", "crates/core/src/io.rs", 54),
        ("panic-free-hot-path", "crates/core/src/placement.rs", 8),
        ("no-alloc-hot-loop", "crates/train/src/opt_engine.rs", 16),
        ("no-alloc-hot-loop", "crates/train/src/opt_engine.rs", 17),
        // The zero-copy I/O path modules are hot-path and hot-loop.
        ("panic-free-hot-path", "crates/core/src/coalesce.rs", 6),
        ("no-alloc-hot-loop", "crates/core/src/coalesce.rs", 13),
        ("panic-free-hot-path", "crates/simhw/src/arena.rs", 6),
        ("no-alloc-hot-loop", "crates/simhw/src/arena.rs", 13),
    ];
    for (rule, path, line) in anchors {
        assert!(
            fired(rule, path, line),
            "expected {rule} at {path}:{line}; got:\n{}",
            report.render_text()
        );
    }
    assert_eq!(
        report.diagnostics.len(),
        anchors.len(),
        "unexpected extra diagnostics:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.suppressed, 1,
        "the annotated expect should be suppressed"
    );
}

#[test]
fn clean_fixture_is_clean_and_binary_exits_zero() {
    let report = lint_root(&fixture_root("clean"), None).expect("scan fixtures");
    assert!(report.is_clean(), "{}", report.render_text());

    let out = Command::new(env!("CARGO_BIN_EXE_ssdtrain-lint"))
        .args(["--root"])
        .arg(fixture_root("clean"))
        .args(["--format", "json"])
        .output()
        .expect("run ssdtrain-lint");
    assert!(
        out.status.success(),
        "expected exit 0 on the clean fixture tree:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn violations_fixture_makes_binary_exit_one() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdtrain-lint"))
        .args(["--root"])
        .arg(fixture_root("violations"))
        .output()
        .expect("run ssdtrain-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 on the seeded violations:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn list_rules_names_all_eleven() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdtrain-lint"))
        .arg("--list-rules")
        .output()
        .expect("run ssdtrain-lint");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-wall-clock",
        "panic-free-hot-path",
        "typed-errors",
        "no-deprecated-stage-api",
        "no-deprecated-target-api",
        "trace-emit-coverage",
        "doc-coverage",
        "lock-discipline",
        "reservation-pairing",
        "span-balance",
        "no-alloc-hot-loop",
    ] {
        assert!(text.contains(rule), "--list-rules missing {rule}:\n{text}");
    }
}

#[test]
fn sarif_output_is_wellformed_and_byte_stable() {
    let run_once = || {
        Command::new(env!("CARGO_BIN_EXE_ssdtrain-lint"))
            .args(["--root"])
            .arg(fixture_root("violations"))
            .args(["--format", "sarif"])
            .output()
            .expect("run ssdtrain-lint")
    };
    let first = run_once();
    assert_eq!(first.status.code(), Some(1), "violations still exit 1");
    let text = String::from_utf8_lossy(&first.stdout);
    assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
    assert!(text.contains("\"ruleId\": \"lock-discipline\""), "{text}");
    assert!(
        text.contains("\"uri\": \"crates/core/src/io.rs\""),
        "{text}"
    );
    // Interprocedural findings carry their call chain as SARIF
    // relatedLocations, one per hop, ending at the effect seed.
    assert!(text.contains("\"relatedLocations\""), "{text}");
    assert!(
        text.contains("\"uri\": \"crates/core/src/encode.rs\""),
        "chain hops should point into the helper module:\n{text}"
    );
    let second = run_once();
    assert_eq!(
        first.stdout, second.stdout,
        "SARIF output must be byte-identical across runs"
    );
}
