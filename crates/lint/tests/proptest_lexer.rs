//! Property tests for the hand-written lexer: arbitrary fragment soup
//! must never panic the scanner, and the emitted tokens must carry
//! monotone, non-overlapping source positions. These are exactly the
//! invariants every downstream pass (items, cfg, call graph) leans on.

use proptest::prelude::*;
use ssdtrain_lint::lexer::{lex, Lexed};

/// Source fragments chosen to stress the scanner's tricky states:
/// unterminated strings, raw-string heads, escapes, lifetimes vs char
/// literals, comment openers, multibyte identifiers and lone quotes.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() {}".to_string()),
        Just("let x = 1;".to_string()),
        Just("\n".to_string()),
        Just(" ".to_string()),
        Just("\"".to_string()),
        Just("\"abc".to_string()),
        Just("\"a\\\"b\"".to_string()),
        Just("r#\"".to_string()),
        Just("r#\"raw\"#".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("'a".to_string()),
        Just("'x'".to_string()),
        Just("'\\n'".to_string()),
        Just("//".to_string()),
        Just("// line comment\n".to_string()),
        Just("/*".to_string()),
        Just("/* block */".to_string()),
        Just("/// doc\n".to_string()),
        Just("::<>->".to_string()),
        Just("0x1f_u64".to_string()),
        Just("1.5e-3".to_string()),
        Just("self.mu.lock()".to_string()),
        Just("väljärvi".to_string()),
        Just("∆t".to_string()),
        Just("\\".to_string()),
        Just("#![allow(dead_code)]".to_string()),
        Just("macro_rules! m".to_string()),
    ]
}

/// Soup of fragments glued together — syntactically broken on purpose.
fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(fragment(), 0..40).prop_map(|v| v.concat())
}

/// Positions every downstream pass assumes: 1-based, monotone in
/// source order, and non-overlapping for same-line neighbours.
fn check_positions(src: &str, lexed: &Lexed) -> Result<(), String> {
    let mut prev: Option<(u32, u32, usize, bool)> = None;
    for tok in &lexed.tokens {
        if tok.text.is_empty() {
            return Err(format!("empty token text at {}:{}", tok.line, tok.col));
        }
        if tok.line == 0 || tok.col == 0 {
            return Err(format!("zero-based position {}:{}", tok.line, tok.col));
        }
        if let Some((pl, pc, plen, single_line)) = prev {
            if (tok.line, tok.col) <= (pl, pc) {
                return Err(format!(
                    "positions went backwards: {}:{} after {pl}:{pc} in {src:?}",
                    tok.line, tok.col
                ));
            }
            if single_line && tok.line == pl && (tok.col as usize) < pc as usize + plen {
                return Err(format!(
                    "token at {}:{} overlaps {plen}-byte neighbour at {pl}:{pc} in {src:?}",
                    tok.line, tok.col
                ));
            }
        }
        prev = Some((tok.line, tok.col, tok.text.len(), !tok.text.contains('\n')));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_and_positions_are_monotone(src in soup()) {
        let lexed = lex(&src);
        if let Err(msg) = check_positions(&src, &lexed) {
            prop_assert!(false, "{}", msg);
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1, "comment with zero-based line in {src:?}");
            prop_assert!(!c.text.is_empty(), "empty comment text in {src:?}");
        }
    }

    #[test]
    fn token_count_is_bounded_by_source_bytes(src in soup()) {
        let lexed = lex(&src);
        prop_assert!(
            lexed.tokens.len() <= src.len(),
            "{} tokens from {} bytes",
            lexed.tokens.len(),
            src.len()
        );
    }
}

/// Deterministic spot-checks for scanner states the soup may not hit
/// every run: unterminated raw strings and a trailing backslash must
/// reach end-of-input without panicking.
#[test]
fn pathological_tails_do_not_panic() {
    for src in [
        "r#\"never closed",
        "r###\"deep\"##",
        "\"escape at eof \\",
        "'",
        "b'",
        "/* nested /* comment",
        "ident\u{0000}after_nul",
    ] {
        let _ = lex(src);
    }
}
