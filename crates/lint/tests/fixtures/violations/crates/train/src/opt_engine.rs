//! Seeded fixture: `no-alloc-hot-loop` violations — one allocation
//! sits directly inside the loop, one hides behind a resolved call.

struct OptEngine;

impl OptEngine {
    /// Builds a label; the allocation the loop call below reaches.
    fn make_label(&self, j: u64) -> String {
        format!("stage{j}")
    }

    /// Allocates directly in the loop (line 16) and through
    /// `make_label` (line 17).
    fn run(&self, stages: u64) {
        for j in 0..stages {
            let scratch = vec![0u64; 4];
            let label = self.make_label(j);
            drop(scratch);
            drop(label);
        }
    }
}
