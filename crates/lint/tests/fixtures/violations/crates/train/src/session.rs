//! Seeded fixture: a `span-balance` leak on the error path.

struct Session {
    trace: TraceSink,
}

impl Session {
    /// The `?` exit skips `span.end` (seeded violation, line 10).
    fn run_step(&mut self) -> Result<(), StepError> {
        let span = self.trace.begin_span(TraceCategory::Session, "step", 0);
        self.advance()?;
        span.end(1);
        Ok(())
    }
}
