//! Seeded fixture: `no-deprecated-stage-api` violations.

/// Drives a cache with the deprecated shims (seeded violations, lines 5-6).
pub fn drive(cache: &mut ssdtrain::TensorCache) {
    cache.set_stage(ssdtrain::StageHint::Forward);
    cache.stage_done();
}
