//! Seeded fixture: `typed-errors` violations in public signatures.

/// Returns a stringly-typed error (seeded violation, line 4).
pub fn stringly() -> Result<(), String> {
    Ok(())
}

/// Returns a type-erased error (seeded violation, line 9).
pub fn boxed() -> Result<u8, Box<dyn std::error::Error>> {
    Ok(0)
}
