//! Seeded fixture: `no-wall-clock` violations in a simulated-time crate.
use std::time::Instant;

/// Reads the host clock (seeded violation, line 6).
pub fn host_now() -> Instant {
    Instant::now()
}
