//! Seeded fixture: the pinned buffer arena is hot-path and hot-loop —
//! one panic site in `acquire` (line 6) and one allocation inside the
//! slab-reuse scan (line 13).

pub fn acquire(free: Option<u64>) -> u64 {
    free.expect("a free slab")
}

/// Scans the free list: clones the candidate set on every probe.
pub fn reuse_scan(slabs: &[u64]) -> u64 {
    let mut hits = 0u64;
    for s in slabs {
        let probe = slabs.to_vec();
        hits += probe.len() as u64 + s;
    }
    hits
}
