//! Seeded fixture: definition source for the `doc-coverage` violation.

pub struct Undocumented;

/// Documented, so its re-export passes.
pub struct Documented;
