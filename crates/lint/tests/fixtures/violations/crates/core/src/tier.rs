//! Seeded fixture: a `reservation-pairing` leak.

struct TierStack {
    cap: u64,
}

impl TierStack {
    /// Leaks the reservation when `bytes > cap` (seeded violation,
    /// line 11).
    fn store(&mut self, bytes: u64) -> Option<u64> {
        let placement = self.tiers.reserve(bytes)?;
        if bytes > self.cap {
            return None;
        }
        self.commit(placement);
        Some(bytes)
    }
}
