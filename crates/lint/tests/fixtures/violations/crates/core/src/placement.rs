//! Seeded fixture: a *transitive* `panic-free-hot-path` violation —
//! the panic sits two resolved calls outside the hot set, so only the
//! effect inference can see it from here.

/// Hot-path entry; the unwrap is two hops away (seeded violation,
/// line 8).
pub fn place(bytes: Option<u64>) -> u64 {
    encode_block(bytes)
}
