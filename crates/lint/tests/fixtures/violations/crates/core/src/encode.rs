//! Helper module outside the hot set: hosts the panic that the
//! `place → encode_block → checked_len` chain reaches.

/// Encodes one block, delegating the length check.
pub fn encode_block(bytes: Option<u64>) -> u64 {
    checked_len(bytes) * 2
}

/// Unwraps — legal in cold code, fatal when reached from the hot path.
pub fn checked_len(bytes: Option<u64>) -> u64 {
    bytes.unwrap()
}
