//! Seeded fixture: `panic-free-hot-path` violations in a hot-path file.

/// Panics on a cache miss (seeded violation, line 5).
pub fn unpack_must_not_panic(slot: Option<u64>) -> u64 {
    slot.unwrap()
}

/// A properly suppressed panic site: counted, never reported.
pub fn suppressed_site(slot: Option<u64>) -> u64 {
    slot.expect("fixture") // ssdtrain-lint: allow(panic-free-hot-path): seeded fixture proving suppression works
}

// ssdtrain-lint: allow(panic-free-hot-path)
pub fn malformed_allow_above(slot: Option<u64>) -> u64 {
    slot.unwrap()
}
