//! Seeded fixture: `trace-emit-coverage` violation.

/// Offload counters (fixture copy).
pub struct OffloadStats {
    /// Exported below.
    pub bytes_stored: u64,
    /// Never exported (seeded violation, line 8).
    pub orphan_counter: u64,
}

impl OffloadStats {
    /// Exports only some of the fields.
    pub fn export_to(&self) -> u64 {
        self.bytes_stored
    }
}
