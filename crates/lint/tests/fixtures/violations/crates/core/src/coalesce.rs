//! Seeded fixture: the write coalescer is hot-path and hot-loop — one
//! panic site in `stage` (line 6) and one per-entry allocation inside
//! the seal loop (line 13).

pub fn stage(open: Option<u64>, bytes: u64) -> u64 {
    open.unwrap() + bytes
}

/// Seals a segment: allocates a label per entry inside the drain loop.
pub fn seal(entries: u64) {
    let mut total = 0u64;
    for e in 0..entries {
        let label = format!("seg{e}");
        total += label.len() as u64;
    }
    drop(total);
}
