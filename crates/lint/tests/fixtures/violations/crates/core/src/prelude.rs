//! Seeded fixture: `doc-coverage` violation at a prelude re-export.

pub use crate::Documented;
pub use crate::Undocumented;
