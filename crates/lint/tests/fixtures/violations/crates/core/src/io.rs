//! Seeded fixture: `lock-discipline` violations — an order inversion
//! between `queue` and `stats`, a re-acquisition, and a guard held
//! across a clock advance.

struct IoEngine {
    queue: Mutex<u64>,
    stats: Mutex<u64>,
}

impl IoEngine {
    /// Acquires `queue` then `stats` (one half of the inversion; the
    /// inner acquisition is the seeded violation, line 15).
    fn submit(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        drop(s);
        drop(q);
    }

    /// Acquires `stats` then `queue` (the other half, line 23).
    fn flush(&self) {
        let s = self.stats.lock();
        let q = self.queue.lock();
        drop(q);
        drop(s);
    }

    /// Relocks `stats` while its first guard is held (line 31).
    fn double_count(&self) {
        let s = self.stats.lock();
        let t = self.stats.lock();
        drop(t);
        drop(s);
    }

    /// Holds the `queue` guard across a clock advance (line 39).
    fn drain(&self) {
        let q = self.queue.lock();
        self.clock.advance_to(0);
        drop(q);
    }
}

impl IoEngine {
    /// Advances the clock behind one hop — the wrapper the transitive
    /// hold check must see through.
    fn pump(&self) {
        self.clock.advance_to(0);
    }

    /// Holds the `queue` guard across the wrapper (line 54).
    fn drain_via(&self) {
        let q = self.queue.lock();
        self.pump();
        drop(q);
    }
}
