//! Near-miss fixture: reservations settled on every path, or escaping
//! to the caller — `reservation-pairing` must stay quiet.

struct TierStack {
    cap: u64,
}

impl TierStack {
    /// Same shape as the seeded leak, but the early path releases.
    fn store(&mut self, bytes: u64) -> Option<u64> {
        let placement = self.tiers.reserve(bytes)?;
        if bytes > self.cap {
            self.tiers.release(placement.tier, bytes);
            return None;
        }
        self.commit(placement);
        Some(bytes)
    }

    /// Tail position: the obligation transfers to the caller.
    fn grab(&mut self, bytes: u64) -> Option<Placement> {
        self.tiers.reserve(bytes)
    }
}
