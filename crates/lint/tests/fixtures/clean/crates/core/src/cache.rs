//! Clean fixture: hot-path code that propagates typed errors.

/// The typed error the clean fixture propagates.
#[derive(Debug)]
pub struct MissError;

/// Unpacks a record, surfacing a miss as a typed error.
pub fn unpack(slot: Option<u64>) -> Result<u64, MissError> {
    slot.ok_or(MissError)
}

/// Two impls share `refresh`; the opaque receiver below stays
/// unresolved, so neither allocation reaches the loop.
pub struct Pool;

impl Pool {
    fn refresh(&self) -> Vec<u64> {
        vec![0; 8]
    }
}

/// Shadow of [`Pool::refresh`] — makes the name ambiguous.
pub struct Registry;

impl Registry {
    fn refresh(&self) -> Vec<u64> {
        vec![0; 16]
    }
}

/// Near-miss: a shadowed method through an opaque receiver resolves to
/// nothing, so the loop stays effect-free.
pub fn sweep(handles: &[Handle]) {
    for h in handles {
        h.refresh();
    }
}

/// Probes implemented by two types: `dyn` dispatch must not pick one.
pub trait Probe {
    /// Samples one reading.
    fn sample(&self) -> u64;
}

/// Allocation-free implementor.
pub struct FastProbe;

impl Probe for FastProbe {
    fn sample(&self) -> u64 {
        7
    }
}

/// Allocating implementor — must not leak its effect into `poll`.
pub struct SlowProbe;

impl Probe for SlowProbe {
    fn sample(&self) -> u64 {
        vec![0u64; 8].len() as u64
    }
}

/// Near-miss: trait-object dispatch over shadowed implementors yields
/// no call edge, so the loop stays clean.
pub fn poll(probe: &dyn Probe) {
    for _ in 0..4 {
        probe.sample();
    }
}
