//! Clean fixture: hot-path code that propagates typed errors.

/// The typed error the clean fixture propagates.
#[derive(Debug)]
pub struct MissError;

/// Unpacks a record, surfacing a miss as a typed error.
pub fn unpack(slot: Option<u64>) -> Result<u64, MissError> {
    slot.ok_or(MissError)
}
