//! Near-miss fixture: the same locks as the seeded inversion, taken in
//! one consistent order, with guards dropped before the clock moves —
//! `lock-discipline` must stay quiet.

struct IoEngine {
    queue: Mutex<u64>,
    stats: Mutex<u64>,
}

impl IoEngine {
    /// `queue` before `stats`, like everywhere else.
    fn submit(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        drop(s);
        drop(q);
    }

    /// Same order as `submit`: a one-way edge, no cycle.
    fn flush(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        drop(s);
        drop(q);
    }

    /// Relocking is fine once the first guard is dropped.
    fn double_count(&self) {
        let s = self.stats.lock();
        drop(s);
        let t = self.stats.lock();
        drop(t);
    }

    /// The guard dies before the clock advances.
    fn drain(&self) {
        let q = self.queue.lock();
        drop(q);
        self.clock.advance_to(0);
    }

    /// An inline temporary holds the guard for one expression only.
    fn bump(&self) {
        *self.stats.lock() += 1;
    }

    /// A projection chain binds the derived count, not the guard: the
    /// temporary dies at the `;`, so no stats → queue edge exists and
    /// the `queue` → `stats` order stays acyclic.
    fn rekey(&self) {
        let held = self.stats.lock().count();
        let q = self.queue.lock();
        drop(q);
    }
}
