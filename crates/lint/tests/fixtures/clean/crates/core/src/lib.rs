//! Clean fixture: definition source for the documented re-exports.

/// Documented at the definition.
pub struct Documented;

pub struct AtUseSite;
