//! Clean fixture: every re-export is documented.

pub use crate::Documented;
/// Documented at the use site instead of the definition.
pub use crate::AtUseSite;
