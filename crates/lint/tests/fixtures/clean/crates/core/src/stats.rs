//! Clean fixture: every counter reaches `export_to`.

/// Offload counters (fixture copy).
pub struct OffloadStats {
    /// Bytes written to the offload target.
    pub bytes_stored: u64,
    /// Bytes read back.
    pub bytes_loaded: u64,
}

impl OffloadStats {
    /// Exports every field.
    pub fn export_to(&self) -> u64 {
        self.bytes_stored + self.bytes_loaded
    }
}
