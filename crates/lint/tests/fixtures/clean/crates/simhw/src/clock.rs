//! Clean fixture: time comes from the simulated clock.

/// Simulated nanoseconds since boot.
pub fn sim_now(clock_ns: u64) -> u64 {
    clock_ns
}
