//! Near-miss fixture: the span closes on both the error and the happy
//! path — `span-balance` must stay quiet.

struct Session {
    trace: TraceSink,
}

impl Session {
    /// Same shape as the seeded leak, but the error path cancels.
    fn run_step(&mut self) -> Result<(), StepError> {
        let span = self.trace.begin_span(TraceCategory::Session, "step", 0);
        if let Err(e) = self.advance() {
            span.cancel();
            return Err(e);
        }
        span.end(1);
        Ok(())
    }

    /// RAII stage scopes balance themselves and are out of scope here.
    fn forward(&mut self) {
        let _scope = self.executor.stage_scope(Stage::Forward);
        self.executor.run();
    }
}
