//! Numerical gradient checking.
//!
//! [`check_gradients`] compares a graph-computed parameter gradient with
//! central finite differences — the standard correctness oracle for an
//! autograd engine. Every operator in [`crate::ops`] is covered by a
//! gradcheck test; downstream models can reuse the utility for their own
//! composites.

use crate::graph::Graph;
use crate::value::Value;
use crate::var::Var;
use ssdtrain_tensor::{Device, MemClass, Tensor};

/// Outcome of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric partials.
    pub max_abs_err: f64,
    /// Index of the worst element.
    pub worst_index: usize,
    /// Analytic value at the worst element.
    pub analytic: f64,
    /// Finite-difference value at the worst element.
    pub numeric: f64,
}

impl GradCheckReport {
    /// True if the worst error is within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err <= tol
    }
}

/// Checks `d loss / d param` for a scalar-loss builder `f`.
///
/// `f` receives a fresh graph (seeded identically on every invocation, so
/// stochastic ops like dropout replay the same mask) and the parameter,
/// and must return the scalar loss value. The analytic gradient comes
/// from one backward pass; the numeric gradient perturbs each parameter
/// element by ±`eps`.
///
/// # Panics
/// Panics if `f` returns a non-scalar loss or the parameter is symbolic.
pub fn check_gradients(
    device: &Device,
    param_init: &Tensor,
    eps: f32,
    seed: u64,
    f: impl Fn(&Graph, &Var) -> Value,
) -> GradCheckReport {
    assert!(param_init.has_data(), "gradcheck needs numeric parameters");
    let dims = param_init.dims().to_vec();
    let base = param_init.to_vec();

    // Analytic gradient.
    let var = Var::new("gradcheck", param_init.deep_clone_as(MemClass::Parameter));
    let g = Graph::new(device, seed);
    let loss = f(&g, &var);
    assert_eq!(loss.tensor().numel(), 1, "gradcheck needs a scalar loss");
    g.backward(&loss);
    let analytic = var
        .grad()
        .expect("loss must depend on the parameter")
        .to_vec();

    // Numeric gradient.
    let eval = |values: Vec<f32>| -> f64 {
        let v = Var::new("gradcheck", {
            device.with_class(MemClass::Parameter, || {
                Tensor::from_vec(values, dims.clone(), device)
            })
        });
        let g = Graph::new(device, seed);
        f(&g, &v).tensor().item() as f64
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        worst_index: 0,
        analytic: 0.0,
        numeric: 0.0,
    };
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let fd = (eval(plus) - eval(minus)) / (2.0 * eps as f64);
        let err = (fd - analytic[i] as f64).abs();
        if err > report.max_abs_err {
            report = GradCheckReport {
                max_abs_err: err,
                worst_index: i,
                analytic: analytic[i] as f64,
                numeric: fd,
            };
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use ssdtrain_tensor::Prng;

    fn dev() -> Device {
        Device::cpu()
    }

    fn randn(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Prng::seed_from_u64(seed);
        Tensor::randn(dims, 0.5, &mut rng, &dev())
    }

    #[test]
    fn matmul_chain_gradcheck() {
        let d = dev();
        let x = randn(&[3, 4], 1);
        let report = check_gradients(&d, &randn(&[4, 5], 2), 1e-2, 3, |g, w| {
            let xv = g.constant(x.clone());
            ops::mean_all(g, &ops::matmul(g, &xv, &g.leaf(w)))
        });
        assert!(report.passes(2e-3), "{report:?}");
    }

    #[test]
    fn gelu_bias_gradcheck() {
        let d = dev();
        let x = randn(&[2, 4], 4);
        let report = check_gradients(&d, &randn(&[4], 5), 1e-2, 6, |g, b| {
            let xv = g.constant(x.clone());
            let y = ops::gelu(g, &ops::add_bias(g, &xv, &g.leaf(b)));
            ops::mean_all(g, &y)
        });
        assert!(report.passes(2e-3), "{report:?}");
    }

    #[test]
    fn softmax_mul_gradcheck() {
        let d = dev();
        let report = check_gradients(&d, &randn(&[2, 3], 7), 1e-2, 8, |g, w| {
            let lw = g.leaf(w);
            let s = ops::softmax_last(g, &lw);
            let y = ops::mul(g, &s, &lw);
            ops::sum_all(g, &y)
        });
        assert!(report.passes(3e-3), "{report:?}");
    }

    #[test]
    fn dropout_gradcheck_with_replayed_mask() {
        // The same seed replays the same mask across the analytic run and
        // every finite-difference evaluation, so dropout is checkable.
        let d = dev();
        let x = randn(&[8], 9);
        let report = check_gradients(&d, &randn(&[8], 10), 1e-2, 11, |g, w| {
            let xv = g.constant(x.clone());
            let y = ops::dropout(g, &ops::mul(g, &xv, &g.leaf(w)), 0.5);
            ops::sum_all(g, &y)
        });
        assert!(report.passes(2e-3), "{report:?}");
    }

    #[test]
    fn attention_projection_gradcheck() {
        let d = dev();
        let q0 = randn(&[2, 3, 4], 12);
        let kv = randn(&[2, 3, 4], 13);
        let report = check_gradients(&d, &randn(&[4, 4], 14), 5e-3, 15, |g, w| {
            let q = ops::matmul(g, &g.constant(q0.clone()), &g.leaf(w));
            let kvv = g.constant(kv.clone());
            let ctx = ops::flash_attention(g, &q, &kvv, &kvv, true, 0.0);
            ops::mean_all(g, &ctx)
        });
        assert!(report.passes(5e-3), "{report:?}");
    }

    #[test]
    fn failing_gradient_is_reported() {
        // A deliberately wrong "gradient" via detach: loss does not
        // depend on w beyond a detached path -> analytic 0, numeric 0;
        // instead check the report fields on a real mismatch by using a
        // huge epsilon on a curved function.
        let d = dev();
        let report = check_gradients(&d, &randn(&[2], 16), 0.9, 17, |g, w| {
            let lw = g.leaf(w);
            let y = ops::mul(g, &lw, &lw); // quadratic: large eps biases FD
            ops::sum_all(g, &ops::gelu(g, &y))
        });
        // With eps=0.9 the finite difference of a nonlinear function is
        // far from the analytic slope.
        assert!(!report.passes(1e-6), "{report:?}");
        assert!(report.max_abs_err > 0.0);
    }
}
