//! The define-by-run tape and its backward engine.

use crate::hooks::{Packed, SavedTensorHooks};
use crate::observer::{ExecObserver, OpCost, Phase};
use crate::scope::{stack_transition, ModuleHooks, ScopeFrame, ScopeInfo};
use crate::value::{Source, Value};
use crate::var::Var;
use ssdtrain_tensor::{Device, MemClass, Prng, Tensor};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Result of one operator's backward computation.
pub struct BackwardResult {
    /// Gradient for each input, in input order (`None` for inputs that
    /// need no gradient).
    pub grads: Vec<Option<Tensor>>,
    /// Modelled cost of the backward kernel(s).
    pub cost: OpCost,
}

/// A differentiable operator recorded on the tape.
///
/// `saved` arrives in the order the forward pass passed tensors to
/// [`Graph::record`]; grads arrive one per output.
pub trait Op {
    /// Stable kernel name (appears in observer callbacks and profiles).
    fn name(&self) -> &'static str;

    /// Computes input gradients from output gradients.
    fn backward(
        &self,
        graph: &Graph,
        saved: &[Tensor],
        grads_out: &[Option<Tensor>],
    ) -> BackwardResult;
}

struct Node {
    op: Box<dyn Op>,
    inputs: Vec<Source>,
    saved: Vec<Packed>,
    n_outputs: usize,
    scope: Option<Arc<ScopeFrame>>,
}

struct GraphInner {
    tape: RefCell<Vec<Node>>,
    saved_hooks: RefCell<Option<Arc<dyn SavedTensorHooks>>>,
    module_hooks: RefCell<Vec<Arc<dyn ModuleHooks>>>,
    observer: RefCell<Option<Arc<dyn ExecObserver>>>,
    rng: RefCell<Prng>,
    phase: Cell<Phase>,
    grad_enabled: Cell<bool>,
    scope_top: RefCell<Option<Arc<ScopeFrame>>>,
    seq: Rc<Cell<u64>>,
    micro_batch: Cell<usize>,
    device: Device,
}

/// A computation graph: records operators during forward and replays them
/// in reverse for backward, firing module hooks and resolving saved
/// tensors through the pack/unpack hooks.
///
/// `Graph` is a cheap-clone handle; it is deliberately single-threaded
/// (`!Send`) like a PyTorch autograd engine instance, while the hooks it
/// calls are shared thread-safe objects.
#[derive(Clone)]
pub struct Graph {
    inner: Rc<GraphInner>,
}

impl Graph {
    /// Creates a graph for `device` with a deterministic RNG seed.
    pub fn new(device: &Device, seed: u64) -> Graph {
        Graph {
            inner: Rc::new(GraphInner {
                tape: RefCell::new(Vec::new()),
                saved_hooks: RefCell::new(None),
                module_hooks: RefCell::new(Vec::new()),
                observer: RefCell::new(None),
                rng: RefCell::new(Prng::seed_from_u64(seed)),
                phase: Cell::new(Phase::Forward),
                grad_enabled: Cell::new(true),
                scope_top: RefCell::new(None),
                seq: Rc::new(Cell::new(0)),
                micro_batch: Cell::new(0),
                device: device.clone(),
            }),
        }
    }

    /// The device tensors of this graph live on.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    // ------------------------------------------------------------------
    // Configuration
    // ------------------------------------------------------------------

    /// Installs saved-tensor pack/unpack hooks (replaces any previous).
    pub fn set_saved_tensor_hooks(&self, hooks: Arc<dyn SavedTensorHooks>) {
        *self.inner.saved_hooks.borrow_mut() = Some(hooks);
    }

    /// Removes the saved-tensor hooks; tensors are kept on the graph.
    pub fn clear_saved_tensor_hooks(&self) {
        *self.inner.saved_hooks.borrow_mut() = None;
    }

    /// Registers a module-hooks listener (several may be registered).
    pub fn add_module_hooks(&self, hooks: Arc<dyn ModuleHooks>) {
        self.inner.module_hooks.borrow_mut().push(hooks);
    }

    /// Installs the execution observer (replaces any previous).
    pub fn set_observer(&self, obs: Arc<dyn ExecObserver>) {
        *self.inner.observer.borrow_mut() = Some(obs);
    }

    // ------------------------------------------------------------------
    // Phase, RNG, micro-batches
    // ------------------------------------------------------------------

    /// Current execution phase.
    pub fn phase(&self) -> Phase {
        self.inner.phase.get()
    }

    /// Switches phase and notifies module hooks.
    pub fn set_phase(&self, phase: Phase) {
        self.inner.phase.set(phase);
        for h in self.inner.module_hooks.borrow().iter() {
            h.phase_changed(phase);
        }
    }

    /// Snapshot of the RNG (used by checkpointing to replay dropout).
    pub fn rng_snapshot(&self) -> Prng {
        self.inner.rng.borrow().clone()
    }

    /// Replaces the RNG state.
    pub fn set_rng(&self, rng: Prng) {
        *self.inner.rng.borrow_mut() = rng;
    }

    /// Runs `f` with mutable access to the graph RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut Prng) -> R) -> R {
        f(&mut self.inner.rng.borrow_mut())
    }

    /// Current micro-batch index (stamped into scope infos).
    pub fn micro_batch(&self) -> usize {
        self.inner.micro_batch.get()
    }

    /// Sets the micro-batch index for subsequent scopes.
    pub fn set_micro_batch(&self, mb: usize) {
        self.inner.micro_batch.set(mb);
    }

    /// Whether operators currently record nodes and save tensors.
    pub fn grad_enabled(&self) -> bool {
        self.inner.grad_enabled.get()
    }

    /// Runs `f` with gradient recording disabled (checkpoint forward).
    pub fn with_grad_disabled<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = self.inner.grad_enabled.replace(false);
        let r = f();
        self.inner.grad_enabled.set(prev);
        r
    }

    /// Number of nodes currently on the tape.
    pub fn tape_len(&self) -> usize {
        self.inner.tape.borrow().len()
    }

    /// Clears the tape for the next step; hooks, observer, RNG and scope
    /// configuration are kept.
    pub fn reset_tape(&self) {
        self.inner.tape.borrow_mut().clear();
    }

    // ------------------------------------------------------------------
    // Values
    // ------------------------------------------------------------------

    /// Wraps a tensor as a non-differentiable input.
    pub fn constant(&self, t: Tensor) -> Value {
        Value::with_source(t, Source::Constant)
    }

    /// Wraps a parameter as a differentiable leaf.
    pub fn leaf(&self, var: &Var) -> Value {
        Value::with_source(var.tensor(), Source::Leaf(var.clone()))
    }

    /// Wraps a tensor as positional external input `i` of a checkpointed
    /// segment.
    pub fn external(&self, i: usize, t: Tensor) -> Value {
        Value::with_source(t, Source::External(i))
    }

    // ------------------------------------------------------------------
    // Module scopes
    // ------------------------------------------------------------------

    /// Enters a module scope named `name` (nested under the current one).
    pub fn enter_module(&self, name: &str) {
        let parent = self.inner.scope_top.borrow().clone();
        let path = match &parent {
            Some(p) => format!("{}/{}", p.info.path, name),
            None => name.to_owned(),
        };
        let seq = self.inner.seq.get() + 1;
        self.inner.seq.set(seq);
        let info = ScopeInfo {
            path,
            seq,
            micro_batch: self.inner.micro_batch.get(),
        };
        for h in self.inner.module_hooks.borrow().iter() {
            h.forward_pre(&info);
        }
        let frame = Arc::new(ScopeFrame { info, parent });
        *self.inner.scope_top.borrow_mut() = Some(frame);
    }

    /// Exits the innermost module scope.
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn exit_module(&self) {
        let top = self
            .inner
            .scope_top
            .borrow()
            .clone()
            .expect("exit_module with no open scope");
        for h in self.inner.module_hooks.borrow().iter() {
            h.forward_post(&top.info);
        }
        *self.inner.scope_top.borrow_mut() = top.parent.clone();
    }

    /// Runs `f` inside a module scope.
    pub fn scoped<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.enter_module(name);
        let r = f();
        self.exit_module();
        r
    }

    /// The innermost open scope, if any.
    pub fn current_scope(&self) -> Option<ScopeInfo> {
        self.inner
            .scope_top
            .borrow()
            .as_ref()
            .map(|f| f.info.clone())
    }

    // ------------------------------------------------------------------
    // Recording
    // ------------------------------------------------------------------

    /// Records an executed operator.
    ///
    /// Order of effects mirrors PyTorch: the observer sees the op (clock
    /// advances to the op's completion), *then* saved tensors are packed
    /// (offload jobs start at op completion, Figure 4 ①). With gradients
    /// disabled nothing is recorded or packed and outputs are constants.
    pub fn record(
        &self,
        op: Box<dyn Op>,
        inputs: &[&Value],
        outputs: Vec<Tensor>,
        to_save: Vec<Tensor>,
        cost: OpCost,
    ) -> Vec<Value> {
        let name = op.name();
        if let Some(obs) = self.inner.observer.borrow().as_ref() {
            obs.on_op(name, &cost, self.phase());
        }
        if !self.grad_enabled() {
            return outputs
                .into_iter()
                .map(|t| Value::with_source(t, Source::Constant))
                .collect();
        }
        let hooks = self.inner.saved_hooks.borrow().clone();
        let saved: Vec<Packed> = to_save
            .iter()
            .map(|t| match &hooks {
                Some(h) => h.pack(t),
                None => Packed::Tensor(t.clone()),
            })
            .collect();
        let node = Node {
            op,
            inputs: inputs.iter().map(|v| v.source().clone()).collect(),
            saved,
            n_outputs: outputs.len(),
            scope: self.inner.scope_top.borrow().clone(),
        };
        let mut tape = self.inner.tape.borrow_mut();
        let idx = tape.len();
        tape.push(node);
        outputs
            .into_iter()
            .enumerate()
            .map(|(out, t)| Value::with_source(t, Source::Node { node: idx, out }))
            .collect()
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Backpropagates from a scalar loss, accumulating into parameter
    /// gradients. Sets the phase to [`Phase::Backward`].
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped (one element).
    pub fn backward(&self, loss: &Value) {
        assert_eq!(loss.tensor().numel(), 1, "backward needs a scalar loss");
        let dev = self.inner.device.clone();
        let seed = dev.with_class(MemClass::Workspace, || {
            if loss.tensor().has_data() {
                Tensor::ones(loss.tensor().shape().clone(), &dev)
            } else {
                Tensor::symbolic(loss.tensor().shape().clone(), &dev)
            }
        });
        self.set_phase(Phase::Backward);
        self.backward_from(std::slice::from_ref(loss), vec![seed], 0);
    }

    /// Backpropagates given explicit output gradients; returns gradients
    /// for [`Source::External`] inputs `0..n_externals`.
    ///
    /// Saved tensors and intermediate gradients are dropped as soon as
    /// they are consumed, mirroring PyTorch's memory behaviour during
    /// backward.
    pub fn backward_from(
        &self,
        outputs: &[Value],
        grad_outputs: Vec<Tensor>,
        n_externals: usize,
    ) -> Vec<Option<Tensor>> {
        assert_eq!(outputs.len(), grad_outputs.len(), "one grad per output");
        let mut grads: HashMap<(usize, usize), Tensor> = HashMap::new();
        let mut ext_grads: Vec<Option<Tensor>> = vec![None; n_externals];
        let mut start = None;

        let sink = |source: &Source,
                    g: Tensor,
                    grads: &mut HashMap<(usize, usize), Tensor>,
                    ext: &mut Vec<Option<Tensor>>| {
            match source {
                Source::Node { node, out } => match grads.get(&(*node, *out)) {
                    Some(existing) => existing.accumulate(&g),
                    None => {
                        grads.insert((*node, *out), g);
                    }
                },
                Source::Leaf(var) => var.accumulate_grad(&g),
                Source::External(i) => match &ext[*i] {
                    Some(existing) => existing.accumulate(&g),
                    None => ext[*i] = Some(g),
                },
                Source::Constant => {}
            }
        };

        for (v, g) in outputs.iter().zip(grad_outputs) {
            if let Source::Node { node, .. } = v.source() {
                start = Some(start.map_or(*node, |s: usize| s.max(*node)));
            }
            sink(v.source(), g, &mut grads, &mut ext_grads);
        }

        let Some(start) = start else {
            // Loss does not depend on any recorded node (e.g. pure leaf).
            return ext_grads;
        };

        let hooks = self.inner.saved_hooks.borrow().clone();
        let observer = self.inner.observer.borrow().clone();
        let mut open_stack: Vec<Arc<ScopeFrame>> = Vec::new();

        for idx in (0..=start).rev() {
            // Collect this node's output grads (consuming them).
            let (n_outputs, has_grad) = {
                let tape = self.inner.tape.borrow();
                let node = &tape[idx];
                let has = (0..node.n_outputs).any(|o| grads.contains_key(&(idx, o)));
                (node.n_outputs, has)
            };
            if !has_grad {
                continue;
            }
            let grads_out: Vec<Option<Tensor>> =
                (0..n_outputs).map(|o| grads.remove(&(idx, o))).collect();

            // Fire backward module hooks for scope transitions.
            let target_stack = {
                let tape = self.inner.tape.borrow();
                tape[idx]
                    .scope
                    .as_ref()
                    .map(|f| f.stack())
                    .unwrap_or_default()
            };
            let (to_close, to_open) = stack_transition(&open_stack, &target_stack);
            for f in &to_close {
                for h in self.inner.module_hooks.borrow().iter() {
                    h.backward_post(&f.info);
                }
            }
            for f in &to_open {
                for h in self.inner.module_hooks.borrow().iter() {
                    h.backward_pre(&f.info);
                }
            }
            open_stack = target_stack;

            // Resolve saved tensors through the unpack hook, consuming the
            // packed slots so their references die with this node.
            let (saved_packed, op_taken): (Vec<Packed>, Box<dyn Op>) = {
                let mut tape = self.inner.tape.borrow_mut();
                let node = &mut tape[idx];
                let packed = std::mem::take(&mut node.saved);
                // Swap the op out so we can call it without holding the
                // tape borrow (checkpoint backward re-enters the graph).
                let op = std::mem::replace(&mut node.op, Box::new(TombstoneOp));
                (packed, op)
            };
            let saved: Vec<Tensor> = saved_packed
                .iter()
                .map(|p| match &hooks {
                    Some(h) => h.unpack(p),
                    None => match p {
                        Packed::Tensor(t) => t.clone(),
                        Packed::Opaque(id) => {
                            panic!("opaque saved value {id} without unpack hooks")
                        }
                    },
                })
                .collect();
            drop(saved_packed);

            let dev = self.inner.device.clone();
            let result = dev.with_class(MemClass::Workspace, || {
                op_taken.backward(self, &saved, &grads_out)
            });
            drop(saved);
            drop(grads_out);

            if let Some(obs) = &observer {
                obs.on_op(op_taken.name(), &result.cost, Phase::Backward);
            }

            let input_sources: Vec<Source> = {
                let tape = self.inner.tape.borrow();
                tape[idx].inputs.clone()
            };
            assert_eq!(
                result.grads.len(),
                input_sources.len(),
                "{} backward returned {} grads for {} inputs",
                op_taken.name(),
                result.grads.len(),
                input_sources.len()
            );
            for (source, g) in input_sources.iter().zip(result.grads) {
                if let Some(g) = g {
                    sink(source, g, &mut grads, &mut ext_grads);
                }
            }
        }

        // Close whatever scopes remain open.
        for f in open_stack.iter().rev() {
            for h in self.inner.module_hooks.borrow().iter() {
                h.backward_post(&f.info);
            }
        }

        ext_grads
    }

    /// Creates a child graph for checkpoint recomputation: shares hooks,
    /// observer, module hooks, scope-sequence counter and device; fresh
    /// tape; phase [`Phase::Recompute`].
    pub fn recompute_child(&self) -> Graph {
        let child = Graph {
            inner: Rc::new(GraphInner {
                tape: RefCell::new(Vec::new()),
                saved_hooks: RefCell::new(self.inner.saved_hooks.borrow().clone()),
                module_hooks: RefCell::new(self.inner.module_hooks.borrow().clone()),
                observer: RefCell::new(self.inner.observer.borrow().clone()),
                rng: RefCell::new(self.inner.rng.borrow().clone()),
                phase: Cell::new(Phase::Recompute),
                grad_enabled: Cell::new(true),
                scope_top: RefCell::new(None),
                seq: self.inner.seq.clone(),
                micro_batch: Cell::new(self.inner.micro_batch.get()),
                device: self.inner.device.clone(),
            }),
        };
        for h in child.inner.module_hooks.borrow().iter() {
            h.phase_changed(Phase::Recompute);
        }
        child
    }
}

/// Placeholder op left on the tape after a node's real op was consumed by
/// backward; reaching it again means the tape was replayed, which this
/// engine does not support (no `retain_graph`).
struct TombstoneOp;

impl Op for TombstoneOp {
    fn name(&self) -> &'static str {
        "tombstone"
    }
    fn backward(
        &self,
        _graph: &Graph,
        _saved: &[Tensor],
        _grads_out: &[Option<Tensor>],
    ) -> BackwardResult {
        panic!("backward reached a node twice (retain_graph is unsupported)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use parking_lot::Mutex;

    fn dev() -> Device {
        Device::cpu()
    }

    #[test]
    fn linear_chain_gradients() {
        let d = dev();
        let g = Graph::new(&d, 1);
        // y = (x*w) summed; dy/dw = x
        let w = Var::new("w", Tensor::from_vec(vec![2.0, 3.0], [2], &d));
        let x = g.constant(Tensor::from_vec(vec![5.0, 7.0], [2], &d));
        let wx = ops::mul(&g, &x, &g.leaf(&w));
        let loss = ops::sum_all(&g, &wx);
        g.backward(&loss);
        assert_eq!(w.grad().unwrap().to_vec(), vec![5.0, 7.0]);
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let w = Var::new("w", Tensor::from_vec(vec![1.0], [1], &d));
        let lw = g.leaf(&w);
        let a = ops::scale(&g, &lw, 2.0);
        let b = ops::scale(&g, &lw, 3.0);
        let s = ops::add(&g, &a, &b);
        let loss = ops::sum_all(&g, &s);
        g.backward(&loss);
        assert_eq!(w.grad().unwrap().to_vec(), vec![5.0]);
    }

    #[test]
    fn backward_without_nodes_is_noop() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let w = Var::new("w", Tensor::from_vec(vec![1.0], [1], &d));
        let loss = g.leaf(&w);
        g.backward(&loss);
        assert_eq!(w.grad().unwrap().to_vec(), vec![1.0]);
    }

    #[test]
    fn grad_disabled_records_nothing() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let x = g.constant(Tensor::ones([2], &d));
        let y = g.with_grad_disabled(|| ops::scale(&g, &x, 2.0));
        assert!(matches!(y.source(), Source::Constant));
        assert_eq!(g.tape_len(), 0);
    }

    #[derive(Default)]
    struct EventLog(Mutex<Vec<String>>);

    impl ModuleHooks for EventLog {
        fn forward_pre(&self, s: &ScopeInfo) {
            self.0.lock().push(format!("f+{}", s.path));
        }
        fn forward_post(&self, s: &ScopeInfo) {
            self.0.lock().push(format!("f-{}", s.path));
        }
        fn backward_pre(&self, s: &ScopeInfo) {
            self.0.lock().push(format!("b+{}", s.path));
        }
        fn backward_post(&self, s: &ScopeInfo) {
            self.0.lock().push(format!("b-{}", s.path));
        }
    }

    #[test]
    fn module_hooks_fire_in_both_directions() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let log = Arc::new(EventLog::default());
        g.add_module_hooks(log.clone());
        let w1 = Var::new("w1", Tensor::from_vec(vec![2.0], [1], &d));
        let w2 = Var::new("w2", Tensor::from_vec(vec![3.0], [1], &d));
        let x = g.constant(Tensor::ones([1], &d));
        let h1 = g.scoped("l0", || ops::mul(&g, &x, &g.leaf(&w1)));
        let h2 = g.scoped("l1", || ops::mul(&g, &h1, &g.leaf(&w2)));
        let loss = ops::sum_all(&g, &h2);
        g.backward(&loss);
        let events = log.0.lock().clone();
        // Forward order l0 then l1; backward enters l1 first, then l0.
        let fwd: Vec<_> = events.iter().filter(|e| e.starts_with('f')).collect();
        assert_eq!(fwd, ["f+l0", "f-l0", "f+l1", "f-l1"]);
        let bwd: Vec<_> = events.iter().filter(|e| e.starts_with('b')).collect();
        assert_eq!(bwd, ["b+l1", "b-l1", "b+l0", "b-l0"]);
        assert_eq!(w1.grad().unwrap().to_vec(), vec![3.0]);
        assert_eq!(w2.grad().unwrap().to_vec(), vec![2.0]);
    }

    struct CountingHooks {
        packs: Mutex<u64>,
        unpacks: Mutex<u64>,
    }

    impl SavedTensorHooks for CountingHooks {
        fn pack(&self, tensor: &Tensor) -> Packed {
            *self.packs.lock() += 1;
            Packed::Tensor(tensor.clone())
        }
        fn unpack(&self, packed: &Packed) -> Tensor {
            *self.unpacks.lock() += 1;
            match packed {
                Packed::Tensor(t) => t.clone(),
                Packed::Opaque(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn saved_tensor_hooks_are_called() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let hooks = Arc::new(CountingHooks {
            packs: Mutex::new(0),
            unpacks: Mutex::new(0),
        });
        g.set_saved_tensor_hooks(hooks.clone());
        let w = Var::new("w", Tensor::from_vec(vec![2.0], [1], &d));
        let x = g.constant(Tensor::from_vec(vec![4.0], [1], &d));
        let y = ops::mul(&g, &x, &g.leaf(&w)); // mul saves both inputs
        let loss = ops::sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(*hooks.packs.lock(), 2);
        assert_eq!(*hooks.unpacks.lock(), 2);
        assert_eq!(w.grad().unwrap().to_vec(), vec![4.0]);
    }

    #[test]
    fn scope_seq_is_unique_per_invocation() {
        let d = dev();
        let g = Graph::new(&d, 1);
        g.enter_module("a");
        let s1 = g.current_scope().unwrap();
        g.exit_module();
        g.enter_module("a");
        let s2 = g.current_scope().unwrap();
        g.exit_module();
        assert_eq!(s1.path, s2.path);
        assert_ne!(s1.seq, s2.seq);
    }

    #[test]
    fn nested_scope_paths_compose() {
        let d = dev();
        let g = Graph::new(&d, 1);
        g.enter_module("model");
        g.enter_module("layer0");
        assert_eq!(g.current_scope().unwrap().path, "model/layer0");
        g.exit_module();
        g.exit_module();
        assert!(g.current_scope().is_none());
    }
}
