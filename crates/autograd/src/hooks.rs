//! Saved-tensor pack/unpack hooks — the graph's extension point.
//!
//! When an operator saves a tensor for backward, the engine calls
//! [`SavedTensorHooks::pack`] and registers the *returned value* on the
//! computation graph instead of the tensor. When backward needs the tensor
//! again it calls [`SavedTensorHooks::unpack`]. The SSDTrain tensor cache
//! returns an opaque identifier from `pack` (releasing the tensor's memory
//! once offloading completes) and blocks in `unpack` until the reload
//! finishes — see Figure 6 of the paper.

use ssdtrain_tensor::Tensor;

/// The value an operator registers on the graph in place of a saved
/// tensor.
#[derive(Debug, Clone)]
pub enum Packed {
    /// The tensor itself (pack declined to intercept — parameters, small
    /// tensors, CPU tensors; paper Algorithm 2 line 12).
    Tensor(Tensor),
    /// An opaque handle the hooks can resolve back to the tensor.
    Opaque(u64),
}

impl Packed {
    /// Returns the tensor if this packed value holds one directly.
    pub fn as_tensor(&self) -> Option<&Tensor> {
        match self {
            Packed::Tensor(t) => Some(t),
            Packed::Opaque(_) => None,
        }
    }
}

/// Pack/unpack hook pair, mirroring
/// `torch.autograd.graph.saved_tensors_hooks`.
pub trait SavedTensorHooks: Send + Sync {
    /// Decides what to register on the graph for a tensor being saved.
    fn pack(&self, tensor: &Tensor) -> Packed;

    /// Resolves a packed value back to its tensor.
    ///
    /// For [`Packed::Tensor`] implementations must return the contained
    /// tensor unchanged (paper Algorithm 2 line 20).
    fn unpack(&self, packed: &Packed) -> Tensor;
}

/// Identity hooks: tensors stay on the graph, nothing is intercepted.
/// This is the "keep activations in GPU memory" placement strategy.
#[derive(Debug, Default, Clone, Copy)]
pub struct KeepHooks;

impl SavedTensorHooks for KeepHooks {
    fn pack(&self, tensor: &Tensor) -> Packed {
        Packed::Tensor(tensor.clone())
    }

    fn unpack(&self, packed: &Packed) -> Tensor {
        match packed {
            Packed::Tensor(t) => t.clone(),
            Packed::Opaque(id) => {
                panic!("KeepHooks cannot resolve an opaque handle ({id})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Device;

    #[test]
    fn keep_hooks_round_trip() {
        let dev = Device::cpu();
        let t = Tensor::from_vec(vec![1.0, 2.0], [2], &dev);
        let hooks = KeepHooks;
        let packed = hooks.pack(&t);
        let back = hooks.unpack(&packed);
        assert!(back.storage().ptr_eq(t.storage()));
    }

    #[test]
    fn packed_as_tensor() {
        let dev = Device::cpu();
        let t = Tensor::zeros([1], &dev);
        assert!(Packed::Tensor(t).as_tensor().is_some());
        assert!(Packed::Opaque(3).as_tensor().is_none());
    }
}
