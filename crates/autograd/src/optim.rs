//! Optimizers.
//!
//! The paper's evaluation uses plain SGD (Section 4.1) precisely because
//! it keeps optimizer state at zero bytes, isolating activation memory;
//! we provide SGD (with optional momentum, which *does* allocate state
//! tagged [`MemClass::OptimizerState`] so memory reports attribute it
//! correctly).

use crate::var::Var;
use ssdtrain_tensor::{MemClass, Tensor};

/// Stochastic gradient descent over a set of parameters.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`, no optimizer state — the paper's
    /// configuration).
    pub fn new(params: Vec<Var>, lr: f32) -> Sgd {
        Sgd::with_momentum(params, lr, 0.0)
    }

    /// SGD with classical momentum; allocates one velocity tensor per
    /// parameter on first step.
    pub fn with_momentum(params: Vec<Var>, lr: f32, momentum: f32) -> Sgd {
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }

    /// Parameters managed by this optimizer.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update from the accumulated gradients **in place** —
    /// the parameter's storage identity is preserved across steps, just
    /// like `torch.optim.SGD`, which is what keeps the SSDTrain cache's
    /// parameter registration valid for the whole run. Parameters with
    /// no gradient are skipped. Symbolic parameters are left untouched
    /// (their update cost is a constant offset, paper Section 4.1).
    pub fn step(&mut self) {
        let lr = self.lr;
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            let t = p.tensor();
            if !t.has_data() || !grad.has_data() {
                continue;
            }
            let update = if self.momentum > 0.0 {
                let v_new = match &self.velocity[i] {
                    Some(v) => v.scale(self.momentum).add(&grad),
                    None => grad.deep_clone_as(MemClass::OptimizerState),
                };
                let v_new = v_new.deep_clone_as(MemClass::OptimizerState);
                self.velocity[i] = Some(v_new.clone());
                v_new
            } else {
                grad
            };
            let u = update.to_vec();
            t.storage().with_data_mut(|w| {
                for (wi, gi) in w.iter_mut().zip(&u) {
                    *wi -= lr * gi;
                }
            });
        }
    }

    /// Clears every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Device;

    #[test]
    fn sgd_moves_against_gradient() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![1.0, -1.0], [2], &d));
        w.accumulate_grad(&Tensor::from_vec(vec![0.5, -0.5], [2], &d));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.step();
        let t = w.tensor().to_vec();
        assert!((t[0] - 0.95).abs() < 1e-6);
        assert!((t[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![0.0], [1], &d));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 1.0, 0.5);
        w.accumulate_grad(&Tensor::from_vec(vec![1.0], [1], &d));
        opt.step();
        assert!((w.tensor().to_vec()[0] + 1.0).abs() < 1e-6);
        opt.zero_grad();
        w.accumulate_grad(&Tensor::from_vec(vec![1.0], [1], &d));
        opt.step();
        // v = 0.5 * 1 + 1 = 1.5 -> w = -1 - 1.5 = -2.5
        assert!((w.tensor().to_vec()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![3.0], [1], &d));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.step();
        assert_eq!(w.tensor().to_vec(), vec![3.0]);
    }

    #[test]
    fn momentum_state_is_tagged_optimizer_state() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![0.0], [1], &d));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 1.0, 0.9);
        w.accumulate_grad(&Tensor::ones([1], &d));
        opt.step();
        assert_eq!(
            opt.velocity[0].as_ref().unwrap().mem_class(),
            MemClass::OptimizerState
        );
    }
}
