//! Optimizers.
//!
//! The paper's evaluation uses plain SGD (Section 4.1) precisely because
//! it keeps optimizer state at zero bytes, isolating activation memory;
//! we provide SGD (with optional momentum, which *does* allocate state
//! tagged [`MemClass::OptimizerState`] so memory reports attribute it
//! correctly).

use crate::var::Var;
use ssdtrain_tensor::{MemClass, Tensor};

/// Stochastic gradient descent over a set of parameters.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`, no optimizer state — the paper's
    /// configuration).
    pub fn new(params: Vec<Var>, lr: f32) -> Sgd {
        Sgd::with_momentum(params, lr, 0.0)
    }

    /// SGD with classical momentum; allocates one velocity tensor per
    /// parameter on first step.
    pub fn with_momentum(params: Vec<Var>, lr: f32, momentum: f32) -> Sgd {
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }

    /// Parameters managed by this optimizer.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Momentum coefficient (0 = stateless SGD).
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Number of managed parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the optimizer manages no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The velocity tensor of parameter `i`, if momentum allocated one.
    /// Offload engines use this to move optimizer state through the
    /// tier stack between steps.
    pub fn velocity(&self, i: usize) -> Option<&Tensor> {
        self.velocity.get(i).and_then(|v| v.as_ref())
    }

    /// Materialises the velocity tensor for parameter `i` ahead of the
    /// first update (zeros, tagged [`MemClass::OptimizerState`]) so an
    /// offload engine can place state before any step ran. Numerically
    /// identical to the lazy allocation: `v₁ = 0·m + g₁ = g₁` either
    /// way. No-op (returning `None`) when momentum is zero.
    pub fn ensure_velocity(&mut self, i: usize) -> Option<&Tensor> {
        if self.momentum <= 0.0 || i >= self.params.len() {
            return None;
        }
        if self.velocity[i].is_none() {
            let p = self.params[i].tensor();
            let dev = p.device().clone();
            let shape = p.shape().clone();
            let v = dev.with_class(MemClass::OptimizerState, || {
                if p.has_data() {
                    Tensor::zeros(shape.clone(), &dev)
                } else {
                    Tensor::symbolic(shape.clone(), &dev)
                }
            });
            self.velocity[i] = Some(v);
        }
        self.velocity[i].as_ref()
    }

    /// Applies one update from the accumulated gradients **in place** —
    /// the parameter's storage identity is preserved across steps, just
    /// like `torch.optim.SGD`, which is what keeps the SSDTrain cache's
    /// parameter registration valid for the whole run. Parameters with
    /// no gradient are skipped. Symbolic parameters are left untouched
    /// (their update cost is a constant offset, paper Section 4.1).
    pub fn step(&mut self) {
        self.step_range(0..self.params.len());
    }

    /// Applies the update to the parameter slice `range` only. This is
    /// the per-stage job an overlapped optimizer schedule runs: stage
    /// *j* updates its own parameters while other stages' updates are
    /// still waiting on their state loads. Equivalent to [`Sgd::step`]
    /// when called once per disjoint range covering all parameters.
    pub fn step_range(&mut self, range: std::ops::Range<usize>) {
        let lr = self.lr;
        let range = range.start.min(self.params.len())..range.end.min(self.params.len());
        for (i, p) in self.params[range.clone()]
            .iter()
            .enumerate()
            .map(|(o, p)| (range.start + o, p))
        {
            let Some(grad) = p.grad() else { continue };
            let t = p.tensor();
            if !t.has_data() || !grad.has_data() {
                continue;
            }
            let update = if self.momentum > 0.0 {
                let v_new = match &self.velocity[i] {
                    Some(v) => v.scale(self.momentum).add(&grad),
                    None => grad.deep_clone_as(MemClass::OptimizerState),
                };
                let v_new = v_new.deep_clone_as(MemClass::OptimizerState);
                self.velocity[i] = Some(v_new.clone());
                v_new
            } else {
                grad
            };
            // ssdtrain-lint: allow(no-alloc-hot-loop): the staging copy
            // honours the gradient's view layout (offset, contiguity); a
            // storage-level zip would silently ignore both
            let u = update.to_vec();
            t.storage().with_data_mut(|w| {
                for (wi, gi) in w.iter_mut().zip(&u) {
                    *wi -= lr * gi;
                }
            });
        }
    }

    /// Clears every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Device;

    #[test]
    fn sgd_moves_against_gradient() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![1.0, -1.0], [2], &d));
        w.accumulate_grad(&Tensor::from_vec(vec![0.5, -0.5], [2], &d));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.step();
        let t = w.tensor().to_vec();
        assert!((t[0] - 0.95).abs() < 1e-6);
        assert!((t[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![0.0], [1], &d));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 1.0, 0.5);
        w.accumulate_grad(&Tensor::from_vec(vec![1.0], [1], &d));
        opt.step();
        assert!((w.tensor().to_vec()[0] + 1.0).abs() < 1e-6);
        opt.zero_grad();
        w.accumulate_grad(&Tensor::from_vec(vec![1.0], [1], &d));
        opt.step();
        // v = 0.5 * 1 + 1 = 1.5 -> w = -1 - 1.5 = -2.5
        assert!((w.tensor().to_vec()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![3.0], [1], &d));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.step();
        assert_eq!(w.tensor().to_vec(), vec![3.0]);
    }

    #[test]
    fn step_range_updates_only_its_slice() {
        let d = Device::cpu();
        let a = Var::new("a", Tensor::from_vec(vec![1.0], [1], &d));
        let b = Var::new("b", Tensor::from_vec(vec![1.0], [1], &d));
        a.accumulate_grad(&Tensor::ones([1], &d));
        b.accumulate_grad(&Tensor::ones([1], &d));
        let mut opt = Sgd::new(vec![a.clone(), b.clone()], 0.5);
        opt.step_range(0..1);
        assert!((a.tensor().to_vec()[0] - 0.5).abs() < 1e-6);
        assert_eq!(b.tensor().to_vec(), vec![1.0]);
        opt.step_range(1..2);
        assert!((b.tensor().to_vec()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn per_stage_ranges_match_one_full_step() {
        let d = Device::cpu();
        let mk = |vals: Vec<f32>| {
            let vars: Vec<Var> = vals
                .iter()
                .enumerate()
                .map(|(i, v)| Var::new(format!("p{i}"), Tensor::from_vec(vec![*v], [1], &d)))
                .collect();
            for (i, v) in vars.iter().enumerate() {
                v.accumulate_grad(&Tensor::from_vec(vec![0.25 * (i as f32 + 1.0)], [1], &d));
            }
            vars
        };
        let full = mk(vec![1.0, 2.0, 3.0, 4.0]);
        let staged = mk(vec![1.0, 2.0, 3.0, 4.0]);
        let mut opt_full = Sgd::with_momentum(full.clone(), 0.1, 0.5);
        let mut opt_staged = Sgd::with_momentum(staged.clone(), 0.1, 0.5);
        opt_full.step();
        // Stages applied out of order still cover every parameter once.
        opt_staged.step_range(2..4);
        opt_staged.step_range(0..2);
        for (f, s) in full.iter().zip(&staged) {
            assert_eq!(f.tensor().to_vec(), s.tensor().to_vec());
        }
    }

    #[test]
    fn ensure_velocity_preallocates_without_changing_numerics() {
        let d = Device::cpu();
        let lazy = Var::new("l", Tensor::from_vec(vec![0.0], [1], &d));
        let eager = Var::new("e", Tensor::from_vec(vec![0.0], [1], &d));
        let mut opt_lazy = Sgd::with_momentum(vec![lazy.clone()], 1.0, 0.5);
        let mut opt_eager = Sgd::with_momentum(vec![eager.clone()], 1.0, 0.5);
        assert!(opt_eager.ensure_velocity(0).is_some());
        assert_eq!(
            opt_eager.velocity(0).unwrap().mem_class(),
            MemClass::OptimizerState
        );
        for _ in 0..3 {
            lazy.accumulate_grad(&Tensor::ones([1], &d));
            eager.accumulate_grad(&Tensor::ones([1], &d));
            opt_lazy.step();
            opt_eager.step();
            opt_lazy.zero_grad();
            opt_eager.zero_grad();
        }
        assert_eq!(lazy.tensor().to_vec(), eager.tensor().to_vec());
        // Stateless SGD has no velocity to materialise.
        let mut plain = Sgd::new(vec![lazy], 0.1);
        assert!(plain.ensure_velocity(0).is_none());
    }

    #[test]
    fn momentum_state_is_tagged_optimizer_state() {
        let d = Device::cpu();
        let w = Var::new("w", Tensor::from_vec(vec![0.0], [1], &d));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 1.0, 0.9);
        w.accumulate_grad(&Tensor::ones([1], &d));
        opt.step();
        assert_eq!(
            opt.velocity[0].as_ref().unwrap().mem_class(),
            MemClass::OptimizerState
        );
    }
}
