//! Module scopes and the four module-hook events.
//!
//! A *scope* is one invocation of one module (e.g. `layer2/mlp`) within a
//! micro-batch's forward pass. Scopes form a stack during forward; each
//! recorded operator remembers the stack it ran under, and the backward
//! engine replays the stack transitions in reverse, firing
//! `backward_pre` / `backward_post` exactly like PyTorch's
//! `full_backward_pre_hook` / `full_backward_hook` pair (paper
//! Algorithm 2).

use crate::observer::Phase;
use std::fmt;
use std::sync::Arc;

/// Identity and ordering information of one module invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScopeInfo {
    /// Hierarchical name, e.g. `"layer2/attn"`.
    pub path: String,
    /// Global sequence number of this invocation within the step; defines
    /// the forward order the cache replays for prefetching (Figure 4 ②).
    pub seq: u64,
    /// Micro-batch index this invocation belongs to.
    pub micro_batch: usize,
}

impl fmt::Display for ScopeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@mb{}", self.path, self.seq, self.micro_batch)
    }
}

/// A frame in the scope stack; frames form a parent-linked list so a whole
/// stack is captured by one `Arc`.
#[derive(Debug)]
pub struct ScopeFrame {
    /// This invocation.
    pub info: ScopeInfo,
    /// Enclosing scope, if any.
    pub parent: Option<Arc<ScopeFrame>>,
}

impl ScopeFrame {
    /// Depth of the stack ending at this frame (outermost = 1).
    pub fn depth(self: &Arc<Self>) -> usize {
        let mut d = 1;
        let mut cur = self.parent.clone();
        while let Some(f) = cur {
            d += 1;
            cur = f.parent.clone();
        }
        d
    }

    /// The stack from outermost to innermost.
    pub fn stack(self: &Arc<Self>) -> Vec<Arc<ScopeFrame>> {
        let mut v = Vec::new();
        let mut cur = Some(self.clone());
        while let Some(f) = cur {
            cur = f.parent.clone();
            v.push(f);
        }
        v.reverse();
        v
    }

    /// True if both handles denote the same invocation.
    pub fn same(a: &Arc<ScopeFrame>, b: &Arc<ScopeFrame>) -> bool {
        a.info.seq == b.info.seq
    }
}

/// Listener for module lifecycle events in both directions plus phase
/// changes. All methods have no-op defaults, so implementors override only
/// what they need.
pub trait ModuleHooks: Send + Sync {
    /// Forward: a module scope was entered.
    fn forward_pre(&self, scope: &ScopeInfo) {
        let _ = scope;
    }
    /// Forward: a module scope finished.
    fn forward_post(&self, scope: &ScopeInfo) {
        let _ = scope;
    }
    /// Backward: gradients are about to flow through this module.
    fn backward_pre(&self, scope: &ScopeInfo) {
        let _ = scope;
    }
    /// Backward: this module's backward finished.
    fn backward_post(&self, scope: &ScopeInfo) {
        let _ = scope;
    }
    /// Execution switched phase (forward / backward / recompute).
    fn phase_changed(&self, phase: Phase) {
        let _ = phase;
    }
}

/// Computes the hook events needed to move from the currently open stack
/// `from` to the stack of the next node `to` during *backward* traversal.
///
/// Returns `(to_close, to_open)`: frames to close innermost-first, then
/// frames to open outermost-first.
pub fn stack_transition(
    from: &[Arc<ScopeFrame>],
    to: &[Arc<ScopeFrame>],
) -> (Vec<Arc<ScopeFrame>>, Vec<Arc<ScopeFrame>>) {
    let mut common = 0;
    while common < from.len() && common < to.len() && ScopeFrame::same(&from[common], &to[common]) {
        common += 1;
    }
    let to_close = from[common..].iter().rev().cloned().collect();
    let to_open = to[common..].to_vec();
    (to_close, to_open)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(path: &str, seq: u64, parent: Option<Arc<ScopeFrame>>) -> Arc<ScopeFrame> {
        Arc::new(ScopeFrame {
            info: ScopeInfo {
                path: path.into(),
                seq,
                micro_batch: 0,
            },
            parent,
        })
    }

    #[test]
    fn depth_and_stack() {
        let a = frame("model", 1, None);
        let b = frame("model/layer0", 2, Some(a.clone()));
        let c = frame("model/layer0/mlp", 3, Some(b.clone()));
        assert_eq!(c.depth(), 3);
        let stack = c.stack();
        assert_eq!(stack.len(), 3);
        assert_eq!(stack[0].info.path, "model");
        assert_eq!(stack[2].info.path, "model/layer0/mlp");
    }

    #[test]
    fn transition_between_siblings() {
        let root = frame("model", 1, None);
        let l0 = frame("model/l0", 2, Some(root.clone()));
        let l1 = frame("model/l1", 3, Some(root.clone()));
        let (close, open) = stack_transition(&l1.stack(), &l0.stack());
        assert_eq!(close.len(), 1);
        assert_eq!(close[0].info.path, "model/l1");
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].info.path, "model/l0");
    }

    #[test]
    fn transition_into_nested() {
        let root = frame("model", 1, None);
        let l0 = frame("model/l0", 2, Some(root.clone()));
        let mlp = frame("model/l0/mlp", 3, Some(l0.clone()));
        let (close, open) = stack_transition(&root.stack(), &mlp.stack());
        assert!(close.is_empty());
        assert_eq!(open.len(), 2);
        assert_eq!(open[0].info.path, "model/l0");
        assert_eq!(open[1].info.path, "model/l0/mlp");
    }

    #[test]
    fn transition_out_closes_innermost_first() {
        let root = frame("model", 1, None);
        let l0 = frame("model/l0", 2, Some(root.clone()));
        let mlp = frame("model/l0/mlp", 3, Some(l0.clone()));
        let (close, open) = stack_transition(&mlp.stack(), &[]);
        assert_eq!(open.len(), 0);
        let names: Vec<_> = close.iter().map(|f| f.info.path.clone()).collect();
        assert_eq!(names, vec!["model/l0/mlp", "model/l0", "model"]);
    }

    #[test]
    fn same_path_different_invocation_is_not_same_scope() {
        let a = frame("model/l0", 1, None);
        let b = frame("model/l0", 2, None);
        let (close, open) = stack_transition(&a.stack(), &b.stack());
        assert_eq!(close.len(), 1);
        assert_eq!(open.len(), 1);
    }
}
