//! Trainable leaf variables (parameters).

use parking_lot::Mutex;
use ssdtrain_tensor::{MemClass, Tensor};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unique identity of a leaf variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u64);

impl VarId {
    fn next() -> VarId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        VarId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw value for logs.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

struct VarInner {
    id: VarId,
    name: String,
    tensor: Mutex<Tensor>,
    grad: Mutex<Option<Tensor>>,
}

/// A trainable parameter: a tensor plus an accumulated gradient slot.
///
/// Cloning shares the parameter (like `torch.nn.Parameter` handles).
///
/// ```
/// use ssdtrain_autograd::Var;
/// use ssdtrain_tensor::{Device, Tensor};
/// let dev = Device::cpu();
/// let w = Var::new("w", Tensor::zeros([2, 2], &dev));
/// assert!(w.grad().is_none());
/// ```
#[derive(Clone)]
pub struct Var {
    inner: Arc<VarInner>,
}

impl Var {
    /// Creates a parameter from an initial tensor.
    pub fn new(name: impl Into<String>, tensor: Tensor) -> Var {
        Var {
            inner: Arc::new(VarInner {
                id: VarId::next(),
                name: name.into(),
                tensor: Mutex::new(tensor),
                grad: Mutex::new(None),
            }),
        }
    }

    /// Identity of this parameter.
    pub fn id(&self) -> VarId {
        self.inner.id
    }

    /// Name given at construction.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Snapshot of the current tensor (cheap storage-sharing clone).
    pub fn tensor(&self) -> Tensor {
        self.inner.tensor.lock().clone()
    }

    /// Replaces the parameter tensor (used by optimizers).
    pub fn set_tensor(&self, t: Tensor) {
        *self.inner.tensor.lock() = t;
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.inner.tensor.lock().numel()
    }

    /// Current accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.lock().clone()
    }

    /// Adds `g` into the gradient slot (allocating it on first use with
    /// [`MemClass::Gradient`]).
    ///
    /// # Panics
    /// Panics if `g`'s shape differs from the parameter's.
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut slot = self.inner.grad.lock();
        match &*slot {
            Some(existing) => existing.accumulate(g),
            None => {
                *slot = Some(g.deep_clone_as(MemClass::Gradient));
            }
        }
    }

    /// Clears the gradient slot.
    pub fn zero_grad(&self) {
        *self.inner.grad.lock() = None;
    }

    /// True if both handles denote the same parameter.
    pub fn same(&self, other: &Var) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("shape", &self.tensor().shape().to_string())
            .field("has_grad", &self.grad().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Device;

    #[test]
    fn grad_accumulates_across_calls() {
        let dev = Device::cpu();
        let v = Var::new("v", Tensor::zeros([2], &dev));
        let g = Tensor::from_vec(vec![1.0, 2.0], [2], &dev);
        v.accumulate_grad(&g);
        v.accumulate_grad(&g);
        assert_eq!(v.grad().unwrap().to_vec(), vec![2.0, 4.0]);
        assert_eq!(v.grad().unwrap().mem_class(), MemClass::Gradient);
        v.zero_grad();
        assert!(v.grad().is_none());
    }

    #[test]
    fn clones_share_state() {
        let dev = Device::cpu();
        let v = Var::new("v", Tensor::zeros([1], &dev));
        let c = v.clone();
        c.accumulate_grad(&Tensor::ones([1], &dev));
        assert!(v.grad().is_some());
        assert!(v.same(&c));
    }

    #[test]
    fn ids_are_unique() {
        let dev = Device::cpu();
        let a = Var::new("a", Tensor::zeros([1], &dev));
        let b = Var::new("b", Tensor::zeros([1], &dev));
        assert_ne!(a.id(), b.id());
    }
}
