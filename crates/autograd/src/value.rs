//! Values flowing through the computation graph.

use crate::var::Var;
use ssdtrain_tensor::Tensor;
use std::fmt;

/// Where a [`Value`] came from, i.e. where its gradient must flow.
#[derive(Clone)]
pub enum Source {
    /// Output `out` of the tape node at index `node`.
    Node {
        /// Tape index of the producing node.
        node: usize,
        /// Output slot of the producing node.
        out: usize,
    },
    /// A trainable leaf parameter.
    Leaf(Var),
    /// Positional input of a checkpointed segment (gradient is collected
    /// by `backward_from`).
    External(usize),
    /// No gradient is tracked (model inputs, targets, detached values).
    Constant,
}

impl fmt::Debug for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Node { node, out } => write!(f, "Node({node}.{out})"),
            Source::Leaf(v) => write!(f, "Leaf({})", v.name()),
            Source::External(i) => write!(f, "External({i})"),
            Source::Constant => write!(f, "Constant"),
        }
    }
}

/// A tensor with provenance on a [`crate::Graph`].
///
/// Cloning is cheap; the tensor's storage is shared.
#[derive(Clone, Debug)]
pub struct Value {
    tensor: Tensor,
    source: Source,
}

impl Value {
    /// Wraps a tensor with an explicit source. Mostly used by the engine;
    /// user code goes through [`crate::Graph::constant`] and
    /// [`crate::Graph::leaf`].
    pub fn with_source(tensor: Tensor, source: Source) -> Value {
        Value { tensor, source }
    }

    /// The carried tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Provenance of this value.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// A copy of this value with gradient tracking severed.
    pub fn detach(&self) -> Value {
        Value {
            tensor: self.tensor.clone(),
            source: Source::Constant,
        }
    }

    /// Shape dims convenience.
    pub fn dims(&self) -> &[usize] {
        self.tensor.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Device;

    #[test]
    fn detach_severs_source() {
        let dev = Device::cpu();
        let v = Value::with_source(Tensor::zeros([2], &dev), Source::Node { node: 3, out: 0 });
        let d = v.detach();
        assert!(matches!(d.source(), Source::Constant));
        assert!(d.tensor().storage().ptr_eq(v.tensor().storage()));
    }
}
