//! Execution observation: per-operator cost reporting.
//!
//! The training-step engine implements [`ExecObserver`] to advance the
//! simulated GPU clock by each operator's modelled kernel time; the same
//! channel reports execution phases so the tensor cache knows when
//! backward (and checkpoint recomputation) is in progress.

use std::fmt;

/// Phase of step execution an operator runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward propagation of a micro-batch.
    Forward,
    /// Backward propagation.
    Backward,
    /// Forward recomputation inside backward (activation checkpointing).
    /// The SSDTrain cache must *not* offload activations produced here
    /// (paper Algorithm 2, line 15).
    Recompute,
}

impl Phase {
    /// True for phases executing inside backward propagation.
    pub fn in_backward(self) -> bool {
        matches!(self, Phase::Backward | Phase::Recompute)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Recompute => "recompute",
        };
        f.write_str(s)
    }
}

/// Modelled cost of one kernel launch.
///
/// Derived from tensor shapes, so it is exact in both numeric and symbolic
/// execution modes. The GPU roofline in `ssdtrain-simhw` converts it to a
/// duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read from device memory (at accounted dtype width).
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
}

impl OpCost {
    /// A cost with the given fields.
    pub fn new(flops: u64, bytes_read: u64, bytes_written: u64) -> OpCost {
        OpCost {
            flops,
            bytes_read,
            bytes_written,
        }
    }

    /// Total device-memory traffic.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }
}

/// Observer of operator execution.
///
/// `on_op` is called once per executed operator, *after* its outputs are
/// materialised and *before* its saved tensors are packed — so a pack-hook
/// driven offload starts at the operator's completion time, matching the
/// paper's Figure 4 (offloading of an activation starts once the operator
/// producing it finishes).
pub trait ExecObserver: Send + Sync {
    /// One operator ran.
    fn on_op(&self, name: &str, cost: &OpCost, phase: Phase);
}

/// Observer that accumulates totals; handy in tests and profiling.
#[derive(Debug, Default)]
pub struct CostTotals {
    inner: parking_lot::Mutex<TotalsInner>,
}

#[derive(Debug, Default, Clone)]
struct TotalsInner {
    forward: OpCost,
    backward: OpCost,
    recompute: OpCost,
    ops: u64,
}

impl CostTotals {
    /// An empty accumulator.
    pub fn new() -> CostTotals {
        CostTotals::default()
    }

    /// Accumulated cost of the given phase.
    pub fn phase_cost(&self, phase: Phase) -> OpCost {
        let g = self.inner.lock();
        match phase {
            Phase::Forward => g.forward,
            Phase::Backward => g.backward,
            Phase::Recompute => g.recompute,
        }
    }

    /// Total number of operators observed.
    pub fn op_count(&self) -> u64 {
        self.inner.lock().ops
    }
}

impl ExecObserver for CostTotals {
    fn on_op(&self, _name: &str, cost: &OpCost, phase: Phase) {
        let mut g = self.inner.lock();
        g.ops += 1;
        let slot = match phase {
            Phase::Forward => &mut g.forward,
            Phase::Backward => &mut g.backward,
            Phase::Recompute => &mut g.recompute,
        };
        *slot = slot.plus(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_plus_adds_fields() {
        let a = OpCost::new(1, 2, 3);
        let b = OpCost::new(10, 20, 30);
        let c = a.plus(&b);
        assert_eq!(c, OpCost::new(11, 22, 33));
        assert_eq!(c.bytes_moved(), 55);
    }

    #[test]
    fn phase_in_backward() {
        assert!(!Phase::Forward.in_backward());
        assert!(Phase::Backward.in_backward());
        assert!(Phase::Recompute.in_backward());
    }

    #[test]
    fn totals_accumulate_per_phase() {
        let t = CostTotals::new();
        t.on_op("a", &OpCost::new(5, 0, 0), Phase::Forward);
        t.on_op("b", &OpCost::new(7, 0, 0), Phase::Backward);
        t.on_op("c", &OpCost::new(11, 0, 0), Phase::Forward);
        assert_eq!(t.phase_cost(Phase::Forward).flops, 16);
        assert_eq!(t.phase_cost(Phase::Backward).flops, 7);
        assert_eq!(t.op_count(), 3);
    }
}
