//! # ssdtrain-autograd
//!
//! A define-by-run automatic-differentiation engine reproducing the PyTorch
//! semantics that SSDTrain (TBA) builds on:
//!
//! * **Saved-tensor pack/unpack hooks** — when an operator saves a tensor
//!   for backward, the registered [`SavedTensorHooks::pack`] decides what
//!   actually goes on the graph (the tensor itself, or an opaque
//!   identifier); [`SavedTensorHooks::unpack`] resolves it back at
//!   backward time. This is the exact extension point the SSDTrain tensor
//!   cache uses (paper Section 3.2, Figure 6).
//! * **Module hook pairs** — `forward_pre` / `forward_post` and
//!   `backward_pre` / `backward_post` fire as module scopes open and close
//!   in both directions (paper Algorithm 2).
//! * **Activation checkpointing** — [`checkpoint()`] runs a module without
//!   saving intermediate activations and recomputes them during backward
//!   with the original RNG state, giving the "layerwise full
//!   recomputation" strategy of the ROK curve (paper Section 4.3).
//!
//! ```
//! use ssdtrain_autograd::{Graph, Var, ops};
//! use ssdtrain_tensor::{Device, Tensor};
//!
//! let dev = Device::cpu();
//! let g = Graph::new(&dev, 1);
//! let w = Var::new("w", Tensor::from_vec(vec![2.0], [1, 1], &dev));
//! let x = g.constant(Tensor::from_vec(vec![3.0], [1, 1], &dev));
//! let y = ops::matmul(&g, &x, &g.leaf(&w));
//! let loss = ops::mean_all(&g, &y);
//! g.backward(&loss);
//! assert_eq!(w.grad().unwrap().to_vec(), vec![3.0]);
//! ```

pub mod checkpoint;
pub mod gradcheck;
pub mod graph;
pub mod hooks;
pub mod observer;
pub mod ops;
pub mod optim;
pub mod scope;
pub mod value;
pub mod var;

pub use checkpoint::checkpoint;
pub use gradcheck::{check_gradients, GradCheckReport};
pub use graph::Graph;
pub use hooks::{Packed, SavedTensorHooks};
pub use observer::{ExecObserver, OpCost, Phase};
pub use scope::{ModuleHooks, ScopeFrame, ScopeInfo};
pub use value::Value;
pub use var::Var;
