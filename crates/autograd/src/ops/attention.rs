//! Head reshaping and FlashAttention-style fused attention.
//!
//! The fused operator mirrors FlashAttention-2's memory behaviour (paper
//! Section 4.1 uses FlashAttention-2 in all runs): the `S×S` score and
//! probability matrices are *never saved* — only `q`, `k`, `v` go on the
//! graph, and backward recomputes the probabilities. This is what removes
//! the large intermediate tensors that Megatron's selective recomputation
//! targeted (paper Section 4.3).

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::OpCost;
use crate::ops::sym;
use crate::value::Value;
use ssdtrain_tensor::{Prng, Tensor};

// ---------------------------------------------------------------------
// Head permutation
// ---------------------------------------------------------------------

/// Numeric kernel: `[b, s, h]` → `[b*nh, s, h/nh]`.
fn permute_kernel(x: &Tensor, nh: usize) -> Tensor {
    let (b, s, h) = (x.dim(0), x.dim(1), x.dim(2));
    let hd = h / nh;
    if !x.has_data() {
        return Tensor::symbolic([b * nh, s, hd], x.device());
    }
    let v = x.to_vec();
    let mut out = vec![0.0f32; v.len()];
    for bi in 0..b {
        for si in 0..s {
            for ni in 0..nh {
                let src = (bi * s + si) * h + ni * hd;
                let dst = ((bi * nh + ni) * s + si) * hd;
                out[dst..dst + hd].copy_from_slice(&v[src..src + hd]);
            }
        }
    }
    Tensor::from_vec(out, [b * nh, s, hd], x.device())
}

/// Numeric kernel: `[b*nh, s, hd]` → `[b, s, nh*hd]` (inverse of
/// [`permute_kernel`]).
fn unpermute_kernel(x: &Tensor, nh: usize) -> Tensor {
    let (bnh, s, hd) = (x.dim(0), x.dim(1), x.dim(2));
    let b = bnh / nh;
    let h = nh * hd;
    if !x.has_data() {
        return Tensor::symbolic([b, s, h], x.device());
    }
    let v = x.to_vec();
    let mut out = vec![0.0f32; v.len()];
    for bi in 0..b {
        for si in 0..s {
            for ni in 0..nh {
                let src = ((bi * nh + ni) * s + si) * hd;
                let dst = (bi * s + si) * h + ni * hd;
                out[dst..dst + hd].copy_from_slice(&v[src..src + hd]);
            }
        }
    }
    Tensor::from_vec(out, [b, s, h], x.device())
}

struct PermuteHeadsOp {
    nh: usize,
}

impl Op for PermuteHeadsOp {
    fn name(&self) -> &'static str {
        "permute_heads"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("permute grad");
        let cost = OpCost::new(0, dy.bytes(), dy.bytes());
        BackwardResult {
            grads: vec![Some(unpermute_kernel(dy, self.nh))],
            cost,
        }
    }
}

struct UnpermuteHeadsOp {
    nh: usize,
}

impl Op for UnpermuteHeadsOp {
    fn name(&self) -> &'static str {
        "unpermute_heads"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("unpermute grad");
        let cost = OpCost::new(0, dy.bytes(), dy.bytes());
        BackwardResult {
            grads: vec![Some(permute_kernel(dy, self.nh))],
            cost,
        }
    }
}

/// Splits `[b, s, h]` into `nh` heads: `[b*nh, s, h/nh]`.
///
/// # Panics
/// Panics if `h` is not divisible by `nh` or the input is not 3-D.
pub fn permute_heads(g: &Graph, x: &Value, nh: usize) -> Value {
    assert_eq!(x.tensor().rank(), 3, "permute_heads expects [b, s, h]");
    assert_eq!(x.tensor().dim(2) % nh, 0, "hidden not divisible by heads");
    let out = permute_kernel(x.tensor(), nh);
    let bytes = x.tensor().bytes();
    g.record(
        Box::new(PermuteHeadsOp { nh }),
        &[x],
        vec![out],
        vec![],
        OpCost::new(0, bytes, bytes),
    )
    .remove(0)
}

/// Merges heads back: `[b*nh, s, hd]` → `[b, s, nh*hd]`.
///
/// # Panics
/// Panics if the batch dim is not divisible by `nh` or the input is not
/// 3-D.
pub fn unpermute_heads(g: &Graph, x: &Value, nh: usize) -> Value {
    assert_eq!(
        x.tensor().rank(),
        3,
        "unpermute_heads expects [b*nh, s, hd]"
    );
    assert_eq!(x.tensor().dim(0) % nh, 0, "batch not divisible by heads");
    let out = unpermute_kernel(x.tensor(), nh);
    let bytes = x.tensor().bytes();
    g.record(
        Box::new(UnpermuteHeadsOp { nh }),
        &[x],
        vec![out],
        vec![],
        OpCost::new(0, bytes, bytes),
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// transpose of dims 1 and 2 (for unfused attention scores)
// ---------------------------------------------------------------------

struct Transpose12Op;

impl Op for Transpose12Op {
    fn name(&self) -> &'static str {
        "transpose_12"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("transpose grad");
        let cost = OpCost::new(0, dy.bytes(), dy.bytes());
        BackwardResult {
            grads: vec![Some(transpose12_kernel(dy))],
            cost,
        }
    }
}

fn transpose12_kernel(x: &Tensor) -> Tensor {
    if !x.has_data() {
        let (a, b, c) = (x.dim(0), x.dim(1), x.dim(2));
        return Tensor::symbolic([a, c, b], x.device());
    }
    x.transpose(1, 2).contiguous()
}

/// Materialised transpose of dimensions 1 and 2 of a 3-D tensor (the
/// `k^T` of unfused attention).
///
/// # Panics
/// Panics if the input is not 3-D.
pub fn transpose_12(g: &Graph, x: &Value) -> Value {
    assert_eq!(x.tensor().rank(), 3, "transpose_12 expects a 3-D tensor");
    let out = transpose12_kernel(x.tensor());
    let bytes = x.tensor().bytes();
    g.record(
        Box::new(Transpose12Op),
        &[x],
        vec![out],
        vec![],
        OpCost::new(0, bytes, bytes),
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// Fused (flash) attention
// ---------------------------------------------------------------------

/// Reference attention math shared by forward and the recompute in
/// backward. Returns `(probs_after_dropout, context)`.
fn attention_reference(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    causal: bool,
    dropout_p: f32,
    rng: &mut Option<Prng>,
) -> (Tensor, Tensor) {
    let d = q.dim(2);
    let scale = 1.0 / (d as f32).sqrt();
    let scores = q.bmm(&k.transpose(1, 2)).scale(scale);
    let scores = if causal {
        scores.apply_causal_mask()
    } else {
        scores
    };
    let probs = scores.softmax_last();
    let probs = match (dropout_p > 0.0, rng.as_mut()) {
        (true, Some(r)) => probs.dropout(dropout_p, r).0,
        _ => probs,
    };
    let ctx = probs.bmm(v);
    (probs, ctx)
}

struct FlashAttentionOp {
    causal: bool,
    dropout_p: f32,
    /// RNG state snapshot taken before forward consumed randomness, so the
    /// backward recomputation reproduces the identical dropout mask —
    /// exactly how FlashAttention replays its philox state.
    rng: Option<Prng>,
}

impl Op for FlashAttentionOp {
    fn name(&self) -> &'static str {
        "flash_attention"
    }
    fn backward(&self, g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dctx = grads[0].as_ref().expect("attention grad");
        let (q, k, v) = (&saved[0], &saved[1], &saved[2]);
        let (t, s, d) = (q.dim(0), q.dim(1), q.dim(2));
        let flops = 10 * (t * s * s * d) as u64;
        let cost = OpCost::new(flops, 3 * q.bytes() + dctx.bytes(), 3 * q.bytes());
        if !q.has_data() || !k.has_data() || !v.has_data() || !dctx.has_data() {
            return BackwardResult {
                grads: vec![
                    Some(sym(q.shape().clone(), g.device())),
                    Some(sym(k.shape().clone(), g.device())),
                    Some(sym(v.shape().clone(), g.device())),
                ],
                cost,
            };
        }
        // Recompute probabilities (never materialised on the graph).
        let mut rng = self.rng.clone();
        let (probs, _ctx) = attention_reference(q, k, v, self.causal, self.dropout_p, &mut rng);
        let scale = 1.0 / (d as f32).sqrt();

        // dv = probs^T @ dctx
        let dv = probs.transpose(1, 2).bmm(dctx);
        // dprobs = dctx @ v^T
        let dprobs = dctx.bmm(&v.transpose(1, 2));
        // Softmax backward through the (possibly dropped-out) probs: for
        // inverted dropout, probs = mask .* softmax, so d softmax = dprobs
        // .* mask; replay the mask by regenerating it.
        let dprobs = if self.dropout_p > 0.0 {
            let mut r2 = self.rng.clone();
            let (pre_probs, _) = attention_reference(q, k, v, self.causal, 0.0, &mut None);
            // Regenerate the mask exactly as forward did: dropout consumed
            // RNG *after* softmax, starting from the snapshot.
            let (_, mask) = match r2.as_mut() {
                Some(r) => pre_probs.dropout(self.dropout_p, r),
                None => unreachable!("dropout_p > 0 requires an RNG snapshot"),
            };
            let dmasked = dprobs.mul(&mask).scale(1.0 / (1.0 - self.dropout_p));
            // Softmax jacobian uses the *pre-dropout* probabilities.
            softmax_backward(&pre_probs, &dmasked)
        } else {
            softmax_backward(&probs, &dprobs)
        };
        // Through the causal mask: masked entries have probs 0 and the
        // softmax backward already zeroes them.
        let dscores = dprobs.scale(scale);
        // dq = dscores @ k ; dk = dscores^T @ q
        let dq = dscores.bmm(k);
        let dk = dscores.transpose(1, 2).bmm(q);
        BackwardResult {
            grads: vec![Some(dq), Some(dk), Some(dv)],
            cost,
        }
    }
}

/// Row-wise softmax backward: `dx = y .* (dy - rowsum(dy .* y))`.
fn softmax_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    let h = *y.dims().last().expect("softmax rank");
    let yv = y.to_vec();
    let dyv = dy.to_vec();
    let mut dx = vec![0.0f32; yv.len()];
    for r in 0..yv.len() / h {
        let yrow = &yv[r * h..(r + 1) * h];
        let dyrow = &dyv[r * h..(r + 1) * h];
        let dot: f32 = yrow.iter().zip(dyrow).map(|(a, b)| a * b).sum();
        for j in 0..h {
            dx[r * h + j] = yrow[j] * (dyrow[j] - dot);
        }
    }
    Tensor::from_vec(dx, y.shape().clone(), y.device())
}

/// Fused scaled-dot-product attention over `[b*nh, s, hd]` tensors.
///
/// Saves only `q`, `k`, `v` — the quadratic score/probability tensors are
/// recomputed in backward, reproducing FlashAttention's activation
/// footprint.
///
/// # Panics
/// Panics if operand shapes disagree.
pub fn flash_attention(
    g: &Graph,
    q: &Value,
    k: &Value,
    v: &Value,
    causal: bool,
    dropout_p: f32,
) -> Value {
    assert_eq!(q.dims(), k.dims(), "q/k shape mismatch");
    assert_eq!(q.dims(), v.dims(), "q/v shape mismatch");
    let (t, s, d) = (q.tensor().dim(0), q.tensor().dim(1), q.tensor().dim(2));
    let numeric = q.tensor().has_data() && k.tensor().has_data() && v.tensor().has_data();
    let mut rng_snapshot = if dropout_p > 0.0 {
        Some(g.rng_snapshot())
    } else {
        None
    };
    let ctx = if numeric {
        let mut rng = rng_snapshot.clone();
        let (_probs, ctx) = attention_reference(
            q.tensor(),
            k.tensor(),
            v.tensor(),
            causal,
            dropout_p,
            &mut rng,
        );
        // Forward consumed randomness: advance the graph RNG to match.
        if let Some(r) = rng {
            g.set_rng(r);
        }
        ctx
    } else {
        // Shape-only path still burns the snapshot for determinism.
        rng_snapshot = rng_snapshot.take();
        sym([t, s, d], g.device())
    };
    let flops = 4 * (t * s * s * d) as u64;
    let cost = OpCost::new(flops, 3 * q.tensor().bytes(), ctx.bytes());
    g.record(
        Box::new(FlashAttentionOp {
            causal,
            dropout_p,
            rng: rng_snapshot,
        }),
        &[q, k, v],
        vec![ctx],
        vec![q.tensor().clone(), k.tensor().clone(), v.tensor().clone()],
        cost,
    )
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{self, mean_all};
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    fn dev() -> Device {
        Device::cpu()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn permute_then_unpermute_is_identity() {
        let d = dev();
        let g = Graph::new(&d, 1);
        let x = g.constant(Tensor::from_vec(
            (0..24).map(|i| i as f32).collect(),
            [2, 3, 4],
            &d,
        ));
        let p = permute_heads(&g, &x, 2);
        assert_eq!(p.dims(), &[4, 3, 2]);
        let u = unpermute_heads(&g, &p, 2);
        assert_eq!(u.tensor().to_vec(), x.tensor().to_vec());
    }

    #[test]
    fn permute_places_head_slices() {
        let d = dev();
        let g = Graph::new(&d, 1);
        // b=1, s=2, h=4, nh=2: token0 = [0,1,2,3], token1 = [4,5,6,7]
        let x = g.constant(Tensor::from_vec(
            (0..8).map(|i| i as f32).collect(),
            [1, 2, 4],
            &d,
        ));
        let p = permute_heads(&g, &x, 2);
        // head0: [[0,1],[4,5]]; head1: [[2,3],[6,7]]
        assert_eq!(p.tensor().to_vec(), vec![0., 1., 4., 5., 2., 3., 6., 7.]);
    }

    #[test]
    fn fused_attention_matches_unfused_ops() {
        let d = dev();
        let mut rng = ssdtrain_tensor::Prng::seed_from_u64(5);
        let q0 = Tensor::randn([2, 3, 4], 0.5, &mut rng, &d);
        let k0 = Tensor::randn([2, 3, 4], 0.5, &mut rng, &d);
        let v0 = Tensor::randn([2, 3, 4], 0.5, &mut rng, &d);

        // Fused path.
        let g1 = Graph::new(&d, 1);
        let fused = flash_attention(
            &g1,
            &g1.constant(q0.clone()),
            &g1.constant(k0.clone()),
            &g1.constant(v0.clone()),
            true,
            0.0,
        );

        // Unfused path.
        let g2 = Graph::new(&d, 1);
        let q = g2.constant(q0.clone());
        let k = g2.constant(k0.clone());
        let v = g2.constant(v0.clone());
        let scale = 1.0 / (4.0f32).sqrt();
        let scores = ops::scale(&g2, &ops::bmm(&g2, &q, &k_t(&g2, &k)), scale);
        let masked = ops::apply_causal_mask(&g2, &scores);
        let probs = ops::softmax_last(&g2, &masked);
        let unfused = ops::bmm(&g2, &probs, &v);

        assert_close(&fused.tensor().to_vec(), &unfused.tensor().to_vec(), 1e-5);
    }

    /// Transposes k's last two dims via a constant (test helper only).
    fn k_t(g: &Graph, k: &Value) -> Value {
        g.constant(k.tensor().transpose(1, 2).contiguous())
    }

    #[test]
    fn fused_attention_gradients_match_finite_difference() {
        let d = dev();
        let init: Vec<f32> = vec![
            0.3, -0.2, 0.5, 0.1, -0.4, 0.7, 0.2, -0.1, 0.6, -0.3, 0.4, 0.0,
        ];
        let shape = [1, 2, 2];
        let kv: Vec<f32> = (0..4).map(|i| 0.1 * i as f32).collect();
        let vv: Vec<f32> = (0..4).map(|i| 0.2 - 0.1 * i as f32).collect();

        let q = Var::new("q", Tensor::from_vec(init[..4].to_vec(), shape, &d));
        let g = Graph::new(&d, 1);
        let kc = g.constant(Tensor::from_vec(kv.clone(), shape, &d));
        let vc = g.constant(Tensor::from_vec(vv.clone(), shape, &d));
        let ctx = flash_attention(&g, &g.leaf(&q), &kc, &vc, true, 0.0);
        let loss = mean_all(&g, &ctx);
        g.backward(&loss);
        let analytic = q.grad().unwrap().to_vec();

        let eps = 1e-2f32;
        for e in 0..4 {
            let eval = |delta: f32| -> f32 {
                let mut qv = init[..4].to_vec();
                qv[e] += delta;
                let g2 = Graph::new(&d, 1);
                let ctx = flash_attention(
                    &g2,
                    &g2.constant(Tensor::from_vec(qv, shape, &d)),
                    &g2.constant(Tensor::from_vec(kv.clone(), shape, &d)),
                    &g2.constant(Tensor::from_vec(vv.clone(), shape, &d)),
                    true,
                    0.0,
                );
                mean_all(&g2, &ctx).tensor().item()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (fd - analytic[e]).abs() < 2e-3,
                "elem {e}: {fd} vs {}",
                analytic[e]
            );
        }
    }

    #[test]
    fn attention_dropout_is_replayed_identically_in_backward() {
        // With dropout active, running backward twice from the same saved
        // state must produce identical gradients (mask replay).
        let d = dev();
        let mk = || {
            let g = Graph::new(&d, 99);
            let q = Var::new("q", Tensor::ones([1, 4, 2], &d));
            let kc = g.constant(Tensor::ones([1, 4, 2], &d));
            let vc = g.constant(Tensor::ones([1, 4, 2], &d));
            let ctx = flash_attention(&g, &g.leaf(&q), &kc, &vc, false, 0.3);
            let loss = mean_all(&g, &ctx);
            g.backward(&loss);
            q.grad().unwrap().to_vec()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn fused_attention_saves_only_qkv() {
        use crate::hooks::{Packed, SavedTensorHooks};
        use parking_lot::Mutex;
        use std::sync::Arc;

        #[derive(Default)]
        struct CountBytes(Mutex<u64>);
        impl SavedTensorHooks for CountBytes {
            fn pack(&self, t: &Tensor) -> Packed {
                *self.0.lock() += t.bytes();
                Packed::Tensor(t.clone())
            }
            fn unpack(&self, p: &Packed) -> Tensor {
                match p {
                    Packed::Tensor(t) => t.clone(),
                    _ => unreachable!(),
                }
            }
        }

        let d = dev();
        let g = Graph::new(&d, 1);
        let counter = Arc::new(CountBytes::default());
        g.set_saved_tensor_hooks(counter.clone());
        let s = 8;
        let q = g.constant(Tensor::zeros([2, s, 4], &d));
        let k = g.constant(Tensor::zeros([2, s, 4], &d));
        let v = g.constant(Tensor::zeros([2, s, 4], &d));
        let _ctx = flash_attention(&g, &q, &k, &v, true, 0.0);
        // Saved bytes must be exactly 3 * |q| (no S×S probabilities).
        assert_eq!(*counter.0.lock(), 3 * q.tensor().bytes());
    }

    #[test]
    fn symbolic_attention_propagates_shapes() {
        let d = Device::symbolic();
        let g = Graph::new(&d, 1);
        let q = Var::new("q", Tensor::zeros([4, 16, 8], &d));
        let k = g.constant(Tensor::zeros([4, 16, 8], &d));
        let v = g.constant(Tensor::zeros([4, 16, 8], &d));
        let ctx = flash_attention(&g, &g.leaf(&q), &k, &v, true, 0.1);
        assert_eq!(ctx.dims(), &[4, 16, 8]);
        let loss = mean_all(&g, &ctx);
        g.backward(&loss);
        assert_eq!(q.grad().unwrap().dims(), &[4, 16, 8]);
    }
}
