//! Normalisation, activation, masking and dropout operators.

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::OpCost;
use crate::ops::{all_numeric, sym};
use crate::value::Value;
use ssdtrain_tensor::{Shape, Tensor};

// ---------------------------------------------------------------------
// gelu
// ---------------------------------------------------------------------

struct GeluOp;

impl Op for GeluOp {
    fn name(&self) -> &'static str {
        "gelu"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("gelu grad");
        let x = &saved[0];
        let dx = dy.mul(&x.gelu_grad());
        let cost = OpCost::new(10 * dy.numel() as u64, dy.bytes() + x.bytes(), dx.bytes());
        BackwardResult {
            grads: vec![Some(dx)],
            cost,
        }
    }
}

/// GELU activation; saves its input.
pub fn gelu(g: &Graph, x: &Value) -> Value {
    let out = x.tensor().gelu();
    let n = out.numel() as u64;
    let cost = OpCost::new(8 * n, x.tensor().bytes(), out.bytes());
    g.record(
        Box::new(GeluOp),
        &[x],
        vec![out],
        vec![x.tensor().clone()],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// dropout
// ---------------------------------------------------------------------

struct DropoutOp {
    /// `1 / (1 - p)` survivor rescale (the saved mask is 0/1).
    scale: f32,
}

impl Op for DropoutOp {
    fn name(&self) -> &'static str {
        "dropout"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("dropout grad");
        let mask = &saved[0];
        let dx = dy.mul(mask).scale(self.scale);
        let cost = OpCost::new(dy.numel() as u64, dy.bytes() + mask.bytes(), dx.bytes());
        BackwardResult {
            grads: vec![Some(dx)],
            cost,
        }
    }
}

/// Inverted dropout driven by the graph RNG; saves the mask (one of the
/// big activation tensors the paper's Figure 3 highlights with red
/// borders).
///
/// # Panics
/// Panics unless `0 <= p < 1`.
pub fn dropout(g: &Graph, x: &Value, p: f32) -> Value {
    let (out, mask) = g.with_rng(|rng| x.tensor().dropout(p, rng));
    let n = out.numel() as u64;
    let wd = out.dtype().byte_size();
    let cost = OpCost::new(n, n * wd, n * wd + mask.bytes());
    let scale = 1.0 / (1.0 - p);
    g.record(
        Box::new(DropoutOp { scale }),
        &[x],
        vec![out],
        vec![mask],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// layernorm
// ---------------------------------------------------------------------

struct LayernormOp;

impl Op for LayernormOp {
    fn name(&self) -> &'static str {
        "layernorm"
    }
    fn backward(&self, g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("layernorm grad");
        let x = &saved[0];
        let gamma = &saved[1];
        let mean = &saved[2];
        let rstd = &saved[3];
        let h = *x.dims().last().expect("layernorm rank");
        let rows = x.numel() / h;
        let n = x.numel() as u64;
        let cost = OpCost::new(12 * n, 3 * x.bytes(), x.bytes() + 2 * gamma.bytes());

        if !all_numeric(&[dy, x, gamma, mean, rstd]) {
            return BackwardResult {
                grads: vec![
                    Some(sym(x.shape().clone(), g.device())),
                    Some(sym([h], g.device())),
                    Some(sym([h], g.device())),
                ],
                cost,
            };
        }

        let xv = x.to_vec();
        let dyv = dy.to_vec();
        let gv = gamma.to_vec();
        let mv = mean.to_vec();
        let rv = rstd.to_vec();
        let mut dx = vec![0.0f32; xv.len()];
        let mut dgamma = vec![0.0f32; h];
        let mut dbeta = vec![0.0f32; h];
        for r in 0..rows {
            let (m, rs) = (mv[r], rv[r]);
            let xrow = &xv[r * h..(r + 1) * h];
            let dyrow = &dyv[r * h..(r + 1) * h];
            // xhat = (x - mean) * rstd ; dxhat = dy * gamma
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..h {
                let xhat = (xrow[j] - m) * rs;
                let dxhat = dyrow[j] * gv[j];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat;
                dgamma[j] += dyrow[j] * xhat;
                dbeta[j] += dyrow[j];
            }
            let inv_h = 1.0 / h as f32;
            for j in 0..h {
                let xhat = (xrow[j] - m) * rs;
                let dxhat = dyrow[j] * gv[j];
                dx[r * h + j] = rs * (dxhat - inv_h * sum_dxhat - xhat * inv_h * sum_dxhat_xhat);
            }
        }
        let dev = g.device().clone();
        BackwardResult {
            grads: vec![
                Some(Tensor::from_vec(dx, x.shape().clone(), &dev)),
                Some(Tensor::from_vec(dgamma, [h], &dev)),
                Some(Tensor::from_vec(dbeta, [h], &dev)),
            ],
            cost,
        }
    }
}

/// Layer normalisation over the last dimension with learnable scale and
/// shift. Saves the input, `gamma` and the per-row statistics.
pub fn layernorm(g: &Graph, x: &Value, gamma: &Value, beta: &Value, eps: f32) -> Value {
    let (y, mean, rstd) = x.tensor().layernorm(gamma.tensor(), beta.tensor(), eps);
    let n = y.numel() as u64;
    let cost = OpCost::new(8 * n, x.tensor().bytes(), y.bytes());
    g.record(
        Box::new(LayernormOp),
        &[x, gamma, beta],
        vec![y],
        vec![x.tensor().clone(), gamma.tensor().clone(), mean, rstd],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// softmax (last dim)
// ---------------------------------------------------------------------

struct SoftmaxOp;

impl Op for SoftmaxOp {
    fn name(&self) -> &'static str {
        "softmax"
    }
    fn backward(&self, g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("softmax grad");
        let y = &saved[0];
        let cost = OpCost::new(4 * y.numel() as u64, 2 * y.bytes(), y.bytes());
        if !all_numeric(&[dy, y]) {
            return BackwardResult {
                grads: vec![Some(sym(y.shape().clone(), g.device()))],
                cost,
            };
        }
        let h = *y.dims().last().expect("softmax rank");
        let yv = y.to_vec();
        let dyv = dy.to_vec();
        let mut dx = vec![0.0f32; yv.len()];
        for r in 0..yv.len() / h {
            let yrow = &yv[r * h..(r + 1) * h];
            let dyrow = &dyv[r * h..(r + 1) * h];
            let dot: f32 = yrow.iter().zip(dyrow).map(|(a, b)| a * b).sum();
            for j in 0..h {
                dx[r * h + j] = yrow[j] * (dyrow[j] - dot);
            }
        }
        BackwardResult {
            grads: vec![Some(Tensor::from_vec(dx, y.shape().clone(), g.device()))],
            cost,
        }
    }
}

/// Softmax over the last dimension; saves its *output* (the large `S×S`
/// probability tensor in unfused attention — the memory hog that both
/// FlashAttention and Megatron's selective recomputation target).
pub fn softmax_last(g: &Graph, x: &Value) -> Value {
    let y = x.tensor().softmax_last();
    let n = y.numel() as u64;
    let cost = OpCost::new(5 * n, x.tensor().bytes(), y.bytes());
    let saved = y.clone();
    g.record(Box::new(SoftmaxOp), &[x], vec![y], vec![saved], cost)
        .remove(0)
}

// ---------------------------------------------------------------------
// causal mask
// ---------------------------------------------------------------------

struct CausalMaskOp {
    shape: Shape,
}

impl Op for CausalMaskOp {
    fn name(&self) -> &'static str {
        "causal_mask"
    }
    fn backward(&self, g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("mask grad");
        let cost = OpCost::new(dy.numel() as u64, dy.bytes(), dy.bytes());
        if !dy.has_data() {
            return BackwardResult {
                grads: vec![Some(sym(self.shape.clone(), g.device()))],
                cost,
            };
        }
        // Gradient of masked (future) positions is zero.
        let (b, s1, s2) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        let mut v = dy.to_vec();
        for t in 0..b {
            for i in 0..s1 {
                for j in (i + 1)..s2 {
                    v[t * s1 * s2 + i * s2 + j] = 0.0;
                }
            }
        }
        BackwardResult {
            grads: vec![Some(Tensor::from_vec(v, self.shape.clone(), g.device()))],
            cost,
        }
    }
}

/// Applies a causal mask (`-inf` above the diagonal) to `[b, s, s]`
/// attention scores.
pub fn apply_causal_mask(g: &Graph, x: &Value) -> Value {
    let y = x.tensor().apply_causal_mask();
    let n = y.numel() as u64;
    let wd = y.dtype().byte_size();
    let cost = OpCost::new(n, n * wd, n * wd);
    g.record(
        Box::new(CausalMaskOp {
            shape: x.tensor().shape().clone(),
        }),
        &[x],
        vec![y],
        vec![],
        cost,
    )
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mean_all, sum_all};
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    fn setup() -> (Device, Graph) {
        let d = Device::cpu();
        (d.clone(), Graph::new(&d, 7))
    }

    /// Central-difference check of d(mean(f(x)))/dx_e for each element.
    fn finite_diff_check(
        d: &Device,
        init: Vec<f32>,
        shape: &[usize],
        run: impl Fn(&Graph, &Value) -> Value,
        tol: f32,
    ) {
        let x = Var::new("x", Tensor::from_vec(init.clone(), shape, d));
        let g = Graph::new(d, 7);
        let y = run(&g, &g.leaf(&x));
        let loss = mean_all(&g, &y);
        g.backward(&loss);
        let analytic = x.grad().unwrap().to_vec();
        let eps = 1e-2f32;
        for e in 0..init.len() {
            let eval = |delta: f32| -> f32 {
                let mut v = init.clone();
                v[e] += delta;
                let g2 = Graph::new(d, 7);
                let xv = g2.constant(Tensor::from_vec(v, shape, d));
                let y2 = run(&g2, &xv);
                mean_all(&g2, &y2).tensor().item()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (fd - analytic[e]).abs() < tol,
                "elem {e}: fd {fd} vs analytic {}",
                analytic[e]
            );
        }
    }

    #[test]
    fn gelu_backward_matches_fd() {
        let (d, _) = setup();
        finite_diff_check(&d, vec![-1.5, -0.3, 0.0, 0.4, 2.0, 0.9], &[6], gelu, 2e-3);
    }

    #[test]
    fn softmax_backward_matches_fd() {
        let (d, _) = setup();
        finite_diff_check(
            &d,
            vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.3],
            &[2, 3],
            softmax_last,
            2e-3,
        );
    }

    #[test]
    fn layernorm_backward_matches_fd() {
        let (d, _) = setup();
        let gamma = vec![1.2, 0.8, 1.0, 0.5];
        let beta = vec![0.1, -0.2, 0.0, 0.3];
        let (gm, bt) = (gamma.clone(), beta.clone());
        finite_diff_check(
            &d,
            vec![0.5, -1.0, 2.0, 0.2, 1.5, 0.7, -0.3, 0.0],
            &[2, 4],
            move |g, x| {
                let ga = g.constant(Tensor::from_vec(gm.clone(), [4], g.device()));
                let be = g.constant(Tensor::from_vec(bt.clone(), [4], g.device()));
                layernorm(g, x, &ga, &be, 1e-5)
            },
            5e-3,
        );
    }

    #[test]
    fn layernorm_param_grads_flow() {
        let (d, g) = setup();
        let x = g.constant(Tensor::from_vec(vec![1., 2., 3., 4.], [1, 4], &d));
        let gamma = Var::new("gamma", Tensor::ones([4], &d));
        let beta = Var::new("beta", Tensor::zeros([4], &d));
        let y = layernorm(&g, &x, &g.leaf(&gamma), &g.leaf(&beta), 1e-5);
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        // dbeta = column sums of dy = 1 everywhere.
        assert_eq!(beta.grad().unwrap().to_vec(), vec![1.0; 4]);
        assert!(gamma.grad().is_some());
    }

    #[test]
    fn dropout_backward_uses_the_same_mask() {
        let (d, g) = setup();
        let x = Var::new("x", Tensor::ones([64], &d));
        let y = dropout(&g, &g.leaf(&x), 0.5);
        let yv = y.tensor().to_vec();
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        let gx = x.grad().unwrap().to_vec();
        for (o, gr) in yv.iter().zip(&gx) {
            // grad == mask value == output value (since input was 1).
            assert_eq!(o, gr);
        }
    }

    #[test]
    fn causal_mask_blocks_gradient_to_future() {
        let (d, g) = setup();
        let x = Var::new("x", Tensor::zeros([1, 2, 2], &d));
        let m = apply_causal_mask(&g, &g.leaf(&x));
        let sm = softmax_last(&g, &m);
        let loss = sum_all(&g, &sm);
        g.backward(&loss);
        let gx = x.grad().unwrap().to_vec();
        // Position (0, 1) is masked; its gradient must be exactly zero.
        assert_eq!(gx[1], 0.0);
    }

    #[test]
    fn symbolic_layernorm_backward_keeps_shapes() {
        let d = Device::symbolic();
        let g = Graph::new(&d, 1);
        let x = Var::new("x", Tensor::zeros([2, 8], &d));
        let gamma = Var::new("gamma", Tensor::zeros([8], &d));
        let beta = Var::new("beta", Tensor::zeros([8], &d));
        let y = layernorm(&g, &g.leaf(&x), &g.leaf(&gamma), &g.leaf(&beta), 1e-5);
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(gamma.grad().unwrap().dims(), &[8]);
        assert_eq!(x.grad().unwrap().dims(), &[2, 8]);
    }
}
