//! Differentiable operators.
//!
//! Each function executes its kernel immediately (numerically or
//! symbolically), reports its cost to the graph observer, and records a
//! node whose saved tensors go through the pack hooks — the behaviour the
//! SSDTrain tensor cache intercepts.

mod attention;
mod basic;
mod embed;
mod linear;
mod norm;

pub use attention::{flash_attention, permute_heads, transpose_12, unpermute_heads};
pub use basic::{add, allreduce, mean_all, mul, reshape, scale, sum_all};
pub use embed::{cross_entropy_mean, embedding};
pub use linear::{add_bias, bmm, matmul};
pub use norm::{apply_causal_mask, dropout, gelu, layernorm, softmax_last};

use ssdtrain_tensor::{Device, Shape, Tensor};

/// Creates a shape-only tensor on `dev` (shared helper for symbolic
/// backward paths).
pub(crate) fn sym(shape: impl Into<Shape>, dev: &Device) -> Tensor {
    Tensor::symbolic(shape.into(), dev)
}

/// True when every listed tensor carries data.
pub(crate) fn all_numeric(ts: &[&Tensor]) -> bool {
    ts.iter().all(|t| t.has_data())
}
