//! Embedding lookup and cross-entropy loss.

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::OpCost;
use crate::ops::sym;
use crate::value::Value;
use ssdtrain_tensor::Tensor;

// ---------------------------------------------------------------------
// embedding
// ---------------------------------------------------------------------

struct EmbeddingOp {
    vocab: usize,
}

impl Op for EmbeddingOp {
    fn name(&self) -> &'static str {
        "embedding"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("embedding grad");
        let ids = &saved[0];
        let dtable = Tensor::embedding_grad(self.vocab, ids, dy);
        let cost = OpCost::new(dy.numel() as u64, dy.bytes(), dtable.bytes());
        BackwardResult {
            grads: vec![Some(dtable), None],
            cost,
        }
    }
}

/// Looks `ids` (integer tokens stored as `f32`) up in a `[vocab, hidden]`
/// table. Saves `ids` only (small), never the table.
pub fn embedding(g: &Graph, table: &Value, ids: &Value) -> Value {
    let vocab = table.tensor().dim(0);
    let out = table.tensor().embedding(ids.tensor());
    let cost = OpCost::new(0, out.bytes() + ids.tensor().bytes(), out.bytes());
    g.record(
        Box::new(EmbeddingOp { vocab }),
        &[table, ids],
        vec![out],
        vec![ids.tensor().clone()],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// cross-entropy (mean over rows)
// ---------------------------------------------------------------------

struct CrossEntropyOp;

impl Op for CrossEntropyOp {
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
    fn backward(&self, g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dloss = grads[0].as_ref().expect("ce grad");
        let probs = &saved[0];
        let targets = &saved[1];
        let (n, v) = probs.shape().as_2d();
        let cost = OpCost::new(2 * probs.numel() as u64, probs.bytes(), probs.bytes());
        if !probs.has_data() || !targets.has_data() || !dloss.has_data() {
            return BackwardResult {
                grads: vec![Some(sym(probs.shape().clone(), g.device())), None],
                cost,
            };
        }
        let scale = dloss.item() / n as f32;
        let mut dl = probs.to_vec();
        let tv = targets.to_vec();
        for (row, &ft) in tv.iter().enumerate() {
            dl[row * v + ft as usize] -= 1.0;
        }
        for x in dl.iter_mut() {
            *x *= scale;
        }
        BackwardResult {
            grads: vec![
                Some(Tensor::from_vec(dl, probs.shape().clone(), g.device())),
                None,
            ],
            cost,
        }
    }
}

/// Mean cross-entropy of logits `[..., vocab]` against integer targets.
/// Saves the softmax probabilities and the targets.
pub fn cross_entropy_mean(g: &Graph, logits: &Value, targets: &Value) -> Value {
    let (loss, probs) = logits.tensor().cross_entropy(targets.tensor());
    let n = logits.tensor().numel() as u64;
    let cost = OpCost::new(6 * n, logits.tensor().bytes(), logits.tensor().bytes());
    g.record(
        Box::new(CrossEntropyOp),
        &[logits, targets],
        vec![loss],
        vec![probs, targets.tensor().clone()],
        cost,
    )
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    #[test]
    fn embedding_grad_scatters_by_id() {
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let table = Var::new("emb", Tensor::zeros([4, 2], &d));
        let ids = g.constant(Tensor::from_vec(vec![1., 1., 3.], [3], &d));
        let e = embedding(&g, &g.leaf(&table), &ids);
        let loss = crate::ops::sum_all(&g, &e);
        g.backward(&loss);
        let gt = table.grad().unwrap().to_vec();
        assert_eq!(gt, vec![0., 0., 2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let logits = Var::new("logits", Tensor::zeros([2, 2], &d));
        let targets = g.constant(Tensor::from_vec(vec![0., 1.], [2], &d));
        let loss = cross_entropy_mean(&g, &g.leaf(&logits), &targets);
        assert!((loss.tensor().item() - (2.0f32).ln()).abs() < 1e-6);
        g.backward(&loss);
        let gl = logits.grad().unwrap().to_vec();
        // probs = 0.5; (0.5 - onehot)/n with n = 2 rows.
        assert_eq!(gl, vec![-0.25, 0.25, 0.25, -0.25]);
    }

    #[test]
    fn cross_entropy_loss_decreases_with_sgd_step() {
        let d = Device::cpu();
        let mut rng = ssdtrain_tensor::Prng::seed_from_u64(11);
        let w0 = Tensor::randn([4, 3], 0.5, &mut rng, &d);
        let w = Var::new("w", w0);
        let x = Tensor::randn([8, 4], 1.0, &mut rng, &d);
        let t: Vec<f32> = (0..8).map(|i| (i % 3) as f32).collect();

        let run = |wv: &Var| -> f32 {
            let g = Graph::new(&d, 2);
            let xv = g.constant(x.clone());
            let tv = g.constant(Tensor::from_vec(t.clone(), [8], &d));
            let logits = crate::ops::matmul(&g, &xv, &g.leaf(wv));
            let loss = cross_entropy_mean(&g, &logits, &tv);
            let l = loss.tensor().item();
            g.backward(&loss);
            l
        };

        let l0 = run(&w);
        // Manual SGD step.
        let grad = w.grad().unwrap().to_vec();
        let cur = w.tensor().to_vec();
        let next: Vec<f32> = cur.iter().zip(&grad).map(|(a, b)| a - 0.5 * b).collect();
        w.set_tensor(Tensor::from_vec(next, [4, 3], &d));
        w.zero_grad();
        let l1 = run(&w);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }
}
