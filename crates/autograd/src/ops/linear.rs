//! Matrix-multiply operators (the FLOP-dominant kernels).

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::OpCost;
use crate::value::Value;
use ssdtrain_tensor::Tensor;

fn w(t: &Tensor) -> u64 {
    t.dtype().byte_size()
}

// ---------------------------------------------------------------------
// matmul
// ---------------------------------------------------------------------

struct MatmulOp;

impl Op for MatmulOp {
    fn name(&self) -> &'static str {
        "matmul"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("matmul grad");
        let (x, wt) = (&saved[0], &saved[1]);
        let (m, k) = x.shape().as_2d();
        let n = wt.dim(1);
        // dx = dy @ w^T       [.., n] x [n, k]
        let dx = dy.matmul(&wt.t());
        // dw = x2d^T @ dy2d    [k, m] x [m, n]
        let x2d = x.contiguous().reshape([m, k]);
        let dy2d = dy.contiguous().reshape([m, n]);
        let dw = x2d.t().contiguous().reshape([k, m]).matmul(&dy2d);
        let flops = 4 * (m as u64) * (k as u64) * (n as u64);
        let bytes = (dy.bytes() + x.bytes() + wt.bytes()) * 2;
        BackwardResult {
            grads: vec![Some(dx), Some(dw)],
            cost: OpCost::new(flops, bytes, x.bytes() + wt.bytes()),
        }
    }
}

/// Matrix product `x @ w` with `x` of shape `[..., k]` and `w` of shape
/// `[k, n]` (a transposed-view weight is read through its strides).
/// Saves both operands for backward — the weight save is what the SSDTrain
/// parameter-exclusion logic must recognise (paper Section 3.3.1).
pub fn matmul(g: &Graph, x: &Value, weight: &Value) -> Value {
    let out = x.tensor().matmul(weight.tensor());
    let (m, k) = x.tensor().shape().as_2d();
    let n = weight.tensor().dim(1);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let cost = OpCost::new(
        flops,
        x.tensor().bytes() + weight.tensor().bytes(),
        out.bytes(),
    );
    g.record(
        Box::new(MatmulOp),
        &[x, weight],
        vec![out],
        vec![x.tensor().clone(), weight.tensor().clone()],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// add_bias
// ---------------------------------------------------------------------

struct AddBiasOp;

impl Op for AddBiasOp {
    fn name(&self) -> &'static str {
        "add_bias"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("add_bias grad");
        let db = dy.sum_leading();
        let cost = OpCost::new(dy.numel() as u64, dy.bytes(), dy.bytes() + db.bytes());
        BackwardResult {
            grads: vec![Some(dy.clone()), Some(db)],
            cost,
        }
    }
}

/// Broadcast-adds a 1-D bias over the last dimension.
pub fn add_bias(g: &Graph, x: &Value, bias: &Value) -> Value {
    let out = x.tensor().add_bias(bias.tensor());
    let n = out.numel() as u64;
    let cost = OpCost::new(n, n * w(&out) + bias.tensor().bytes(), n * w(&out));
    g.record(Box::new(AddBiasOp), &[x, bias], vec![out], vec![], cost)
        .remove(0)
}

// ---------------------------------------------------------------------
// bmm
// ---------------------------------------------------------------------

struct BmmOp;

impl Op for BmmOp {
    fn name(&self) -> &'static str {
        "bmm"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("bmm grad");
        let (a, b) = (&saved[0], &saved[1]);
        // da = dy @ b^T; db = a^T @ dy  (batched)
        let da = dy.bmm(&b.transpose(1, 2));
        let db = a.transpose(1, 2).bmm(dy);
        let (bt, m, k) = (a.dim(0), a.dim(1), a.dim(2));
        let n = b.dim(2);
        let flops = 4 * (bt * m * k * n) as u64;
        BackwardResult {
            grads: vec![Some(da), Some(db)],
            cost: OpCost::new(
                flops,
                2 * (dy.bytes() + a.bytes() + b.bytes()),
                a.bytes() + b.bytes(),
            ),
        }
    }
}

/// Batched matrix product of `[b, m, k]` and `[b, k, n]`; saves both
/// operands.
pub fn bmm(g: &Graph, a: &Value, b: &Value) -> Value {
    let out = a.tensor().bmm(b.tensor());
    let (bt, m, k) = (a.tensor().dim(0), a.tensor().dim(1), a.tensor().dim(2));
    let n = b.tensor().dim(2);
    let flops = 2 * (bt * m * k * n) as u64;
    let cost = OpCost::new(flops, a.tensor().bytes() + b.tensor().bytes(), out.bytes());
    g.record(
        Box::new(BmmOp),
        &[a, b],
        vec![out],
        vec![a.tensor().clone(), b.tensor().clone()],
        cost,
    )
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mean_all, sum_all};
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    fn setup() -> (Device, Graph) {
        let d = Device::cpu();
        (d.clone(), Graph::new(&d, 1))
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_gradients_match_analytic() {
        let (d, g) = setup();
        // loss = sum(x @ w), dL/dw[k,n] = sum_m x[m,k]; dL/dx[m,k] = sum_n w[k,n]
        let x = Var::new("x", Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &d));
        let wv = Var::new("w", Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2], &d));
        let y = matmul(&g, &g.leaf(&x), &g.leaf(&wv));
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(wv.grad().unwrap().to_vec(), vec![4., 4., 6., 6.]);
        assert_eq!(x.grad().unwrap().to_vec(), vec![11., 15., 11., 15.]);
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let (d, g) = setup();
        let xv = vec![0.3, -0.7, 1.2, 0.5, -0.1, 0.9];
        let wv = vec![0.2, -0.4, 0.6, 0.1, -0.8, 0.3];
        let x = Var::new("x", Tensor::from_vec(xv.clone(), [2, 3], &d));
        let wt = Var::new("w", Tensor::from_vec(wv.clone(), [3, 2], &d));
        let y = matmul(&g, &g.leaf(&x), &g.leaf(&wt));
        let loss = mean_all(&g, &y);
        g.backward(&loss);
        let analytic = wt.grad().unwrap().to_vec();

        // Finite differences on each weight element.
        let eps = 1e-3f32;
        let f = |wv: &Vec<f32>| -> f32 {
            let mut acc = 0.0;
            for i in 0..2 {
                for j in 0..2 {
                    for k in 0..3 {
                        acc += xv[i * 3 + k] * wv[k * 2 + j];
                    }
                }
            }
            acc / 4.0
        };
        for e in 0..6 {
            let mut plus = wv.clone();
            plus[e] += eps;
            let mut minus = wv.clone();
            minus[e] -= eps;
            let fd = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (fd - analytic[e]).abs() < 1e-3,
                "elem {e}: {fd} vs {}",
                analytic[e]
            );
        }
    }

    #[test]
    fn add_bias_grad_sums_rows() {
        let (d, g) = setup();
        let x = Var::new("x", Tensor::zeros([3, 2], &d));
        let b = Var::new("b", Tensor::zeros([2], &d));
        let y = add_bias(&g, &g.leaf(&x), &g.leaf(&b));
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(b.grad().unwrap().to_vec(), vec![3.0, 3.0]);
        assert_eq!(x.grad().unwrap().to_vec(), vec![1.0; 6]);
    }

    #[test]
    fn bmm_gradients_match_matmul_on_single_batch() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![1., 2., 3., 4.], [1, 2, 2], &d));
        let b = Var::new("b", Tensor::from_vec(vec![5., 6., 7., 8.], [1, 2, 2], &d));
        let y = bmm(&g, &g.leaf(&a), &g.leaf(&b));
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_close(&b.grad().unwrap().to_vec(), &[4., 4., 6., 6.], 1e-6);
        assert_close(&a.grad().unwrap().to_vec(), &[11., 15., 11., 15.], 1e-6);
    }

    #[test]
    fn symbolic_matmul_propagates_shapes_through_backward() {
        let dsym = Device::symbolic();
        let g = Graph::new(&dsym, 1);
        let x = Var::new("x", Tensor::zeros([4, 8], &dsym));
        let wv = Var::new("w", Tensor::zeros([8, 2], &dsym));
        let y = matmul(&g, &g.leaf(&x), &g.leaf(&wv));
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        let gw = wv.grad().unwrap();
        assert_eq!(gw.dims(), &[8, 2]);
        assert!(!gw.has_data());
    }
}
