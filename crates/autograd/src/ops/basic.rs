//! Elementwise, reduction, view and communication operators.

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::OpCost;
use crate::value::Value;
use ssdtrain_tensor::{Shape, Tensor};

fn w(t: &Tensor) -> u64 {
    t.dtype().byte_size()
}

// ---------------------------------------------------------------------
// add
// ---------------------------------------------------------------------

struct AddOp;

impl Op for AddOp {
    fn name(&self) -> &'static str {
        "add"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("add grad");
        let cost = OpCost::new(0, dy.bytes(), 2 * dy.bytes());
        BackwardResult {
            grads: vec![Some(dy.clone()), Some(dy.clone())],
            cost,
        }
    }
}

/// Elementwise sum `a + b`.
pub fn add(g: &Graph, a: &Value, b: &Value) -> Value {
    let out = a.tensor().add(b.tensor());
    let n = out.numel() as u64;
    let cost = OpCost::new(n, 2 * n * w(&out), n * w(&out));
    g.record(Box::new(AddOp), &[a, b], vec![out], vec![], cost)
        .remove(0)
}

// ---------------------------------------------------------------------
// mul
// ---------------------------------------------------------------------

struct MulOp;

impl Op for MulOp {
    fn name(&self) -> &'static str {
        "mul"
    }
    fn backward(&self, _g: &Graph, saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("mul grad");
        let (a, b) = (&saved[0], &saved[1]);
        let cost = OpCost::new(2 * dy.numel() as u64, 3 * dy.bytes(), 2 * dy.bytes());
        BackwardResult {
            grads: vec![Some(dy.mul(b)), Some(dy.mul(a))],
            cost,
        }
    }
}

/// Elementwise product `a * b`; saves both inputs for backward.
pub fn mul(g: &Graph, a: &Value, b: &Value) -> Value {
    let out = a.tensor().mul(b.tensor());
    let n = out.numel() as u64;
    let cost = OpCost::new(n, 2 * n * w(&out), n * w(&out));
    g.record(
        Box::new(MulOp),
        &[a, b],
        vec![out],
        vec![a.tensor().clone(), b.tensor().clone()],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// scale
// ---------------------------------------------------------------------

struct ScaleOp {
    s: f32,
}

impl Op for ScaleOp {
    fn name(&self) -> &'static str {
        "scale"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("scale grad");
        let cost = OpCost::new(dy.numel() as u64, dy.bytes(), dy.bytes());
        BackwardResult {
            grads: vec![Some(dy.scale(self.s))],
            cost,
        }
    }
}

/// Multiplies by a compile-time constant scalar.
pub fn scale(g: &Graph, x: &Value, s: f32) -> Value {
    let out = x.tensor().scale(s);
    let n = out.numel() as u64;
    let cost = OpCost::new(n, n * w(&out), n * w(&out));
    g.record(Box::new(ScaleOp { s }), &[x], vec![out], vec![], cost)
        .remove(0)
}

// ---------------------------------------------------------------------
// sum_all / mean_all
// ---------------------------------------------------------------------

struct SumAllOp {
    in_shape: Shape,
    scale: f32,
}

impl Op for SumAllOp {
    fn name(&self) -> &'static str {
        "sum_all"
    }
    fn backward(&self, g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("sum grad");
        let n = self.in_shape.numel() as u64;
        let dev = g.device().clone();
        let grad = if dy.has_data() {
            Tensor::full(self.in_shape.clone(), dy.item() * self.scale, &dev)
        } else {
            Tensor::symbolic(self.in_shape.clone(), &dev)
        };
        let cost = OpCost::new(n, 0, n * grad.dtype().byte_size());
        BackwardResult {
            grads: vec![Some(grad)],
            cost,
        }
    }
}

/// Sum of all elements to a scalar.
pub fn sum_all(g: &Graph, x: &Value) -> Value {
    let out = x.tensor().sum_all();
    let n = x.tensor().numel() as u64;
    let cost = OpCost::new(n, n * w(x.tensor()), 4);
    g.record(
        Box::new(SumAllOp {
            in_shape: x.tensor().shape().clone(),
            scale: 1.0,
        }),
        &[x],
        vec![out],
        vec![],
        cost,
    )
    .remove(0)
}

/// Mean of all elements to a scalar.
pub fn mean_all(g: &Graph, x: &Value) -> Value {
    let out = x.tensor().mean_all();
    let n = x.tensor().numel() as u64;
    let cost = OpCost::new(n, n * w(x.tensor()), 4);
    g.record(
        Box::new(SumAllOp {
            in_shape: x.tensor().shape().clone(),
            scale: 1.0 / n as f32,
        }),
        &[x],
        vec![out],
        vec![],
        cost,
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// reshape (view)
// ---------------------------------------------------------------------

struct ReshapeOp {
    in_shape: Shape,
}

impl Op for ReshapeOp {
    fn name(&self) -> &'static str {
        "reshape"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("reshape grad");
        BackwardResult {
            grads: vec![Some(dy.contiguous().reshape(self.in_shape.clone()))],
            cost: OpCost::default(),
        }
    }
}

/// Shape-changing view (zero-cost; storage is shared).
///
/// # Panics
/// Panics if the input view is not contiguous.
pub fn reshape(g: &Graph, x: &Value, shape: impl Into<Shape>) -> Value {
    let shape = shape.into();
    let out = x.tensor().reshape(shape);
    g.record(
        Box::new(ReshapeOp {
            in_shape: x.tensor().shape().clone(),
        }),
        &[x],
        vec![out],
        vec![],
        OpCost::default(),
    )
    .remove(0)
}

// ---------------------------------------------------------------------
// allreduce (simulated collective)
// ---------------------------------------------------------------------

struct AllreduceOp {
    comm_bytes: u64,
}

impl Op for AllreduceOp {
    fn name(&self) -> &'static str {
        "allreduce"
    }
    fn backward(&self, _g: &Graph, _saved: &[Tensor], grads: &[Option<Tensor>]) -> BackwardResult {
        let dy = grads[0].as_ref().expect("allreduce grad");
        // The backward of an allreduce is an allreduce of the gradients,
        // with the same communication volume.
        BackwardResult {
            grads: vec![Some(dy.clone())],
            cost: OpCost::new(0, self.comm_bytes, self.comm_bytes),
        }
    }
}

/// Identity operator carrying the communication volume of a
/// tensor-parallel allreduce; the step scheduler recognises the
/// `"allreduce"` kernel name and times it on the interconnect instead of
/// the GPU roofline.
pub fn allreduce(g: &Graph, x: &Value, comm_bytes: u64) -> Value {
    let out = x.tensor().contiguous();
    g.record(
        Box::new(AllreduceOp { comm_bytes }),
        &[x],
        vec![out],
        vec![],
        OpCost::new(0, comm_bytes, comm_bytes),
    )
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    fn setup() -> (Device, Graph) {
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        (d, g)
    }

    #[test]
    fn add_grads_are_identity() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![1.0, 2.0], [2], &d));
        let b = Var::new("b", Tensor::from_vec(vec![3.0, 4.0], [2], &d));
        let s = add(&g, &g.leaf(&a), &g.leaf(&b));
        let loss = sum_all(&g, &s);
        g.backward(&loss);
        assert_eq!(a.grad().unwrap().to_vec(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap().to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [4], &d));
        let m = mean_all(&g, &g.leaf(&a));
        assert_eq!(m.tensor().item(), 5.0);
        g.backward(&m);
        assert_eq!(a.grad().unwrap().to_vec(), vec![0.25; 4]);
    }

    #[test]
    fn reshape_backward_restores_shape() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &d));
        let r = reshape(&g, &g.leaf(&a), [4]);
        assert_eq!(r.dims(), &[4]);
        let loss = sum_all(&g, &r);
        g.backward(&loss);
        assert_eq!(a.grad().unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn allreduce_is_identity_with_comm_cost() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![1.0], [1], &d));
        let y = allreduce(&g, &g.leaf(&a), 1 << 20);
        assert_eq!(y.tensor().to_vec(), vec![1.0]);
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(a.grad().unwrap().to_vec(), vec![1.0]);
    }

    #[test]
    fn scale_chain_multiplies_gradient() {
        let (d, g) = setup();
        let a = Var::new("a", Tensor::from_vec(vec![1.0], [1], &d));
        let y = scale(&g, &scale(&g, &g.leaf(&a), 3.0), 4.0);
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert_eq!(a.grad().unwrap().to_vec(), vec![12.0]);
    }
}
