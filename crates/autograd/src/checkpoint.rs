//! Activation checkpointing (layerwise full recomputation).
//!
//! [`checkpoint`] runs a segment with gradient recording disabled, saving
//! only the segment *inputs* (which still go through the pack hooks, so
//! they remain offloadable). During backward the segment is re-executed —
//! with the original RNG state, so dropout masks replay exactly — on a
//! child graph whose phase is [`Phase::Recompute`]; the SSDTrain cache
//! keeps recomputed activations in GPU memory instead of offloading them
//! (paper Algorithm 2 line 15). This is the "recompute" corner of the
//! recompute-offload-keep (ROK) design space.

use crate::graph::{BackwardResult, Graph, Op};
use crate::observer::{OpCost, Phase};
use crate::value::Value;
use ssdtrain_tensor::{Prng, Tensor};
use std::rc::Rc;

/// The function a checkpointed segment re-runs: it receives the (child)
/// graph and the segment inputs and returns the segment outputs.
pub type SegmentFn = Rc<dyn Fn(&Graph, &[Value]) -> Vec<Value>>;

struct CheckpointOp {
    segment: SegmentFn,
    rng_at_entry: Prng,
    n_inputs: usize,
}

impl Op for CheckpointOp {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn backward(
        &self,
        graph: &Graph,
        saved: &[Tensor],
        grads_out: &[Option<Tensor>],
    ) -> BackwardResult {
        // Recompute the segment on a child graph with the entry RNG state.
        let child = graph.recompute_child();
        child.set_rng(self.rng_at_entry.clone());
        let inputs: Vec<Value> = saved
            .iter()
            .enumerate()
            .map(|(i, t)| child.external(i, t.clone()))
            .collect();
        // Recomputed intermediates are activations (they occupy the same
        // memory the originals would have), not backward workspace.
        let outputs = child
            .device()
            .clone()
            .with_class(ssdtrain_tensor::MemClass::Activation, || {
                (self.segment)(&child, &inputs)
            });
        assert_eq!(
            outputs.len(),
            grads_out.len(),
            "checkpoint segment output arity changed between forward and recompute"
        );
        // Backprop through the recomputed subgraph; parameter grads
        // accumulate into their Vars directly.
        child.set_phase(Phase::Backward);
        let pairs: Vec<(Value, Tensor)> = outputs
            .into_iter()
            .zip(grads_out.iter())
            .filter_map(|(o, g)| g.clone().map(|g| (o, g)))
            .collect();
        let (outs, gs): (Vec<Value>, Vec<Tensor>) = pairs.into_iter().unzip();
        let input_grads = child.backward_from(&outs, gs, self.n_inputs);
        // Restore the surrounding phase for the parent's remaining work.
        child.set_phase(Phase::Backward);
        BackwardResult {
            grads: input_grads,
            cost: OpCost::default(), // recompute ops reported individually
        }
    }
}

/// Runs `segment` without saving its intermediate activations; they are
/// recomputed during backward.
///
/// The segment's inputs are saved (through the pack hooks). The returned
/// values carry gradients back to `inputs`.
///
/// ```
/// use ssdtrain_autograd::{checkpoint, Graph, Var, ops};
/// use ssdtrain_tensor::{Device, Tensor};
/// use std::rc::Rc;
///
/// let dev = Device::cpu();
/// let g = Graph::new(&dev, 1);
/// let w = Var::new("w", Tensor::from_vec(vec![3.0], [1, 1], &dev));
/// let x = g.constant(Tensor::from_vec(vec![2.0], [1, 1], &dev));
/// let w2 = w.clone();
/// let y = checkpoint(
///     &g,
///     Rc::new(move |cg: &Graph, ins: &[ssdtrain_autograd::Value]| {
///         vec![ops::matmul(cg, &ins[0], &cg.leaf(&w2))]
///     }),
///     &[x],
/// );
/// let loss = ops::mean_all(&g, &y[0]);
/// g.backward(&loss);
/// assert_eq!(w.grad().unwrap().to_vec(), vec![2.0]);
/// ```
pub fn checkpoint(g: &Graph, segment: SegmentFn, inputs: &[Value]) -> Vec<Value> {
    let rng_at_entry = g.rng_snapshot();
    // Run the segment without recording; outputs become plain tensors.
    let out_tensors: Vec<Tensor> = g.with_grad_disabled(|| {
        let vals = segment(g, inputs);
        vals.into_iter().map(|v| v.tensor().clone()).collect()
    });
    let op = CheckpointOp {
        segment,
        rng_at_entry,
        n_inputs: inputs.len(),
    };
    let input_refs: Vec<&Value> = inputs.iter().collect();
    let to_save: Vec<Tensor> = inputs.iter().map(|v| v.tensor().clone()).collect();
    g.record(
        Box::new(op),
        &input_refs,
        out_tensors,
        to_save,
        OpCost::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::var::Var;
    use ssdtrain_tensor::Device;

    #[test]
    fn checkpoint_matches_plain_execution() {
        let d = Device::cpu();
        let mut rng = ssdtrain_tensor::Prng::seed_from_u64(3);
        let w0 = Tensor::randn([4, 4], 0.5, &mut rng, &d);
        let x0 = Tensor::randn([2, 4], 1.0, &mut rng, &d);

        // Plain run.
        let w_plain = Var::new("w", w0.deep_clone_as(ssdtrain_tensor::MemClass::Parameter));
        let g1 = Graph::new(&d, 42);
        let x1 = g1.constant(x0.clone());
        let y1 = ops::gelu(&g1, &ops::matmul(&g1, &x1, &g1.leaf(&w_plain)));
        let l1 = ops::mean_all(&g1, &y1);
        g1.backward(&l1);

        // Checkpointed run.
        let w_ck = Var::new("w", w0.deep_clone_as(ssdtrain_tensor::MemClass::Parameter));
        let g2 = Graph::new(&d, 42);
        let x2 = g2.constant(x0.clone());
        let w_inner = w_ck.clone();
        let y2 = checkpoint(
            &g2,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                vec![ops::gelu(cg, &ops::matmul(cg, &ins[0], &cg.leaf(&w_inner)))]
            }),
            &[x2],
        );
        let l2 = ops::mean_all(&g2, &y2[0]);
        g2.backward(&l2);

        assert_eq!(l1.tensor().item(), l2.tensor().item());
        assert_eq!(
            w_plain.grad().unwrap().to_vec(),
            w_ck.grad().unwrap().to_vec(),
            "checkpointing must not change gradients"
        );
    }

    #[test]
    fn checkpoint_replays_dropout_mask() {
        let d = Device::cpu();
        // Loss must be differentiable through dropout; identical losses &
        // grads across two identical runs prove mask replay.
        let run = || {
            let w = Var::new("w", Tensor::ones([8, 8], &d));
            let g = Graph::new(&d, 77);
            let x = g.constant(Tensor::ones([2, 8], &d));
            let w2 = w.clone();
            let y = checkpoint(
                &g,
                Rc::new(move |cg: &Graph, ins: &[Value]| {
                    let h = ops::matmul(cg, &ins[0], &cg.leaf(&w2));
                    vec![ops::dropout(cg, &h, 0.5)]
                }),
                &[x],
            );
            let l = ops::mean_all(&g, &y[0]);
            g.backward(&l);
            (l.tensor().item(), w.grad().unwrap().to_vec())
        };
        let (l1, g1) = run();
        let (l2, g2) = run();
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn checkpoint_grad_equals_plain_with_dropout() {
        // Dropout inside a checkpoint: gradients must equal the
        // non-checkpointed run because the RNG state is restored.
        let d = Device::cpu();
        let w0 = Tensor::ones([4, 4], &d);

        let w_a = Var::new("w", w0.deep_clone_as(ssdtrain_tensor::MemClass::Parameter));
        let ga = Graph::new(&d, 123);
        let xa = ga.constant(Tensor::ones([2, 4], &d));
        let ha = ops::matmul(&ga, &xa, &ga.leaf(&w_a));
        let ya = ops::dropout(&ga, &ha, 0.5);
        let la = ops::mean_all(&ga, &ya);
        ga.backward(&la);

        let w_b = Var::new("w", w0.deep_clone_as(ssdtrain_tensor::MemClass::Parameter));
        let gb = Graph::new(&d, 123);
        let xb = gb.constant(Tensor::ones([2, 4], &d));
        let w_inner = w_b.clone();
        let yb = checkpoint(
            &gb,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                let h = ops::matmul(cg, &ins[0], &cg.leaf(&w_inner));
                vec![ops::dropout(cg, &h, 0.5)]
            }),
            &[xb],
        );
        let lb = ops::mean_all(&gb, &yb[0]);
        gb.backward(&lb);

        assert_eq!(la.tensor().item(), lb.tensor().item());
        assert_eq!(w_a.grad().unwrap().to_vec(), w_b.grad().unwrap().to_vec());
    }

    #[test]
    fn chained_checkpoints_propagate_input_grads() {
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let w1 = Var::new("w1", Tensor::from_vec(vec![2.0], [1, 1], &d));
        let w2 = Var::new("w2", Tensor::from_vec(vec![5.0], [1, 1], &d));
        let x = g.constant(Tensor::from_vec(vec![3.0], [1, 1], &d));
        let w1c = w1.clone();
        let y1 = checkpoint(
            &g,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                vec![ops::matmul(cg, &ins[0], &cg.leaf(&w1c))]
            }),
            &[x],
        );
        let w2c = w2.clone();
        let y2 = checkpoint(
            &g,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                vec![ops::matmul(cg, &ins[0], &cg.leaf(&w2c))]
            }),
            &[y1[0].clone()],
        );
        let loss = ops::sum_all(&g, &y2[0]);
        g.backward(&loss);
        // loss = x*w1*w2; dw1 = x*w2 = 15; dw2 = x*w1 = 6.
        assert_eq!(w1.grad().unwrap().to_vec(), vec![15.0]);
        assert_eq!(w2.grad().unwrap().to_vec(), vec![6.0]);
    }

    #[test]
    fn multi_output_checkpoint_routes_each_gradient() {
        // A segment returning two outputs: gradients from both must flow
        // back through the single checkpoint node.
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let w = Var::new("w", Tensor::from_vec(vec![2.0], [1, 1], &d));
        let x = g.constant(Tensor::from_vec(vec![3.0], [1, 1], &d));
        let wc = w.clone();
        let outs = checkpoint(
            &g,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                let a = ops::matmul(cg, &ins[0], &cg.leaf(&wc));
                let b = ops::scale(cg, &ins[0], 10.0);
                vec![a, b]
            }),
            &[x],
        );
        assert_eq!(outs.len(), 2);
        // loss = sum(a) + sum(b) = x*w + 10x -> dw = x = 3.
        let s = ops::add(&g, &outs[0], &outs[1]);
        let loss = ops::sum_all(&g, &s);
        g.backward(&loss);
        assert_eq!(w.grad().unwrap().to_vec(), vec![3.0]);
    }

    #[test]
    fn checkpoint_input_gradients_accumulate_across_outputs() {
        // Both outputs depend on the same external input; its gradient
        // must be the sum of both paths.
        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let x = Var::new("x", Tensor::from_vec(vec![4.0], [1], &d));
        let lx = g.leaf(&x);
        let outs = checkpoint(
            &g,
            Rc::new(|cg: &Graph, ins: &[Value]| {
                vec![ops::scale(cg, &ins[0], 2.0), ops::scale(cg, &ins[0], 5.0)]
            }),
            &[lx],
        );
        let s = ops::add(&g, &outs[0], &outs[1]);
        let loss = ops::sum_all(&g, &s);
        g.backward(&loss);
        assert_eq!(x.grad().unwrap().to_vec(), vec![7.0]);
    }

    #[test]
    fn recompute_phase_is_visible_to_hooks() {
        use crate::scope::ModuleHooks;
        use parking_lot::Mutex;
        use std::sync::Arc;

        #[derive(Default)]
        struct Phases(Mutex<Vec<Phase>>);
        impl ModuleHooks for Phases {
            fn phase_changed(&self, p: Phase) {
                self.0.lock().push(p);
            }
        }

        let d = Device::cpu();
        let g = Graph::new(&d, 1);
        let log = Arc::new(Phases::default());
        g.add_module_hooks(log.clone());
        let w = Var::new("w", Tensor::from_vec(vec![2.0], [1, 1], &d));
        let x = g.constant(Tensor::from_vec(vec![3.0], [1, 1], &d));
        let wc = w.clone();
        let y = checkpoint(
            &g,
            Rc::new(move |cg: &Graph, ins: &[Value]| vec![ops::matmul(cg, &ins[0], &cg.leaf(&wc))]),
            &[x],
        );
        let loss = ops::sum_all(&g, &y[0]);
        g.backward(&loss);
        let phases = log.0.lock().clone();
        assert!(phases.contains(&Phase::Recompute), "phases: {phases:?}");
    }
}
