//! Property-based tests of the numeric kernels: algebraic identities
//! that must hold for any input, independent of shapes.

use proptest::prelude::*;
use ssdtrain_tensor::{Device, Prng, Tensor};

fn dev() -> Device {
    Device::cpu()
}

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

fn rand_tensor(dims: &[usize], seed: u64, scale: f32) -> Tensor {
    let mut rng = Prng::seed_from_u64(seed);
    Tensor::randn(dims, scale, &mut rng, &dev())
}

proptest! {
    #[test]
    fn matmul_identity_is_identity(
        m in 1usize..6,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = rand_tensor(&[m, k], seed, 1.0);
        let y = a.matmul(&Tensor::eye(k, &dev()));
        prop_assert!(close(&y.to_vec(), &a.to_vec(), 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = rand_tensor(&[m, k], seed, 0.5);
        let w1 = rand_tensor(&[k, n], seed + 1, 0.5);
        let w2 = rand_tensor(&[k, n], seed + 2, 0.5);
        let lhs = a.matmul(&w1.add(&w2));
        let rhs = a.matmul(&w1).add(&a.matmul(&w2));
        prop_assert!(close(&lhs.to_vec(), &rhs.to_vec(), 1e-4));
    }

    #[test]
    fn transpose_matmul_agrees_with_materialised(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Reading a transposed weight through its strides must equal
        // multiplying by the materialised transpose.
        let a = rand_tensor(&[m, k], seed, 0.5);
        let w = rand_tensor(&[n, k], seed + 3, 0.5);
        let via_view = a.matmul(&w.t());
        let via_copy = a.matmul(&w.t().contiguous());
        prop_assert!(close(&via_view.to_vec(), &via_copy.to_vec(), 1e-5));
    }

    #[test]
    fn softmax_is_shift_invariant(
        rows in 1usize..4,
        cols in 1usize..6,
        shift in -50.0f32..50.0,
        seed in 0u64..1000,
    ) {
        let x = rand_tensor(&[rows, cols], seed, 2.0);
        let shifted = x.scale(1.0).add(&Tensor::full([rows, cols], shift, &dev()));
        let a = x.softmax_last().to_vec();
        let b = shifted.softmax_last().to_vec();
        prop_assert!(close(&a, &b, 1e-4), "{a:?} vs {b:?}");
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..4,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let y = rand_tensor(&[rows, cols], seed, 3.0).softmax_last().to_vec();
        for r in 0..rows {
            let row = &y[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn layernorm_is_scale_invariant(
        rows in 1usize..4,
        cols in 2usize..8,
        factor in 0.5f32..4.0,
        seed in 0u64..1000,
    ) {
        // LayerNorm(x) == LayerNorm(c·x) for positive c (mean and std
        // both scale by c) — up to the eps regulariser, so rows whose
        // variance is within a few orders of magnitude of eps are
        // excluded from the property's domain.
        let x = rand_tensor(&[rows, cols], seed, 1.0);
        let v = x.to_vec();
        for r in 0..rows {
            let row = &v[r * cols..(r + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 =
                row.iter().map(|e| (e - mean) * (e - mean)).sum::<f32>() / cols as f32;
            prop_assume!(var > 1e-2);
        }
        let g = Tensor::ones([cols], &dev());
        let b = Tensor::zeros([cols], &dev());
        let (y1, _, _) = x.layernorm(&g, &b, 1e-6);
        let (y2, _, _) = x.scale(factor).layernorm(&g, &b, 1e-6);
        prop_assert!(close(&y1.to_vec(), &y2.to_vec(), 1e-2));
    }

    #[test]
    fn dropout_mask_reconstructs_output(
        n in 1usize..64,
        p in 0.0f32..0.9,
        seed in 0u64..1000,
    ) {
        let x = rand_tensor(&[n], seed, 1.0);
        let mut rng = Prng::seed_from_u64(seed);
        let (y, mask) = x.dropout(p, &mut rng);
        let scale = if p > 0.0 { 1.0 / (1.0 - p) } else { 1.0 };
        let recon = x.mul(&mask).scale(scale);
        prop_assert!(close(&y.to_vec(), &recon.to_vec(), 1e-5));
        // The mask is strictly 0/1.
        prop_assert!(mask.to_vec().iter().all(|m| *m == 0.0 || *m == 1.0));
    }

    #[test]
    fn embedding_rows_match_table(
        vocab in 1usize..8,
        hidden in 1usize..6,
        seed in 0u64..1000,
    ) {
        let table = rand_tensor(&[vocab, hidden], seed, 1.0);
        let tv = table.to_vec();
        let mut rng = Prng::seed_from_u64(seed + 7);
        let ids: Vec<f32> = (0..4).map(|_| rng.next_below(vocab as u64) as f32).collect();
        let out = table
            .embedding(&Tensor::from_vec(ids.clone(), [4], &dev()))
            .to_vec();
        for (row, id) in ids.iter().enumerate() {
            let want = &tv[*id as usize * hidden..(*id as usize + 1) * hidden];
            prop_assert!(close(&out[row * hidden..(row + 1) * hidden], want, 0.0));
        }
    }

    #[test]
    fn sum_leading_equals_manual_reduction(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let x = rand_tensor(&[rows, cols], seed, 1.0);
        let v = x.to_vec();
        let got = x.sum_leading().to_vec();
        for c in 0..cols {
            let want: f32 = (0..rows).map(|r| v[r * cols + c]).sum();
            prop_assert!((got[c] - want).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_bounded(
        rows in 1usize..4,
        vocab in 2usize..8,
        seed in 0u64..1000,
    ) {
        let logits = rand_tensor(&[rows, vocab], seed, 2.0);
        let mut rng = Prng::seed_from_u64(seed + 13);
        let targets: Vec<f32> = (0..rows)
            .map(|_| rng.next_below(vocab as u64) as f32)
            .collect();
        let (loss, probs) = logits.cross_entropy(&Tensor::from_vec(targets, [rows], &dev()));
        let l = loss.item();
        prop_assert!(l >= 0.0, "{l}");
        prop_assert!(l.is_finite());
        // Probabilities used for the loss are a valid softmax.
        let pv = probs.to_vec();
        for r in 0..rows {
            let sum: f32 = pv[r * vocab..(r + 1) * vocab].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }
}
