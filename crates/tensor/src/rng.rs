//! Deterministic pseudo-random number generation.
//!
//! Training runs must be exactly reproducible across placement strategies
//! (keep / offload / recompute) so that the numerics-equivalence tests can
//! compare losses bit-for-bit. This module provides a small, seedable
//! xoshiro256** generator with a value-stable stream.

/// A seedable xoshiro256** generator.
///
/// ```
/// use ssdtrain_tensor::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-width bits give every representable step in [0,1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling; bias is negligible for our use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A sample from the standard normal distribution (Box–Muller).
    pub fn next_normal(&mut self) -> f32 {
        let mut u1 = self.next_f32();
        if u1 <= f32::MIN_POSITIVE {
            u1 = f32::MIN_POSITIVE;
        }
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Splits off an independent child generator (for per-layer streams).
    pub fn split(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn bounded_within_range_and_covers() {
        let mut r = Prng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = Prng::seed_from_u64(5);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = r.next_normal() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Prng::seed_from_u64(6);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
