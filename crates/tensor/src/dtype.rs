//! Element types and their accounted widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
///
/// Arithmetic is always carried out in `f32`; the dtype only determines the
/// number of bytes a tensor *accounts for* in device memory and in transfer
/// sizes, mirroring the paper's FP16 training setup (Section 4.1) where
/// activations are two bytes per element.
///
/// ```
/// use ssdtrain_tensor::DType;
/// assert_eq!(DType::F16.byte_size(), 2);
/// assert_eq!(DType::F32.byte_size(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DType {
    /// IEEE half precision. The paper trains with pure FP16 (Section 4.1).
    #[default]
    F16,
    /// bfloat16; same accounted width as `F16`.
    Bf16,
    /// IEEE single precision.
    F32,
    /// One-byte integer values in `0..=255` (dropout masks are bool in
    /// PyTorch; a `U8` tensor stores small integers exactly).
    U8,
}

impl DType {
    /// Accounted width of one element in bytes.
    pub const fn byte_size(self) -> u64 {
        match self {
            DType::U8 => 1,
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
        }
    }

    /// Short lowercase name (`"f16"`, `"bf16"`, `"f32"`, `"u8"`).
    pub const fn name(self) -> &'static str {
        match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
            DType::U8 => "u8",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_match_hardware_widths() {
        assert_eq!(DType::F16.byte_size(), 2);
        assert_eq!(DType::Bf16.byte_size(), 2);
        assert_eq!(DType::F32.byte_size(), 4);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::Bf16.to_string(), "bf16");
        assert_eq!(DType::F32.to_string(), "f32");
    }

    #[test]
    fn default_is_f16() {
        assert_eq!(DType::default(), DType::F16);
    }
}
