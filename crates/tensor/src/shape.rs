//! Shapes and stride arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The extents of a tensor along each dimension.
///
/// ```
/// use ssdtrain_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.contiguous_strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// A zero-dimensional (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major (C-order) strides for a contiguous layout.
    pub fn contiguous_strides(&self) -> Vec<usize> {
        // ssdtrain-lint: allow(no-alloc-hot-loop): rank-length vector (a
        // handful of usizes), part of constructing any tensor view
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns the shape with dimensions `a` and `b` swapped.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn transposed(&self, a: usize, b: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.swap(a, b);
        Shape(dims)
    }

    /// Interprets this shape as `[rows, cols]` by flattening all leading
    /// dimensions into `rows`; a 1-D shape becomes `[1, n]`.
    ///
    /// This is the view used by linear layers over `[batch, seq, hidden]`
    /// inputs.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.0.len() {
            0 => (1, 1),
            1 => (1, self.0[0]),
            n => (self.0[..n - 1].iter().product(), self.0[n - 1]),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<&[usize; N]> for Shape {
    fn from(dims: &[usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
    }

    #[test]
    fn contiguous_strides_row_major() {
        assert_eq!(Shape::from([4]).contiguous_strides(), vec![1]);
        assert_eq!(Shape::from([2, 3]).contiguous_strides(), vec![3, 1]);
        assert_eq!(Shape::from([2, 3, 4]).contiguous_strides(), vec![12, 4, 1]);
    }

    #[test]
    fn transposed_swaps_dims() {
        let s = Shape::from([2, 3, 4]).transposed(0, 2);
        assert_eq!(s.dims(), &[4, 3, 2]);
    }

    #[test]
    fn as_2d_flattens_leading_dims() {
        assert_eq!(Shape::from([2, 3, 4]).as_2d(), (6, 4));
        assert_eq!(Shape::from([5]).as_2d(), (1, 5));
        assert_eq!(Shape::scalar().as_2d(), (1, 1));
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
