//! # ssdtrain-tensor
//!
//! Dense-tensor substrate for the SSDTrain reproduction.
//!
//! This crate plays the role PyTorch's ATen layer plays for the original
//! system: it provides tensors whose *storage* is shared, refcounted and
//! individually releasable, which is the property the SSDTrain tensor cache
//! exploits to reclaim GPU memory while a tensor identifier (not a
//! reference) sits on the computation graph.
//!
//! Two execution modes share one code path:
//!
//! * **Numeric** — storages hold real `f32` data and every kernel computes
//!   real values. Used at small scale to prove that offloading does not
//!   change training numerics.
//! * **Symbolic** — storages carry shape/dtype/byte accounting but no data.
//!   Used at paper scale (hidden size 8192–16384) where materialising
//!   activations is impossible on this machine but byte-accurate memory and
//!   transfer accounting is still required.
//!
//! Compute always happens in `f32`; the [`DType`] of a tensor only controls
//! *accounted* bytes (`F16` tensors account 2 bytes/element exactly like the
//! paper's FP16 training runs).
//!
//! ```
//! use ssdtrain_tensor::{Device, Tensor};
//!
//! let dev = Device::cpu();
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2], &dev);
//! let b = Tensor::eye(2, &dev);
//! let c = a.matmul(&b);
//! assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
//! ```

pub mod device;
pub mod dtype;
pub mod kernels;
pub mod rng;
pub mod shape;
pub mod storage;
pub mod tensor;

pub use device::{Device, MemClass, MemTracker};
pub use dtype::DType;
pub use rng::Prng;
pub use shape::Shape;
pub use storage::{Storage, StorageId, WeakStorage};
pub use tensor::Tensor;
