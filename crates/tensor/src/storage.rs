//! Shared, releasable tensor storage.
//!
//! A [`Storage`] is the analogue of PyTorch's `UntypedStorage`: several
//! tensors (views, transposes) may share one storage, and the storage's
//! payload can be *released* (after offloading) and later *restored*
//! (after reloading) while the handle itself stays alive. The SSDTrain
//! tensor cache keys its bookkeeping on the storage's first-seen *stamp*
//! (Section 3.3.1 of the paper), which is kept here as a write-once slot.

use crate::device::{Device, MemClass};
use crate::dtype::DType;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Unique identity of a storage allocation within the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageId(u64);

impl StorageId {
    fn next() -> StorageId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        StorageId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric value, for logs and reports.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StorageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage#{}", self.0)
    }
}

#[derive(Debug)]
enum DataState {
    /// Real values are resident.
    Numeric(Vec<f32>),
    /// Shape-only execution: the storage is accounted as resident but holds
    /// no values.
    Symbolic,
    /// The payload was released (offloaded); accounted bytes are free.
    Released,
}

struct StorageInner {
    id: StorageId,
    numel: usize,
    dtype: DType,
    class: MemClass,
    device: Device,
    data: RwLock<DataState>,
    stamp: OnceLock<u64>,
}

/// A refcounted, releasable buffer of `numel` elements.
#[derive(Clone)]
pub struct Storage {
    inner: Arc<StorageInner>,
}

/// Weak handle to a [`Storage`], used by the tensor cache for data
/// forwarding (upgrade-if-still-alive, Section 3.3.2).
#[derive(Clone)]
pub struct WeakStorage(Weak<StorageInner>);

impl Storage {
    /// Creates a numeric storage owning `data`.
    ///
    /// Reports `numel * dtype.byte_size()` bytes to the device tracker.
    ///
    /// # Panics
    /// Panics if the device is symbolic (numeric payloads are not allowed
    /// there — that would defeat the purpose of shape-only runs).
    pub fn numeric(data: Vec<f32>, dtype: DType, class: MemClass, device: &Device) -> Storage {
        assert!(
            !device.is_symbolic(),
            "numeric storage created on a symbolic device"
        );
        let numel = data.len();
        Self::build(DataState::Numeric(data), numel, dtype, class, device)
    }

    /// Creates a shape-only storage accounting for `numel` elements.
    pub fn symbolic(numel: usize, dtype: DType, class: MemClass, device: &Device) -> Storage {
        Self::build(DataState::Symbolic, numel, dtype, class, device)
    }

    fn build(
        state: DataState,
        numel: usize,
        dtype: DType,
        class: MemClass,
        device: &Device,
    ) -> Storage {
        let s = Storage {
            inner: Arc::new(StorageInner {
                id: StorageId::next(),
                numel,
                dtype,
                class,
                device: device.clone(),
                data: RwLock::new(state),
                stamp: OnceLock::new(),
            }),
        };
        device.notify_alloc(s.bytes(), class);
        s
    }

    /// Unique identity of this allocation.
    pub fn id(&self) -> StorageId {
        self.inner.id
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.inner.numel
    }

    /// Element type (controls accounted width).
    pub fn dtype(&self) -> DType {
        self.inner.dtype
    }

    /// Memory class recorded at creation.
    pub fn mem_class(&self) -> MemClass {
        self.inner.class
    }

    /// Device this storage lives on.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// Accounted size in bytes (`numel * dtype.byte_size()`).
    pub fn bytes(&self) -> u64 {
        self.inner.numel as u64 * self.inner.dtype.byte_size()
    }

    /// Whether the payload currently occupies (simulated) device memory.
    pub fn is_resident(&self) -> bool {
        !matches!(*self.inner.data.read(), DataState::Released)
    }

    /// Whether real values are present.
    pub fn has_data(&self) -> bool {
        matches!(*self.inner.data.read(), DataState::Numeric(_))
    }

    /// Runs `f` over the payload, or returns `None` when the storage is
    /// symbolic or released.
    pub fn with_data<R>(&self, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        match &*self.inner.data.read() {
            DataState::Numeric(v) => Some(f(v)),
            _ => None,
        }
    }

    /// Runs `f` over the mutable payload, or returns `None` when symbolic
    /// or released.
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut [f32]) -> R) -> Option<R> {
        match &mut *self.inner.data.write() {
            DataState::Numeric(v) => Some(f(v)),
            _ => None,
        }
    }

    /// Copies the payload out, if present.
    pub fn to_vec(&self) -> Option<Vec<f32>> {
        self.with_data(|d| d.to_vec())
    }

    /// Releases the payload, freeing accounted bytes.
    ///
    /// Idempotent: releasing a released storage is a no-op. This is the
    /// memory-reclaim step that offloading enables (Section 3.2).
    pub fn release(&self) {
        let mut guard = self.inner.data.write();
        if !matches!(*guard, DataState::Released) {
            *guard = DataState::Released;
            drop(guard);
            self.inner
                .device
                .notify_free(self.bytes(), self.inner.class);
        }
    }

    /// Restores a released storage with reloaded values.
    ///
    /// # Panics
    /// Panics if the storage is still resident, or if `data.len()` differs
    /// from `numel()`.
    pub fn restore_numeric(&self, data: Vec<f32>) {
        assert_eq!(data.len(), self.inner.numel, "restore with wrong length");
        let mut guard = self.inner.data.write();
        assert!(
            matches!(*guard, DataState::Released),
            "restore of a resident storage"
        );
        *guard = DataState::Numeric(data);
        drop(guard);
        self.inner
            .device
            .notify_alloc(self.bytes(), self.inner.class);
    }

    /// Restores a released storage in shape-only mode.
    ///
    /// # Panics
    /// Panics if the storage is still resident.
    pub fn restore_symbolic(&self) {
        let mut guard = self.inner.data.write();
        assert!(
            matches!(*guard, DataState::Released),
            "restore of a resident storage"
        );
        *guard = DataState::Symbolic;
        drop(guard);
        self.inner
            .device
            .notify_alloc(self.bytes(), self.inner.class);
    }

    /// Serialises the payload for offloading.
    ///
    /// `F32` storages serialise exactly (offload round trips are
    /// bit-identical); `F16`/`Bf16` storages serialise via a half-precision
    /// conversion so the file size equals the accounted size. Returns
    /// `None` for symbolic or released storages — symbolic offloads move
    /// accounted bytes only.
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        self.with_data(|d| match self.inner.dtype {
            // ssdtrain-lint: allow(no-alloc-hot-loop): the serialised buffer
            // *is* the offload payload; producing it is the point of the call
            DType::F32 => d.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DType::F16 | DType::Bf16 => d
                .iter()
                .flat_map(|x| f32_to_f16_bits(*x).to_le_bytes())
                // ssdtrain-lint: allow(no-alloc-hot-loop): the serialised
                // buffer *is* the offload payload (half-precision arm)
                .collect(),
            DType::U8 => d
                .iter()
                .map(|x| x.round().clamp(0.0, 255.0) as u8)
                // ssdtrain-lint: allow(no-alloc-hot-loop): the serialised
                // buffer *is* the offload payload (quantised arm)
                .collect(),
        })
    }

    /// Decodes bytes previously produced by [`Storage::to_bytes`].
    ///
    /// # Panics
    /// Panics if `bytes` has the wrong length.
    pub fn decode_bytes(&self, bytes: &[u8]) -> Vec<f32> {
        match self.inner.dtype {
            DType::F32 => {
                assert_eq!(bytes.len(), self.inner.numel * 4, "bad byte length");
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    // ssdtrain-lint: allow(no-alloc-hot-loop): the decoded
                    // values *are* the reloaded payload
                    .collect()
            }
            DType::F16 | DType::Bf16 => {
                assert_eq!(bytes.len(), self.inner.numel * 2, "bad byte length");
                bytes
                    .chunks_exact(2)
                    .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                    // ssdtrain-lint: allow(no-alloc-hot-loop): the decoded
                    // values *are* the reloaded payload
                    .collect()
            }
            DType::U8 => {
                assert_eq!(bytes.len(), self.inner.numel, "bad byte length");
                // ssdtrain-lint: allow(no-alloc-hot-loop): the decoded
                // values *are* the reloaded payload
                bytes.iter().map(|b| *b as f32).collect()
            }
        }
    }

    /// Stamps this storage with a first-seen logical timestamp, returning
    /// the winning value (the existing one if already stamped).
    ///
    /// This is the core of the paper's `get_id()` deduplication: the stamp
    /// survives view/transpose re-wrapping because it lives on the storage.
    pub fn stamp_once(&self, stamp: u64) -> u64 {
        *self.inner.stamp.get_or_init(|| stamp)
    }

    /// The stamp, if one was assigned.
    pub fn stamp(&self) -> Option<u64> {
        self.inner.stamp.get().copied()
    }

    /// Downgrades to a weak handle.
    pub fn downgrade(&self) -> WeakStorage {
        WeakStorage(Arc::downgrade(&self.inner))
    }

    /// Number of strong handles alive.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// True if both handles refer to the same allocation.
    pub fn ptr_eq(&self, other: &Storage) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl WeakStorage {
    /// Attempts to upgrade; succeeds while any strong handle is alive.
    pub fn upgrade(&self) -> Option<Storage> {
        self.0.upgrade().map(|inner| Storage { inner })
    }
}

impl fmt::Debug for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Storage")
            .field("id", &self.inner.id)
            .field("numel", &self.inner.numel)
            .field("dtype", &self.inner.dtype)
            .field("class", &self.inner.class)
            .field("resident", &self.is_resident())
            .finish()
    }
}

impl fmt::Debug for WeakStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WeakStorage(alive: {})", self.0.strong_count() > 0)
    }
}

impl Drop for StorageInner {
    fn drop(&mut self) {
        if !matches!(*self.data.get_mut(), DataState::Released) {
            let bytes = self.numel as u64 * self.dtype.byte_size();
            self.device.notify_free(bytes, self.class);
        }
    }
}

/// Converts an `f32` to IEEE half-precision bits (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = (unbiased + 15) as u32;
        let mut half_mant = mant >> 13;
        // Round to nearest even.
        let round_bits = mant & 0x1fff;
        if round_bits > 0x1000 || (round_bits == 0x1000 && half_mant & 1 == 1) {
            half_mant += 1;
        }
        let v = (half_exp << 10) + half_mant; // mantissa carry may bump exponent
        return sign | v as u16;
    }
    if unbiased < -25 {
        return sign; // underflow to zero
    }
    // Subnormal half.
    let full_mant = mant | 0x0080_0000;
    let shift = (-14 - unbiased + 13) as u32;
    let mut half_mant = full_mant >> shift;
    let rem = full_mant & ((1 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && half_mant & 1 == 1) {
        half_mant += 1;
    }
    sign | half_mant as u16
}

/// Converts IEEE half-precision bits to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalise.
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            let exp32 = (127 - 15 + e + 1) as u32;
            sign | (exp32 << 23) | ((m & 0x03ff) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[derive(Default)]
    struct Net(AtomicI64);
    impl crate::device::MemTracker for Net {
        fn on_alloc(&self, b: u64, _c: MemClass) {
            self.0.fetch_add(b as i64, Ordering::Relaxed);
        }
        fn on_free(&self, b: u64, _c: MemClass) {
            self.0.fetch_sub(b as i64, Ordering::Relaxed);
        }
    }

    fn tracked_device() -> (Device, Arc<Net>) {
        let dev = Device::cpu();
        let t = Arc::new(Net::default());
        dev.set_tracker(t.clone());
        (dev, t)
    }

    #[test]
    fn bytes_accounted_by_dtype() {
        let dev = Device::cpu();
        let s = Storage::numeric(vec![0.0; 8], DType::F16, MemClass::Activation, &dev);
        assert_eq!(s.bytes(), 16);
        let s32 = Storage::numeric(vec![0.0; 8], DType::F32, MemClass::Activation, &dev);
        assert_eq!(s32.bytes(), 32);
    }

    #[test]
    fn release_restore_roundtrip_reports_traffic() {
        let (dev, t) = tracked_device();
        let s = Storage::numeric(vec![1.0, 2.0], DType::F32, MemClass::Activation, &dev);
        assert_eq!(t.0.load(Ordering::Relaxed), 8);
        s.release();
        assert_eq!(t.0.load(Ordering::Relaxed), 0);
        assert!(!s.is_resident());
        s.restore_numeric(vec![1.0, 2.0]);
        assert_eq!(t.0.load(Ordering::Relaxed), 8);
        assert_eq!(s.to_vec().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn drop_frees_resident_bytes_once() {
        let (dev, t) = tracked_device();
        {
            let s = Storage::numeric(vec![0.0; 4], DType::F32, MemClass::Workspace, &dev);
            s.release(); // freed here...
        } // ...and the drop must not double-free
        assert_eq!(t.0.load(Ordering::Relaxed), 0);
        {
            let _s = Storage::numeric(vec![0.0; 4], DType::F32, MemClass::Workspace, &dev);
        }
        assert_eq!(t.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn release_is_idempotent() {
        let (dev, t) = tracked_device();
        let s = Storage::numeric(vec![0.0; 4], DType::F32, MemClass::Activation, &dev);
        s.release();
        s.release();
        assert_eq!(t.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stamp_is_write_once() {
        let dev = Device::cpu();
        let s = Storage::numeric(vec![0.0], DType::F32, MemClass::Activation, &dev);
        assert_eq!(s.stamp(), None);
        assert_eq!(s.stamp_once(7), 7);
        assert_eq!(s.stamp_once(9), 7);
        assert_eq!(s.stamp(), Some(7));
    }

    #[test]
    fn weak_forwarding_semantics() {
        let dev = Device::cpu();
        let s = Storage::numeric(vec![3.0], DType::F32, MemClass::Activation, &dev);
        let w = s.downgrade();
        assert!(w.upgrade().is_some());
        drop(s);
        assert!(w.upgrade().is_none());
    }

    #[test]
    fn f32_bytes_roundtrip_is_exact() {
        let dev = Device::cpu();
        let vals = vec![1.5, -2.25, std::f32::consts::PI, f32::MIN_POSITIVE, 0.0];
        let s = Storage::numeric(vals.clone(), DType::F32, MemClass::Activation, &dev);
        let bytes = s.to_bytes().unwrap();
        assert_eq!(bytes.len() as u64, s.bytes());
        assert_eq!(s.decode_bytes(&bytes), vals);
    }

    #[test]
    fn f16_roundtrip_preserves_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -0.25, 1024.0] {
            let bits = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(bits), v, "value {v}");
        }
    }

    #[test]
    fn f16_special_values() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-30)), 0.0);
    }

    #[test]
    fn symbolic_storage_has_no_data_but_accounts_bytes() {
        let dev = Device::symbolic();
        let s = Storage::symbolic(1024, DType::F16, MemClass::Activation, &dev);
        assert!(s.is_resident());
        assert!(!s.has_data());
        assert_eq!(s.bytes(), 2048);
        assert!(s.to_bytes().is_none());
    }

    #[test]
    #[should_panic(expected = "numeric storage created on a symbolic device")]
    fn numeric_on_symbolic_device_panics() {
        let dev = Device::symbolic();
        let _ = Storage::numeric(vec![0.0], DType::F32, MemClass::Activation, &dev);
    }

    #[test]
    #[should_panic(expected = "restore of a resident storage")]
    fn restore_resident_panics() {
        let dev = Device::cpu();
        let s = Storage::numeric(vec![0.0], DType::F32, MemClass::Activation, &dev);
        s.restore_numeric(vec![1.0]);
    }
}
