//! Compute kernels.
//!
//! Every kernel propagates shapes when any input is symbolic (no data), so
//! the same model code runs numerically at test scale and symbolically at
//! paper scale. Numeric kernels are straightforward reference
//! implementations — correctness over speed; the simulated GPU provides
//! paper-scale timing, not these loops.

use crate::rng::Prng;
use crate::shape::Shape;
use crate::tensor::Tensor;

fn symbolic_like(t: &Tensor, shape: impl Into<Shape>) -> Tensor {
    Tensor::symbolic(shape.into(), t.device())
}

fn binary_shape_check(op: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.dims(),
        b.dims(),
        "{op}: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
}

impl Tensor {
    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        binary_shape_check("add", self, rhs);
        if !self.has_data() || !rhs.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let (a, b) = (self.to_vec(), rhs.to_vec());
        let out = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Elementwise difference.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        binary_shape_check("sub", self, rhs);
        if !self.has_data() || !rhs.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let (a, b) = (self.to_vec(), rhs.to_vec());
        let out = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        binary_shape_check("mul", self, rhs);
        if !self.has_data() || !rhs.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let (a, b) = (self.to_vec(), rhs.to_vec());
        let out = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        if !self.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        // ssdtrain-lint: allow(no-alloc-hot-loop): the kernel's output
        // tensor is the op's result; producing it is the point of the call
        let out = self.to_vec().iter().map(|x| x * s).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Adds a 1-D `bias` across the last dimension.
    ///
    /// # Panics
    /// Panics if `bias` is not 1-D of length `last_dim`.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let h = *self.dims().last().expect("add_bias on scalar");
        assert_eq!(bias.dims(), &[h], "bias must be 1-D of the last dim");
        if !self.has_data() || !bias.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let mut out = self.to_vec();
        let b = bias.to_vec();
        for (i, v) in out.iter_mut().enumerate() {
            *v += b[i % h];
        }
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// In-place elementwise accumulation (`self += rhs`), used for
    /// gradient accumulation. No-op when either side is symbolic.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate(&self, rhs: &Tensor) {
        binary_shape_check("accumulate", self, rhs);
        if !self.has_data() || !rhs.has_data() {
            return;
        }
        assert!(self.is_contiguous(), "accumulate into non-contiguous view");
        let b = rhs.to_vec();
        self.storage().with_data_mut(|a| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
        });
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        if !self.has_data() {
            return symbolic_like(self, [1]);
        }
        let s: f32 = self.to_vec().iter().sum();
        Tensor::from_vec(vec![s], [1], self.device())
    }

    /// Mean of all elements as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        if !self.has_data() {
            return symbolic_like(self, [1]);
        }
        self.sum_all().scale(1.0 / self.numel() as f32)
    }

    /// Sums over all leading dimensions, producing a 1-D tensor of the
    /// last-dimension length (the reduction used for bias gradients).
    pub fn sum_leading(&self) -> Tensor {
        let h = *self.dims().last().expect("sum_leading on scalar");
        if !self.has_data() {
            return symbolic_like(self, [h]);
        }
        let v = self.to_vec();
        let mut out = vec![0.0f32; h];
        for (i, x) in v.iter().enumerate() {
            out[i % h] += x;
        }
        Tensor::from_vec(out, [h], self.device())
    }

    // ------------------------------------------------------------------
    // Matrix multiply
    // ------------------------------------------------------------------

    /// Matrix product `self @ rhs` where `self` is `[..., m, k]` (leading
    /// dims flattened) and `rhs` is a 2-D `[k, n]` view — transposed
    /// weight views are read through their strides without materialising.
    ///
    /// # Panics
    /// Panics if `rhs` is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(rhs.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = self.shape().as_2d();
        let (rk, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, rk, "matmul inner dims {k} vs {rk}");
        let mut out_dims: Vec<usize> = if self.rank() <= 1 {
            vec![n]
        } else {
            let mut d = self.dims().to_vec();
            *d.last_mut().expect("matmul lhs rank >= 1") = n;
            d
        };
        if self.rank() == 0 {
            out_dims = vec![n];
        }
        if !self.has_data() || !rhs.has_data() {
            return symbolic_like(self, out_dims);
        }
        let a = self.contiguous().to_vec();
        let b = rhs.to_vec(); // gathers through strides; [k, n] row-major
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += av * brow[j];
                }
            }
        }
        Tensor::from_vec(out, out_dims, self.device())
    }

    /// Batched matrix product of `[b, m, k]` and `[b, k, n]`.
    ///
    /// # Panics
    /// Panics unless both operands are 3-D with matching batch and inner
    /// dimensions.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(rhs.rank(), 3, "bmm rhs must be 3-D");
        let (bt, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        assert_eq!(rhs.dim(0), bt, "bmm batch mismatch");
        assert_eq!(rhs.dim(1), k, "bmm inner dims");
        let n = rhs.dim(2);
        if !self.has_data() || !rhs.has_data() {
            return symbolic_like(self, [bt, m, n]);
        }
        let a = self.contiguous().to_vec();
        let b = rhs.contiguous().to_vec();
        let mut out = vec![0.0f32; bt * m * n];
        for t in 0..bt {
            let abase = t * m * k;
            let bbase = t * k * n;
            let obase = t * m * n;
            for i in 0..m {
                for p in 0..k {
                    let av = a[abase + i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[bbase + p * n..bbase + (p + 1) * n];
                    let orow = &mut out[obase + i * n..obase + (i + 1) * n];
                    for j in 0..n {
                        orow[j] += av * brow[j];
                    }
                }
            }
        }
        Tensor::from_vec(out, [bt, m, n], self.device())
    }

    // ------------------------------------------------------------------
    // Activations and normalisation
    // ------------------------------------------------------------------

    /// GELU activation (tanh approximation, as used by GPT/BERT).
    pub fn gelu(&self) -> Tensor {
        if !self.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let out = self.to_vec().iter().map(|&x| gelu_scalar(x)).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Derivative of [`Tensor::gelu`] with respect to its input, evaluated
    /// elementwise at `self`.
    pub fn gelu_grad(&self) -> Tensor {
        if !self.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let out = self.to_vec().iter().map(|&x| gelu_grad_scalar(x)).collect();
        Tensor::from_vec(out, self.shape().clone(), self.device())
    }

    /// Softmax over the last dimension.
    pub fn softmax_last(&self) -> Tensor {
        let h = *self.dims().last().expect("softmax on scalar");
        if !self.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let mut v = self.to_vec();
        for row in v.chunks_exact_mut(h) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        Tensor::from_vec(v, self.shape().clone(), self.device())
    }

    /// Applies a causal mask to `[batch, s, s]` attention scores: entries
    /// with column > row become `-inf` so softmax zeroes them.
    ///
    /// # Panics
    /// Panics unless the tensor is 3-D with square trailing dims.
    pub fn apply_causal_mask(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "causal mask expects [b, s, s]");
        let (b, s1, s2) = (self.dim(0), self.dim(1), self.dim(2));
        assert_eq!(s1, s2, "causal mask expects square scores");
        if !self.has_data() {
            return symbolic_like(self, self.shape().clone());
        }
        let mut v = self.to_vec();
        for t in 0..b {
            for i in 0..s1 {
                for j in (i + 1)..s2 {
                    v[t * s1 * s2 + i * s2 + j] = f32::NEG_INFINITY;
                }
            }
        }
        Tensor::from_vec(v, self.shape().clone(), self.device())
    }

    /// Layer normalisation over the last dimension.
    ///
    /// Returns `(y, mean, rstd)`; the statistics are needed for backward.
    ///
    /// # Panics
    /// Panics if `gamma`/`beta` are not 1-D of the last-dim length.
    pub fn layernorm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, Tensor, Tensor) {
        let h = *self.dims().last().expect("layernorm on scalar");
        assert_eq!(gamma.dims(), &[h], "gamma must be [hidden]");
        assert_eq!(beta.dims(), &[h], "beta must be [hidden]");
        let rows = self.numel() / h;
        if !self.has_data() || !gamma.has_data() || !beta.has_data() {
            return (
                symbolic_like(self, self.shape().clone()),
                symbolic_like(self, [rows]),
                symbolic_like(self, [rows]),
            );
        }
        let x = self.to_vec();
        let g = gamma.to_vec();
        let b = beta.to_vec();
        let mut y = vec![0.0f32; x.len()];
        let mut means = vec![0.0f32; rows];
        let mut rstds = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &x[r * h..(r + 1) * h];
            let mean = row.iter().sum::<f32>() / h as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
            let rstd = 1.0 / (var + eps).sqrt();
            means[r] = mean;
            rstds[r] = rstd;
            for j in 0..h {
                y[r * h + j] = (row[j] - mean) * rstd * g[j] + b[j];
            }
        }
        (
            Tensor::from_vec(y, self.shape().clone(), self.device()),
            Tensor::from_vec(means, [rows], self.device()),
            Tensor::from_vec(rstds, [rows], self.device()),
        )
    }

    /// Inverted dropout with keep probability `1 - p`; returns
    /// `(y, mask)` where the mask holds `0` or `1` and is accounted as a
    /// one-byte tensor (PyTorch saves a bool mask); survivors are scaled
    /// by `1/(1-p)` in `y`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn dropout(&self, p: f32, rng: &mut Prng) -> (Tensor, Tensor) {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        let dev = self.device().clone();
        if !self.has_data() {
            let y = symbolic_like(self, self.shape().clone());
            let m = dev.with_dtype(crate::DType::U8, || {
                Tensor::symbolic(self.shape().clone(), &dev)
            });
            return (y, m);
        }
        if p == 0.0 {
            let mask = dev.with_dtype(crate::DType::U8, || {
                Tensor::ones(self.shape().clone(), &dev)
            });
            return (self.contiguous(), mask);
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let x = self.to_vec();
        let mut mask = vec![0.0f32; x.len()];
        let mut y = vec![0.0f32; x.len()];
        for i in 0..x.len() {
            if rng.next_f32() < keep {
                mask[i] = 1.0;
                y[i] = x[i] * scale;
            }
        }
        (
            Tensor::from_vec(y, self.shape().clone(), &dev),
            dev.with_dtype(crate::DType::U8, || {
                Tensor::from_vec(mask, self.shape().clone(), &dev)
            }),
        )
    }

    // ------------------------------------------------------------------
    // Embedding and loss
    // ------------------------------------------------------------------

    /// Embedding lookup: `self` is a `[vocab, hidden]` table, `ids` holds
    /// integer token ids (stored as `f32`) of any shape; the result has
    /// shape `ids.shape + [hidden]`.
    ///
    /// # Panics
    /// Panics if the table is not 2-D or an id is out of range.
    pub fn embedding(&self, ids: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "embedding table must be [vocab, hidden]");
        let (v, h) = (self.dim(0), self.dim(1));
        let mut out_dims = ids.dims().to_vec();
        out_dims.push(h);
        if !self.has_data() || !ids.has_data() {
            return symbolic_like(self, out_dims);
        }
        let table = self.to_vec();
        let idv = ids.to_vec();
        let mut out = Vec::with_capacity(idv.len() * h);
        for &fid in &idv {
            let id = fid as usize;
            assert!(id < v, "token id {id} out of vocab range {v}");
            out.extend_from_slice(&table[id * h..(id + 1) * h]);
        }
        Tensor::from_vec(out, out_dims, self.device())
    }

    /// Scatter-add of `grad` rows into a zeroed `[vocab, hidden]` gradient
    /// according to `ids` — the backward of [`Tensor::embedding`].
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn embedding_grad(vocab: usize, ids: &Tensor, grad: &Tensor) -> Tensor {
        let h = *grad.dims().last().expect("embedding grad rank");
        assert_eq!(
            grad.numel(),
            ids.numel() * h,
            "embedding grad shape mismatch"
        );
        if !ids.has_data() || !grad.has_data() {
            return Tensor::symbolic([vocab, h], grad.device());
        }
        let idv = ids.to_vec();
        let g = grad.to_vec();
        let mut out = vec![0.0f32; vocab * h];
        for (row, &fid) in idv.iter().enumerate() {
            let id = fid as usize;
            for j in 0..h {
                out[id * h + j] += g[row * h + j];
            }
        }
        Tensor::from_vec(out, [vocab, h], grad.device())
    }

    /// Mean cross-entropy of `[n, vocab]` logits against integer targets
    /// (stored as `f32`) of shape `[n]`. Returns `(loss, probs)` where
    /// `probs` is the row softmax saved for the backward pass.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range targets.
    pub fn cross_entropy(&self, targets: &Tensor) -> (Tensor, Tensor) {
        let (n, v) = self.shape().as_2d();
        assert_eq!(targets.numel(), n, "one target per row");
        if !self.has_data() || !targets.has_data() {
            return (
                symbolic_like(self, [1]),
                symbolic_like(self, self.shape().clone()),
            );
        }
        let probs = self.reshape([n, v]).softmax_last();
        let pv = probs.to_vec();
        let tv = targets.to_vec();
        let mut loss = 0.0f32;
        for (row, &ft) in tv.iter().enumerate() {
            let t = ft as usize;
            assert!(t < v, "target {t} out of range {v}");
            loss -= pv[row * v + t].max(1e-30).ln();
        }
        loss /= n as f32;
        (
            Tensor::from_vec(vec![loss], [1], self.device()),
            Tensor::over(probs.storage().clone(), self.shape().clone()),
        )
    }
}

/// GELU(x) with the tanh approximation.
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// d GELU(x) / dx with the tanh approximation.
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use crate::device::Device;
    use crate::rng::Prng;
    use crate::tensor::Tensor;

    fn dev() -> Device {
        Device::cpu()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn add_mul_scale() {
        let a = Tensor::from_vec(vec![1., 2.], [2], &dev());
        let b = Tensor::from_vec(vec![10., 20.], [2], &dev());
        assert_eq!(a.add(&b).to_vec(), vec![11., 22.]);
        assert_eq!(a.mul(&b).to_vec(), vec![10., 40.]);
        assert_eq!(a.scale(3.0).to_vec(), vec![3., 6.]);
        assert_eq!(b.sub(&a).to_vec(), vec![9., 18.]);
    }

    #[test]
    fn add_bias_broadcasts_last_dim() {
        let x = Tensor::from_vec(vec![0., 0., 0., 0., 0., 0.], [2, 3], &dev());
        let b = Tensor::from_vec(vec![1., 2., 3.], [3], &dev());
        assert_eq!(x.add_bias(&b).to_vec(), vec![1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn matmul_2d_reference() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &dev());
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2], &dev());
        assert_eq!(a.matmul(&b).to_vec(), vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_with_transposed_rhs_reads_strides() {
        let a = Tensor::from_vec(vec![1., 2.], [1, 2], &dev());
        let w = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [3, 2], &dev());
        // a @ w.t() == [1*1+2*2, 1*3+2*4, 1*5+2*6]
        let y = a.matmul(&w.t());
        assert_eq!(y.to_vec(), vec![5., 11., 17.]);
    }

    #[test]
    fn matmul_flattens_leading_dims() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 3, 2], &dev());
        let w = Tensor::eye(2, &dev());
        let y = a.matmul(&w);
        assert_eq!(y.dims(), &[2, 3, 2]);
        assert_eq!(y.to_vec(), a.to_vec());
    }

    #[test]
    fn bmm_batches_independently() {
        let a = Tensor::from_vec(vec![1., 0., 0., 1., 2., 0., 0., 2.], [2, 2, 2], &dev());
        let b = Tensor::from_vec(vec![1., 2., 3., 4., 1., 2., 3., 4.], [2, 2, 2], &dev());
        let y = a.bmm(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4., 2., 4., 6., 8.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1., 2., 3., 1000., 1000., 1000.], [2, 3], &dev());
        let y = x.softmax_last().to_vec();
        let s1: f32 = y[..3].iter().sum();
        let s2: f32 = y[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!((s2 - 1.0).abs() < 1e-5, "large inputs must not overflow");
        assert!(y[2] > y[1] && y[1] > y[0]);
    }

    #[test]
    fn causal_mask_zeroes_future_after_softmax() {
        let x = Tensor::zeros([1, 3, 3], &dev());
        let y = x.apply_causal_mask().softmax_last().to_vec();
        // Row 0 attends only to position 0.
        assert_close(&y[0..3], &[1.0, 0.0, 0.0], 1e-6);
        // Row 1 attends to positions 0..=1 equally.
        assert_close(&y[3..6], &[0.5, 0.5, 0.0], 1e-6);
        assert_close(&y[6..9], &[1.0 / 3.0; 3], 1e-6);
    }

    #[test]
    fn layernorm_normalises_rows() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], [1, 4], &dev());
        let g = Tensor::ones([4], &dev());
        let b = Tensor::zeros([4], &dev());
        let (y, mean, rstd) = x.layernorm(&g, &b, 1e-5);
        let yv = y.to_vec();
        let m: f32 = yv.iter().sum::<f32>() / 4.0;
        let var: f32 = yv.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        assert!((mean.item() - 2.5).abs() < 1e-6);
        assert!(rstd.item() > 0.0);
    }

    #[test]
    fn gelu_matches_known_points() {
        assert!((super::gelu_scalar(0.0)).abs() < 1e-7);
        assert!((super::gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((super::gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (super::gelu_scalar(x + h) - super::gelu_scalar(x - h)) / (2.0 * h);
            let an = super::gelu_grad_scalar(x);
            assert!((fd - an).abs() < 1e-3, "x={x}: {fd} vs {an}");
        }
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::ones([1000], &dev());
        let (y, mask) = x.dropout(0.5, &mut rng);
        let yv = y.to_vec();
        let kept = yv.iter().filter(|v| **v != 0.0).count();
        assert!((400..600).contains(&kept), "kept {kept}");
        for v in yv.iter().filter(|v| **v != 0.0) {
            assert_eq!(*v, 2.0);
        }
        assert_eq!(mask.dtype(), crate::DType::U8, "bool mask accounting");
        assert_eq!(
            x.mul(&mask).scale(2.0).to_vec(),
            yv,
            "mask reproduces output"
        );
    }

    #[test]
    fn dropout_p_zero_is_identity() {
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::from_vec(vec![1., 2., 3.], [3], &dev());
        let (y, mask) = x.dropout(0.0, &mut rng);
        assert_eq!(y.to_vec(), vec![1., 2., 3.]);
        assert_eq!(mask.to_vec(), vec![1., 1., 1.]);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let table = Tensor::from_vec(vec![1., 1., 2., 2., 3., 3.], [3, 2], &dev());
        let ids = Tensor::from_vec(vec![2., 0., 2.], [3], &dev());
        let e = table.embedding(&ids);
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.to_vec(), vec![3., 3., 1., 1., 3., 3.]);
        let grad = Tensor::ones([3, 2], &dev());
        let g = Tensor::embedding_grad(3, &ids, &grad);
        assert_eq!(g.to_vec(), vec![1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_vocab() {
        let logits = Tensor::zeros([2, 4], &dev());
        let targets = Tensor::from_vec(vec![0., 3.], [2], &dev());
        let (loss, probs) = logits.cross_entropy(&targets);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
        assert_close(&probs.to_vec(), &[0.25; 8], 1e-6);
    }

    #[test]
    fn symbolic_inputs_propagate_shape_only() {
        let d = Device::symbolic();
        let a = Tensor::zeros([2, 3], &d);
        let w = Tensor::zeros([3, 5], &d);
        let y = a.matmul(&w);
        assert_eq!(y.dims(), &[2, 5]);
        assert!(!y.has_data());
        let (l, probs) = y.cross_entropy(&Tensor::zeros([2], &d));
        assert!(!l.has_data());
        assert_eq!(probs.dims(), &[2, 5]);
    }

    #[test]
    fn sum_leading_reduces_to_last_dim() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [2, 3], &dev());
        assert_eq!(x.sum_leading().to_vec(), vec![5., 7., 9.]);
    }

    #[test]
    fn accumulate_adds_in_place() {
        let a = Tensor::zeros([3], &dev());
        let b = Tensor::from_vec(vec![1., 2., 3.], [3], &dev());
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.to_vec(), vec![2., 4., 6.]);
    }
}
