//! The [`Tensor`] handle: a shaped, strided view over a [`Storage`].

use crate::device::{Device, MemClass};
use crate::dtype::DType;
use crate::rng::Prng;
use crate::shape::Shape;
use crate::storage::{Storage, WeakStorage};
use std::fmt;

/// A multi-dimensional view over shared storage.
///
/// Cloning a tensor is cheap and shares the underlying buffer, exactly
/// like `torch.Tensor`. Views created with [`Tensor::transpose`] and
/// [`Tensor::reshape`] share storage with their base, which is what makes
/// the paper's storage-stamp deduplication meaningful (a transposed weight
/// and its base carry the same stamp).
///
/// ```
/// use ssdtrain_tensor::{Device, Tensor};
/// let dev = Device::cpu();
/// let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3], &dev);
/// let tt = t.transpose(0, 1);
/// assert_eq!(tt.dims(), &[3, 2]);
/// assert!(t.storage().ptr_eq(tt.storage()));
/// assert_eq!(tt.to_vec(), vec![1., 4., 2., 5., 3., 6.]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    storage: Storage,
    shape: Shape,
    strides: Vec<usize>,
    offset: usize,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor owning `data` with the given shape.
    ///
    /// Uses the device's default dtype and memory class.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count, or
    /// if the device is symbolic.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>, device: &Device) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        let storage =
            Storage::numeric(data, device.default_dtype(), device.default_class(), device);
        Tensor::over(storage, shape)
    }

    /// Creates a tensor of zeros (numeric) or a shape-only tensor
    /// (symbolic device).
    pub fn zeros(shape: impl Into<Shape>, device: &Device) -> Tensor {
        Tensor::full(shape, 0.0, device)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>, device: &Device) -> Tensor {
        Tensor::full(shape, 1.0, device)
    }

    /// Creates a tensor filled with `value`. On a symbolic device the value
    /// is ignored and a shape-only tensor is produced.
    pub fn full(shape: impl Into<Shape>, value: f32, device: &Device) -> Tensor {
        let shape = shape.into();
        let storage = if device.is_symbolic() {
            Storage::symbolic(
                shape.numel(),
                device.default_dtype(),
                device.default_class(),
                device,
            )
        } else {
            Storage::numeric(
                // ssdtrain-lint: allow(no-alloc-hot-loop): materialising the
                // tensor is this constructor's job; callers own the hoisting
                vec![value; shape.numel()],
                device.default_dtype(),
                device.default_class(),
                device,
            )
        };
        Tensor::over(storage, shape)
    }

    /// Creates a shape-only tensor regardless of device mode. Its bytes are
    /// accounted, but it carries no values.
    pub fn symbolic(shape: impl Into<Shape>, device: &Device) -> Tensor {
        let shape = shape.into();
        let storage = Storage::symbolic(
            shape.numel(),
            device.default_dtype(),
            device.default_class(),
            device,
        );
        Tensor::over(storage, shape)
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize, device: &Device) -> Tensor {
        if device.is_symbolic() {
            return Tensor::symbolic([n, n], device);
        }
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, [n, n], device)
    }

    /// Values `0, 1, …, n-1` as a 1-D tensor.
    pub fn arange(n: usize, device: &Device) -> Tensor {
        if device.is_symbolic() {
            return Tensor::symbolic([n], device);
        }
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n], device)
    }

    /// Standard-normal samples scaled by `std`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut Prng, device: &Device) -> Tensor {
        let shape = shape.into();
        if device.is_symbolic() {
            return Tensor::symbolic(shape, device);
        }
        let data = (0..shape.numel())
            .map(|_| rng.next_normal() * std)
            .collect();
        Tensor::from_vec(data, shape, device)
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(
        shape: impl Into<Shape>,
        lo: f32,
        hi: f32,
        rng: &mut Prng,
        device: &Device,
    ) -> Tensor {
        let shape = shape.into();
        if device.is_symbolic() {
            return Tensor::symbolic(shape, device);
        }
        let data = (0..shape.numel())
            .map(|_| lo + (hi - lo) * rng.next_f32())
            .collect();
        Tensor::from_vec(data, shape, device)
    }

    /// Wraps an existing storage with a contiguous view of `shape`.
    ///
    /// # Panics
    /// Panics if the shape's element count differs from the storage's.
    pub fn over(storage: Storage, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            storage.numel(),
            shape.numel(),
            "storage has {} elements but shape {shape} wants {}",
            storage.numel(),
            shape.numel()
        );
        let strides = shape.contiguous_strides();
        Tensor {
            storage,
            shape,
            strides,
            offset: 0,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying storage.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Weak handle to the storage, for forwarding.
    pub fn weak_storage(&self) -> WeakStorage {
        self.storage.downgrade()
    }

    /// Shape of this view.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Number of elements in this view.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Accounted bytes of this view (`numel * dtype width`).
    pub fn bytes(&self) -> u64 {
        self.numel() as u64 * self.dtype().byte_size()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// Memory class of the backing storage.
    pub fn mem_class(&self) -> MemClass {
        self.storage.mem_class()
    }

    /// Device of the backing storage.
    pub fn device(&self) -> &Device {
        self.storage.device()
    }

    /// Whether real values are present (false for symbolic or released
    /// storages).
    pub fn has_data(&self) -> bool {
        self.storage.has_data()
    }

    /// Whether this view is laid out contiguously in row-major order.
    pub fn is_contiguous(&self) -> bool {
        self.offset == 0 && self.strides == self.shape.contiguous_strides()
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    /// Returns a view with dimensions `a` and `b` swapped, sharing storage.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        assert!(a < self.rank() && b < self.rank(), "transpose out of range");
        let mut strides = self.strides.clone();
        strides.swap(a, b);
        Tensor {
            storage: self.storage.clone(),
            shape: self.shape.transposed(a, b),
            strides,
            offset: self.offset,
        }
    }

    /// Convenience transpose of the last two dimensions.
    ///
    /// # Panics
    /// Panics if the tensor has fewer than two dimensions.
    pub fn t(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 2, "t() requires rank >= 2");
        self.transpose(r - 2, r - 1)
    }

    /// Reinterprets a contiguous view under a new shape, sharing storage.
    ///
    /// # Panics
    /// Panics if the view is not contiguous or element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert!(self.is_contiguous(), "reshape of non-contiguous view");
        assert_eq!(self.numel(), shape.numel(), "reshape changes element count");
        let strides = shape.contiguous_strides();
        Tensor {
            storage: self.storage.clone(),
            shape,
            strides,
            offset: self.offset,
        }
    }

    /// Returns a contiguous tensor with the same values; clones data only
    /// when the view is strided. Symbolic tensors produce a fresh symbolic
    /// tensor of the same shape.
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            return self.clone();
        }
        if !self.has_data() {
            return Tensor::symbolic(self.shape.clone(), self.device());
        }
        Tensor::from_vec(self.to_vec(), self.shape.clone(), self.device())
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Copies this view's values into a contiguous vector.
    ///
    /// # Panics
    /// Panics if the tensor carries no data (symbolic or released).
    pub fn to_vec(&self) -> Vec<f32> {
        self.try_to_vec()
            .expect("to_vec on a tensor without data (symbolic or released)")
    }

    /// Like [`Tensor::to_vec`] but returns `None` when no data is present.
    pub fn try_to_vec(&self) -> Option<Vec<f32>> {
        self.storage.with_data(|data| {
            if self.is_contiguous() {
                return data[self.offset..self.offset + self.numel()].to_vec();
            }
            let mut out = Vec::with_capacity(self.numel());
            let dims = self.shape.dims();
            let mut idx = vec![0usize; dims.len()];
            for _ in 0..self.numel() {
                let mut off = self.offset;
                for (i, &ix) in idx.iter().enumerate() {
                    off += ix * self.strides[i];
                }
                out.push(data[off]);
                // Advance the multi-index.
                for d in (0..dims.len()).rev() {
                    idx[d] += 1;
                    if idx[d] < dims[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            out
        })
    }

    /// The single value of a scalar (or 1-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element or no data.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element");
        self.to_vec()[0]
    }

    /// Value at a multi-index.
    ///
    /// # Panics
    /// Panics on rank mismatch, out-of-range index, or missing data.
    pub fn at(&self, index: &[usize]) -> f32 {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = self.offset;
        for (d, &ix) in index.iter().enumerate() {
            assert!(ix < self.shape.dim(d), "index out of range in dim {d}");
            off += ix * self.strides[d];
        }
        self.storage
            .with_data(|data| data[off])
            .expect("at() on a tensor without data")
    }

    /// Creates a detached deep copy with the given memory class.
    ///
    /// # Panics
    /// Panics if data is absent on a numeric device.
    pub fn deep_clone_as(&self, class: MemClass) -> Tensor {
        let dev = self.device().clone();
        dev.with_class(class, || {
            if self.has_data() {
                Tensor::from_vec(self.to_vec(), self.shape.clone(), &dev)
            } else {
                Tensor::symbolic(self.shape.clone(), &dev)
            }
        })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape.to_string())
            .field("dtype", &self.dtype())
            .field("storage", &self.storage.id())
            .field("contiguous", &self.is_contiguous())
            .field("has_data", &self.has_data())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::cpu()
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &dev());
        assert_eq!(t.to_vec(), vec![1., 2., 3., 4.]);
        assert_eq!(t.dims(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1., 2., 3.], [2, 2], &dev());
    }

    #[test]
    fn transpose_shares_storage_and_gathers() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [2, 3], &dev());
        let tt = t.t();
        assert!(t.storage().ptr_eq(tt.storage()));
        assert!(!tt.is_contiguous());
        assert_eq!(tt.to_vec(), vec![1., 4., 2., 5., 3., 6.]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4], &dev());
        let back = t.transpose(0, 2).transpose(0, 2);
        assert_eq!(back.to_vec(), t.to_vec());
        assert!(back.is_contiguous());
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &dev());
        let r = t.reshape([4]);
        assert!(t.storage().ptr_eq(r.storage()));
        assert_eq!(r.to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn reshape_of_transposed_panics() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &dev());
        let _ = t.t().reshape([4]);
    }

    #[test]
    fn contiguous_materialises_strided_views() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2], &dev());
        let c = t.t().contiguous();
        assert!(c.is_contiguous());
        assert!(!t.storage().ptr_eq(c.storage()));
        assert_eq!(c.to_vec(), vec![1., 3., 2., 4.]);
    }

    #[test]
    fn eye_and_arange() {
        let i = Tensor::eye(3, &dev());
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        let a = Tensor::arange(4, &dev());
        assert_eq!(a.to_vec(), vec![0., 1., 2., 3.]);
    }

    #[test]
    fn symbolic_tensors_account_but_hold_nothing() {
        let d = Device::symbolic();
        let t = Tensor::zeros([8, 8], &d);
        assert!(!t.has_data());
        assert_eq!(t.bytes(), 128); // F16 default on symbolic devices
        assert!(t.try_to_vec().is_none());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Prng::seed_from_u64(9);
        let mut r2 = Prng::seed_from_u64(9);
        let a = Tensor::randn([4], 1.0, &mut r1, &dev());
        let b = Tensor::randn([4], 1.0, &mut r2, &dev());
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn deep_clone_detaches_storage() {
        let t = Tensor::from_vec(vec![1., 2.], [2], &dev());
        let c = t.deep_clone_as(MemClass::Gradient);
        assert!(!t.storage().ptr_eq(c.storage()));
        assert_eq!(c.mem_class(), MemClass::Gradient);
        assert_eq!(c.to_vec(), t.to_vec());
    }

    #[test]
    fn item_on_scalar() {
        let t = Tensor::from_vec(vec![42.0], [1], &dev());
        assert_eq!(t.item(), 42.0);
    }
}
