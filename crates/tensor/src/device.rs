//! Device contexts and memory tracking.
//!
//! A [`Device`] stands in for a CUDA device context: tensor storages created
//! on it report their accounted byte sizes to an optional [`MemTracker`],
//! which is how the simulated GPU memory allocator (in `ssdtrain-simhw`)
//! observes every allocation and free, reconstructing the memory-footprint
//! timeline of the paper's Figure 7.

use crate::dtype::DType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

/// Classification of a storage for memory accounting.
///
/// The paper's evaluation separates *activation* memory from everything
/// else (parameters, gradients, optimizer state); tagging allocations lets
/// the tracker report per-class peaks (Figures 10 and 11 report the
/// activations peak, Figure 7 the total footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MemClass {
    /// Model weights.
    Parameter,
    /// Gradients of model weights.
    Gradient,
    /// Optimizer state (momentum etc.).
    OptimizerState,
    /// Intermediate tensors produced in forward and reused in backward.
    #[default]
    Activation,
    /// Short-lived scratch (e.g. backward temporaries).
    Workspace,
}

impl MemClass {
    /// All classes, for iteration in reports.
    pub const ALL: [MemClass; 5] = [
        MemClass::Parameter,
        MemClass::Gradient,
        MemClass::OptimizerState,
        MemClass::Activation,
        MemClass::Workspace,
    ];

    /// Short stable label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            MemClass::Parameter => "param",
            MemClass::Gradient => "grad",
            MemClass::OptimizerState => "optim",
            MemClass::Activation => "activation",
            MemClass::Workspace => "workspace",
        }
    }

    fn from_u8(v: u8) -> MemClass {
        match v {
            0 => MemClass::Parameter,
            1 => MemClass::Gradient,
            2 => MemClass::OptimizerState,
            3 => MemClass::Activation,
            _ => MemClass::Workspace,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            MemClass::Parameter => 0,
            MemClass::Gradient => 1,
            MemClass::OptimizerState => 2,
            MemClass::Activation => 3,
            MemClass::Workspace => 4,
        }
    }
}

impl fmt::Display for MemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Observer of device-memory traffic.
///
/// Implemented by the simulated GPU allocator. `on_alloc` fires when a
/// storage's data becomes resident (creation or reload from an offload
/// target); `on_free` fires when it is released (drop or offload
/// completion).
pub trait MemTracker: Send + Sync {
    /// Called when `bytes` of class `class` become resident.
    fn on_alloc(&self, bytes: u64, class: MemClass);
    /// Called when `bytes` of class `class` are released.
    fn on_free(&self, bytes: u64, class: MemClass);
}

/// A no-op tracker, useful in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracker;

impl MemTracker for NullTracker {
    fn on_alloc(&self, _bytes: u64, _class: MemClass) {}
    fn on_free(&self, _bytes: u64, _class: MemClass) {}
}

struct DeviceInner {
    tracker: parking_lot::RwLock<Option<Arc<dyn MemTracker>>>,
    default_class: AtomicU8,
    default_dtype: AtomicU8,
    symbolic: AtomicBool,
    name: String,
}

/// A device context on which tensors are allocated.
///
/// Cloning is cheap (shared handle). The *default memory class* is ambient
/// state toggled by the training loop: during forward propagation new
/// tensors are activations, during optimizer steps they are optimizer
/// state, and so on.
///
/// ```
/// use ssdtrain_tensor::{Device, MemClass, Tensor};
/// let dev = Device::cpu();
/// dev.set_default_class(MemClass::Parameter);
/// let w = Tensor::zeros(&[4, 4], &dev);
/// assert_eq!(w.mem_class(), MemClass::Parameter);
/// ```
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// A plain numeric device with no tracker attached.
    pub fn cpu() -> Device {
        Device::with_name("cpu", false)
    }

    /// A device that propagates shapes only; storages created on it carry
    /// no data. Used for paper-scale runs.
    pub fn symbolic() -> Device {
        Device::with_name("symbolic", true)
    }

    fn with_name(name: &str, symbolic: bool) -> Device {
        // Numeric devices default to F32 (exact offload round trips);
        // symbolic devices default to F16, matching the paper's FP16 runs.
        let dtype = if symbolic { DType::F16 } else { DType::F32 };
        Device {
            inner: Arc::new(DeviceInner {
                tracker: parking_lot::RwLock::new(None),
                default_class: AtomicU8::new(MemClass::Activation.as_u8()),
                default_dtype: AtomicU8::new(dtype_to_u8(dtype)),
                symbolic: AtomicBool::new(symbolic),
                name: name.to_owned(),
            }),
        }
    }

    /// Element type assigned to tensors created without an explicit dtype.
    pub fn default_dtype(&self) -> DType {
        dtype_from_u8(self.inner.default_dtype.load(Ordering::Relaxed))
    }

    /// Sets the dtype used by tensor constructors on this device.
    pub fn set_default_dtype(&self, dtype: DType) {
        self.inner
            .default_dtype
            .store(dtype_to_u8(dtype), Ordering::Relaxed);
    }

    /// Runs `f` with the default dtype temporarily set to `dtype` (used
    /// e.g. to create one-byte dropout masks).
    pub fn with_dtype<R>(&self, dtype: DType, f: impl FnOnce() -> R) -> R {
        let prev = self.default_dtype();
        self.set_default_dtype(dtype);
        let r = f();
        self.set_default_dtype(prev);
        r
    }

    /// Whether tensors created here are shape-only.
    pub fn is_symbolic(&self) -> bool {
        self.inner.symbolic.load(Ordering::Relaxed)
    }

    /// Attaches a memory tracker; subsequent storage traffic is reported to
    /// it. Replaces any previous tracker.
    pub fn set_tracker(&self, tracker: Arc<dyn MemTracker>) {
        *self.inner.tracker.write() = Some(tracker);
    }

    /// Removes the tracker.
    pub fn clear_tracker(&self) {
        *self.inner.tracker.write() = None;
    }

    /// Current default class assigned to new storages.
    pub fn default_class(&self) -> MemClass {
        MemClass::from_u8(self.inner.default_class.load(Ordering::Relaxed))
    }

    /// Sets the class assigned to storages created from now on.
    pub fn set_default_class(&self, class: MemClass) {
        self.inner
            .default_class
            .store(class.as_u8(), Ordering::Relaxed);
    }

    /// Runs `f` with the default class temporarily set to `class`.
    pub fn with_class<R>(&self, class: MemClass, f: impl FnOnce() -> R) -> R {
        let prev = self.default_class();
        self.set_default_class(class);
        let r = f();
        self.set_default_class(prev);
        r
    }

    pub(crate) fn notify_alloc(&self, bytes: u64, class: MemClass) {
        if let Some(t) = self.inner.tracker.read().as_ref() {
            t.on_alloc(bytes, class);
        }
    }

    pub(crate) fn notify_free(&self, bytes: u64, class: MemClass) {
        if let Some(t) = self.inner.tracker.read().as_ref() {
            t.on_free(bytes, class);
        }
    }

    /// True if both handles refer to the same device.
    pub fn same_device(&self, other: &Device) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

fn dtype_to_u8(d: DType) -> u8 {
    match d {
        DType::F16 => 0,
        DType::Bf16 => 1,
        DType::F32 => 2,
        DType::U8 => 3,
    }
}

fn dtype_from_u8(v: u8) -> DType {
    match v {
        0 => DType::F16,
        1 => DType::Bf16,
        3 => DType::U8,
        _ => DType::F32,
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.name)
            .field("symbolic", &self.is_symbolic())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Default)]
    struct Counting {
        alloc: AtomicU64,
        free: AtomicU64,
    }

    impl MemTracker for Counting {
        fn on_alloc(&self, bytes: u64, _c: MemClass) {
            self.alloc.fetch_add(bytes, Ordering::Relaxed);
        }
        fn on_free(&self, bytes: u64, _c: MemClass) {
            self.free.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    #[test]
    fn tracker_sees_traffic() {
        let dev = Device::cpu();
        let t = Arc::new(Counting::default());
        dev.set_tracker(t.clone());
        dev.notify_alloc(128, MemClass::Activation);
        dev.notify_free(64, MemClass::Activation);
        assert_eq!(t.alloc.load(Ordering::Relaxed), 128);
        assert_eq!(t.free.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn with_class_restores_previous() {
        let dev = Device::cpu();
        dev.set_default_class(MemClass::Parameter);
        let inside = dev.with_class(MemClass::Gradient, || dev.default_class());
        assert_eq!(inside, MemClass::Gradient);
        assert_eq!(dev.default_class(), MemClass::Parameter);
    }

    #[test]
    fn symbolic_flag() {
        assert!(Device::symbolic().is_symbolic());
        assert!(!Device::cpu().is_symbolic());
    }

    #[test]
    fn same_device_identity() {
        let dev = Device::cpu();
        let clone = dev.clone();
        assert!(dev.same_device(&clone));
        assert!(!dev.same_device(&Device::cpu()));
    }
}
