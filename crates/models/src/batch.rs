//! Synthetic training batches.
//!
//! The paper trains on the OSCAR corpus; none of its measurements depend
//! on token *values*, only on tensor shapes, so a seeded synthetic token
//! stream is an exact substitute (see DESIGN.md).

use crate::config::{Arch, ModelConfig};
use ssdtrain_tensor::{Device, Prng, Tensor};

/// One training batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input token ids, `[batch, seq]` (encoder side for T5).
    pub tokens: Tensor,
    /// Decoder input ids for T5, `[batch, seq]`.
    pub dec_tokens: Option<Tensor>,
    /// Target token ids, `[batch, seq]`.
    pub targets: Tensor,
    /// Batch size.
    pub batch: usize,
}

impl Batch {
    /// Generates a deterministic batch for `cfg` with the given seed.
    pub fn synthetic(cfg: &ModelConfig, batch: usize, seed: u64, device: &Device) -> Batch {
        let mut rng = Prng::seed_from_u64(seed);
        let n = batch * cfg.seq;
        let draw = |rng: &mut Prng| -> Tensor {
            if device.is_symbolic() {
                Tensor::symbolic([batch, cfg.seq], device)
            } else {
                let ids: Vec<f32> = (0..n)
                    .map(|_| rng.next_below(cfg.vocab as u64) as f32)
                    .collect();
                Tensor::from_vec(ids, [batch, cfg.seq], device)
            }
        };
        let tokens = draw(&mut rng);
        let dec_tokens = match cfg.arch {
            Arch::T5 => Some(draw(&mut rng)),
            _ => None,
        };
        // Next-token targets: the input shifted by one with a fresh final
        // token (GPT); BERT reconstructs its inputs; T5 predicts the
        // decoder stream shifted. All reduce to "a [batch, seq] id
        // tensor", which is what the loss needs.
        let targets = draw(&mut rng);
        Batch {
            tokens,
            dec_tokens,
            targets,
            batch,
        }
    }

    /// Total input tokens in this batch.
    pub fn token_count(&self) -> usize {
        self.tokens.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let a = Batch::synthetic(&cfg, 2, 5, &dev);
        let b = Batch::synthetic(&cfg, 2, 5, &dev);
        assert_eq!(a.tokens.to_vec(), b.tokens.to_vec());
        assert_eq!(a.targets.to_vec(), b.targets.to_vec());
    }

    #[test]
    fn ids_are_in_vocab_range() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let b = Batch::synthetic(&cfg, 4, 9, &dev);
        for id in b.tokens.to_vec() {
            assert!((id as usize) < cfg.vocab);
        }
        assert_eq!(b.token_count(), 4 * cfg.seq);
    }

    #[test]
    fn t5_batches_carry_decoder_tokens() {
        let dev = Device::cpu();
        let b = Batch::synthetic(&ModelConfig::tiny_t5(), 2, 1, &dev);
        assert!(b.dec_tokens.is_some());
        let b2 = Batch::synthetic(&ModelConfig::tiny_gpt(), 2, 1, &dev);
        assert!(b2.dec_tokens.is_none());
    }

    #[test]
    fn symbolic_batches_have_shape_only() {
        let dev = Device::symbolic();
        let b = Batch::synthetic(&ModelConfig::tiny_gpt(), 2, 1, &dev);
        assert_eq!(b.tokens.dims(), &[2, 8]);
        assert!(!b.tokens.has_data());
    }
}
