//! A stack of transformer layers with selectable activation placement.

use crate::blocks::TransformerLayer;
use crate::config::{ModelConfig, Recompute};
use ssdtrain_autograd::{Graph, Value, Var};
use ssdtrain_tensor::{Device, Prng};
use std::sync::Arc;

/// `n` transformer layers applied in sequence, each under a
/// `"{prefix}{i}"` module scope.
#[derive(Debug, Clone)]
pub struct TransformerStack {
    layers: Vec<Arc<TransformerLayer>>,
    prefix: String,
}

impl TransformerStack {
    /// Builds `n` layers.
    pub fn new(
        prefix: &str,
        n: usize,
        cfg: &ModelConfig,
        causal: bool,
        with_cross: bool,
        rng: &mut Prng,
        dev: &Device,
    ) -> TransformerStack {
        let layers = (0..n)
            .map(|i| {
                TransformerLayer::new(&format!("{prefix}{i}"), cfg, causal, with_cross, rng, dev)
            })
            .collect();
        TransformerStack {
            layers,
            prefix: prefix.to_owned(),
        }
    }

    /// Applies every layer; layers selected by `recompute` run under
    /// activation checkpointing.
    pub fn forward(
        &self,
        g: &Graph,
        x: &Value,
        ctx: Option<&Value>,
        recompute: Recompute,
    ) -> Value {
        self.forward_range(g, x, ctx, 0..self.layers.len(), recompute)
    }

    /// Applies only the layers in `range` — one pipeline stage's slice.
    ///
    /// # Panics
    /// Panics if the range exceeds the stack.
    pub fn forward_range(
        &self,
        g: &Graph,
        x: &Value,
        ctx: Option<&Value>,
        range: std::ops::Range<usize>,
        recompute: Recompute,
    ) -> Value {
        assert!(range.end <= self.layers.len(), "stage range out of bounds");
        let mut h = x.clone();
        for i in range {
            let layer = &self.layers[i];
            h = g.scoped(&format!("{}{}", self.prefix, i), || {
                if recompute.applies_to(i) {
                    layer.forward_checkpointed(g, &h, ctx)
                } else {
                    layer.forward(g, &h, ctx)
                }
            });
        }
        h
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// All parameters in layer order.
    pub fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Tensor;

    #[test]
    fn stack_applies_all_layers() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let mut rng = Prng::seed_from_u64(1);
        let stack = TransformerStack::new("layer", 3, &cfg, true, false, &mut rng, &dev);
        assert_eq!(stack.len(), 3);
        let g = Graph::new(&dev, 1);
        let x = g.constant(Tensor::ones([1, cfg.seq, cfg.hidden], &dev));
        let y = stack.forward(&g, &x, None, Recompute::None);
        assert_eq!(y.dims(), x.dims());
        // 3 layers × (2 LN + 4×(w+b) attn + 2×(w+b) mlp) vars.
        assert_eq!(stack.parameters().len(), 3 * (4 + 8 + 4));
    }

    #[test]
    fn recompute_path_matches_plain() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let mut rng = Prng::seed_from_u64(2);
        let stack = TransformerStack::new("layer", 2, &cfg, true, false, &mut rng, &dev);
        let mut xr = Prng::seed_from_u64(3);
        let x0 = Tensor::randn([1, cfg.seq, cfg.hidden], 0.4, &mut xr, &dev);
        let g1 = Graph::new(&dev, 5);
        let y1 = stack.forward(&g1, &g1.constant(x0.clone()), None, Recompute::None);
        let g2 = Graph::new(&dev, 5);
        let y2 = stack.forward(&g2, &g2.constant(x0), None, Recompute::All);
        assert_eq!(y1.tensor().to_vec(), y2.tensor().to_vec());
    }
}
