//! # ssdtrain-models
//!
//! Transformer model zoo for the SSDTrain evaluation: **GPT**
//! (decoder-only), **BERT** (encoder-only) and **T5** (encoder-decoder) —
//! the three architectures of the paper's Section 4 — built on
//! `ssdtrain-autograd` with module scopes that match the paper's
//! Figure 3/Figure 8 breakdown (per-layer attention and MLP blocks).
//!
//! Models run numerically at test scale and symbolically at paper scale
//! (hidden 8192–16384, sequence 1024, head dim 128) from the same code.
//!
//! ```
//! use ssdtrain_models::{Batch, Model, ModelConfig, Recompute};
//! use ssdtrain_autograd::Graph;
//! use ssdtrain_tensor::Device;
//!
//! let dev = Device::cpu();
//! let cfg = ModelConfig::tiny_gpt();
//! let model = Model::build(&cfg, &dev, 42);
//! let g = Graph::new(&dev, 1);
//! let batch = Batch::synthetic(&cfg, 2, 7, &dev);
//! let loss = model.forward_loss(&g, &batch, Recompute::None);
//! assert!(loss.tensor().item().is_finite());
//! ```

pub mod batch;
pub mod bert;
pub mod blocks;
pub mod config;
pub mod gpt;
pub mod layers;
pub mod model;
pub mod stack;
pub mod t5;

pub use batch::Batch;
pub use bert::BertModel;
pub use config::{Arch, ModelConfig, Recompute};
pub use gpt::GptModel;
pub use model::Model;
pub use model::StagedModel;
