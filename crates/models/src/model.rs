//! The unified model handle.

use crate::batch::Batch;
use crate::bert::BertModel;
use crate::config::{Arch, ModelConfig, Recompute};
use crate::gpt::GptModel;
use crate::t5::T5Model;
use ssdtrain_autograd::{Graph, Value, Var};
use ssdtrain_tensor::Device;

/// A model that can be split into pipeline stages: an embedding
/// prologue, a contiguous slice of transformer layers per stage, and a
/// loss epilogue. Implemented by GPT and BERT (T5's cross-attention
/// broadcasts the encoder output to every decoder stage and is out of
/// scope for the functional pipeline trainer).
pub trait StagedModel {
    /// Embedding front (stage 0's prologue).
    fn forward_embed(&self, g: &Graph, batch: &Batch) -> Value;
    /// One stage's contiguous layer slice.
    fn forward_layers(
        &self,
        g: &Graph,
        x: &Value,
        range: std::ops::Range<usize>,
        recompute: Recompute,
    ) -> Value;
    /// Loss epilogue (the last stage).
    fn forward_head_loss(&self, g: &Graph, h: &Value, batch: &Batch) -> Value;
    /// Number of splittable layers.
    fn layer_count(&self) -> usize;
    /// All trainable parameters.
    fn stage_parameters(&self) -> Vec<Var>;
}

/// Any of the three evaluation architectures behind one interface.
#[derive(Debug, Clone)]
pub enum Model {
    /// Decoder-only.
    Gpt(GptModel),
    /// Encoder-only.
    Bert(BertModel),
    /// Encoder-decoder.
    T5(T5Model),
}

impl Model {
    /// Builds the architecture selected by `cfg.arch`.
    pub fn build(cfg: &ModelConfig, dev: &Device, seed: u64) -> Model {
        match cfg.arch {
            Arch::Gpt => Model::Gpt(GptModel::new(cfg, dev, seed)),
            Arch::Bert => Model::Bert(BertModel::new(cfg, dev, seed)),
            Arch::T5 => Model::T5(T5Model::new(cfg, dev, seed)),
        }
    }

    /// Forward pass to the scalar training loss.
    pub fn forward_loss(&self, g: &Graph, batch: &Batch, recompute: Recompute) -> Value {
        match self {
            Model::Gpt(m) => m.forward_loss(g, batch, recompute),
            Model::Bert(m) => m.forward_loss(g, batch, recompute),
            Model::T5(m) => m.forward_loss(g, batch, recompute),
        }
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        match self {
            Model::Gpt(m) => m.parameters(),
            Model::Bert(m) => m.parameters(),
            Model::T5(m) => m.parameters(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        match self {
            Model::Gpt(m) => m.config(),
            Model::Bert(m) => m.config(),
            Model::T5(m) => m.config(),
        }
    }

    /// Total parameter count (exact, from the instantiated tensors).
    pub fn param_count(&self) -> u64 {
        self.parameters().iter().map(|p| p.numel() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches_on_arch() {
        let dev = Device::cpu();
        assert!(matches!(
            Model::build(&ModelConfig::tiny_gpt(), &dev, 1),
            Model::Gpt(_)
        ));
        assert!(matches!(
            Model::build(&ModelConfig::tiny_bert(), &dev, 1),
            Model::Bert(_)
        ));
        assert!(matches!(
            Model::build(&ModelConfig::tiny_t5(), &dev, 1),
            Model::T5(_)
        ));
    }

    #[test]
    fn param_count_tracks_hidden_squared_growth() {
        // Symbolic devices cost nothing; check the ~12·L·H² transformer
        // parameter law at paper shapes.
        let dev = Device::symbolic();
        let cfg = ModelConfig::paper_scale(Arch::Bert, 1024, 3);
        let m = Model::build(&cfg, &dev, 1);
        let n = m.param_count() as f64;
        let law = 12.0 * 3.0 * 1024.0f64.powi(2);
        // Embeddings and the MLM head add vocab terms on top of the law.
        let extra = 2.0 * 50304.0 * 1024.0;
        assert!(
            (n / (law + extra) - 1.0).abs() < 0.15,
            "count {n} vs law {law} + {extra}"
        );
    }

    #[test]
    fn all_three_archs_train_one_numeric_step() {
        let dev = Device::cpu();
        for cfg in [
            ModelConfig::tiny_gpt(),
            ModelConfig::tiny_bert(),
            ModelConfig::tiny_t5(),
        ] {
            let m = Model::build(&cfg, &dev, 7);
            let g = Graph::new(&dev, 1);
            let b = Batch::synthetic(&cfg, 2, 2, &dev);
            let loss = m.forward_loss(&g, &b, Recompute::None);
            assert!(loss.tensor().item().is_finite(), "{}", cfg.tag());
            g.backward(&loss);
            let with_grads = m.parameters().iter().filter(|p| p.grad().is_some()).count();
            assert_eq!(with_grads, m.parameters().len(), "{}", cfg.tag());
        }
    }
}
