//! T5: the encoder-decoder model.

use crate::batch::Batch;
use crate::config::{ModelConfig, Recompute};
use crate::layers::{maybe_dropout, Embedding, LayerNorm, Linear};
use crate::stack::TransformerStack;
use ssdtrain_autograd::{ops, Graph, Value, Var};
use ssdtrain_tensor::{Device, Prng};

/// A T5-style encoder-decoder: a bidirectional encoder stack, a causal
/// decoder stack whose layers cross-attend to the encoder output, and an
/// LM head over the decoder states. Per the paper (Section 4.1), the
/// decoder gets `L/2` layers rounded down.
#[derive(Debug, Clone)]
pub struct T5Model {
    cfg: ModelConfig,
    enc_embed: Embedding,
    dec_embed: Embedding,
    encoder: TransformerStack,
    decoder: TransformerStack,
    ln_f: LayerNorm,
    head: Linear,
}

impl T5Model {
    /// Builds the model with deterministic initialisation.
    pub fn new(cfg: &ModelConfig, dev: &Device, seed: u64) -> T5Model {
        let mut rng = Prng::seed_from_u64(seed);
        T5Model {
            cfg: cfg.clone(),
            enc_embed: Embedding::new("enc_embed", cfg.vocab, cfg.seq, cfg.hidden, &mut rng, dev),
            dec_embed: Embedding::new("dec_embed", cfg.vocab, cfg.seq, cfg.hidden, &mut rng, dev),
            encoder: TransformerStack::new(
                "enc",
                cfg.encoder_layers(),
                cfg,
                false,
                false,
                &mut rng,
                dev,
            ),
            decoder: TransformerStack::new(
                "dec",
                cfg.decoder_layers(),
                cfg,
                true,
                true,
                &mut rng,
                dev,
            ),
            ln_f: LayerNorm::new("ln_f", cfg.hidden, dev),
            head: Linear::new_no_bias("head", cfg.hidden, cfg.vocab / cfg.tp, &mut rng, dev),
        }
    }

    /// Forward pass to the mean cross-entropy loss over decoder outputs.
    ///
    /// # Panics
    /// Panics if the batch lacks decoder tokens.
    pub fn forward_loss(&self, g: &Graph, batch: &Batch, recompute: Recompute) -> Value {
        let enc_ids = g.constant(batch.tokens.clone());
        let enc_h = g.scoped("enc_embed", || {
            let e = self.enc_embed.forward(g, &enc_ids);
            maybe_dropout(g, &e, self.cfg.dropout_p)
        });
        let enc_out = self.encoder.forward(g, &enc_h, None, recompute);

        let dec_tokens = batch
            .dec_tokens
            .as_ref()
            .expect("T5 batch needs decoder tokens");
        let dec_ids = g.constant(dec_tokens.clone());
        let dec_h = g.scoped("dec_embed", || {
            let e = self.dec_embed.forward(g, &dec_ids);
            maybe_dropout(g, &e, self.cfg.dropout_p)
        });
        let dec_out = self.decoder.forward(g, &dec_h, Some(&enc_out), recompute);

        g.scoped("head", || {
            let normed = self.ln_f.forward(g, &dec_out);
            let logits = self.head.forward(g, &normed);
            let n = batch.batch * self.cfg.seq;
            let flat = ops::reshape(g, &logits, [n, self.cfg.vocab / self.cfg.tp]);
            let targets = g.constant(batch.targets.clone());
            ops::cross_entropy_mean(g, &flat, &targets)
        })
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.enc_embed.parameters();
        p.extend(self.dec_embed.parameters());
        p.extend(self.encoder.parameters());
        p.extend(self.decoder.parameters());
        p.extend(self.ln_f.parameters());
        p.extend(self.head.parameters());
        p
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_split_per_config() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_t5();
        let m = T5Model::new(&cfg, &dev, 1);
        assert_eq!(m.encoder.len(), 2);
        assert_eq!(m.decoder.len(), 2);
    }

    #[test]
    fn loss_backward_reaches_encoder_parameters() {
        // Gradient flow through cross-attention: encoder weights must
        // receive gradients from the decoder loss.
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_t5();
        let m = T5Model::new(&cfg, &dev, 2);
        let g = Graph::new(&dev, 1);
        let b = Batch::synthetic(&cfg, 2, 3, &dev);
        let loss = m.forward_loss(&g, &b, Recompute::None);
        assert!(loss.tensor().item().is_finite());
        g.backward(&loss);
        for p in m.encoder.parameters() {
            assert!(
                p.grad().is_some(),
                "encoder param {} missing grad",
                p.name()
            );
        }
    }

    #[test]
    fn recompute_matches_plain() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_t5();
        let m = T5Model::new(&cfg, &dev, 3);
        let b = Batch::synthetic(&cfg, 1, 13, &dev);
        let l1 = {
            let g = Graph::new(&dev, 6);
            m.forward_loss(&g, &b, Recompute::None).tensor().item()
        };
        let l2 = {
            let g = Graph::new(&dev, 6);
            m.forward_loss(&g, &b, Recompute::All).tensor().item()
        };
        assert_eq!(l1, l2);
    }
}
