//! Primitive layers: linear, layer-norm, embedding.

use ssdtrain_autograd::{ops, Graph, Value, Var};
use ssdtrain_tensor::{Device, MemClass, Prng, Tensor};

/// Creates a parameter tensor (tagged [`MemClass::Parameter`]).
fn param(name: &str, dims: &[usize], std: f32, rng: &mut Prng, dev: &Device) -> Var {
    let t = dev.with_class(MemClass::Parameter, || {
        if std == 0.0 {
            Tensor::zeros(dims, dev)
        } else {
            Tensor::randn(dims, std, rng, dev)
        }
    });
    Var::new(name, t)
}

fn ones_param(name: &str, dims: &[usize], dev: &Device) -> Var {
    let t = dev.with_class(MemClass::Parameter, || Tensor::ones(dims, dev));
    Var::new(name, t)
}

/// A dense projection `y = x @ w + b` with weight `[in, out]`.
///
/// (PyTorch stores the transpose `[out, in]` and saves a transposed view
/// for backward; the identity-stamp behaviour that covers is unit-tested
/// in `ssdtrain::id`. Storing `[in, out]` keeps gradients view-free.)
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, `[in, out]`.
    pub weight: Var,
    /// Bias, `[out]`; LM heads go bias-free (GPT-2 style), which also
    /// halves the vocab-sized transient at the loss.
    pub bias: Option<Var>,
}

impl Linear {
    /// Creates a linear layer with scaled-normal init and a bias.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut Prng, dev: &Device) -> Linear {
        let std = 0.02f32.max(1.0 / (d_in as f32).sqrt() * 0.5);
        Linear {
            weight: param(&format!("{name}.weight"), &[d_in, d_out], std, rng, dev),
            bias: Some(param(&format!("{name}.bias"), &[d_out], 0.0, rng, dev)),
        }
    }

    /// Creates a bias-free projection.
    pub fn new_no_bias(
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut Prng,
        dev: &Device,
    ) -> Linear {
        let std = 0.02f32.max(1.0 / (d_in as f32).sqrt() * 0.5);
        Linear {
            weight: param(&format!("{name}.weight"), &[d_in, d_out], std, rng, dev),
            bias: None,
        }
    }

    /// Applies the projection.
    pub fn forward(&self, g: &Graph, x: &Value) -> Value {
        let h = ops::matmul(g, x, &g.leaf(&self.weight));
        match &self.bias {
            Some(b) => ops::add_bias(g, &h, &g.leaf(b)),
            None => h,
        }
    }

    /// This layer's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        p.extend(self.bias.clone());
        p
    }
}

/// Layer normalisation with learnable `gamma`/`beta`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, `[hidden]`.
    pub gamma: Var,
    /// Shift, `[hidden]`.
    pub beta: Var,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm over the last dimension of width `hidden`.
    pub fn new(name: &str, hidden: usize, dev: &Device) -> LayerNorm {
        LayerNorm {
            gamma: ones_param(&format!("{name}.gamma"), &[hidden], dev),
            beta: Var::new(
                format!("{name}.beta"),
                dev.with_class(MemClass::Parameter, || Tensor::zeros([hidden], dev)),
            ),
            eps: 1e-5,
        }
    }

    /// Applies the normalisation.
    pub fn forward(&self, g: &Graph, x: &Value) -> Value {
        ops::layernorm(g, x, &g.leaf(&self.gamma), &g.leaf(&self.beta), self.eps)
    }

    /// This layer's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Token + learned-position embedding.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token table, `[vocab, hidden]`.
    pub tokens: Var,
    /// Position table, `[seq, hidden]`.
    pub positions: Var,
    seq: usize,
}

impl Embedding {
    /// Creates the embedding tables.
    pub fn new(
        name: &str,
        vocab: usize,
        seq: usize,
        hidden: usize,
        rng: &mut Prng,
        dev: &Device,
    ) -> Embedding {
        Embedding {
            tokens: param(&format!("{name}.tok"), &[vocab, hidden], 0.02, rng, dev),
            positions: param(&format!("{name}.pos"), &[seq, hidden], 0.02, rng, dev),
            seq,
        }
    }

    /// Embeds `[batch, seq]` token ids into `[batch, seq, hidden]`
    /// vectors with positional information.
    pub fn forward(&self, g: &Graph, ids: &Value) -> Value {
        let tok = ops::embedding(g, &g.leaf(&self.tokens), ids);
        // Position ids: one row of 0..seq per batch row.
        let b = ids.dims()[0];
        let dev = g.device().clone();
        let pos_ids = if dev.is_symbolic() {
            Tensor::symbolic([b, self.seq], &dev)
        } else {
            let row: Vec<f32> = (0..self.seq).map(|i| i as f32).collect();
            let mut all = Vec::with_capacity(b * self.seq);
            for _ in 0..b {
                all.extend_from_slice(&row);
            }
            Tensor::from_vec(all, [b, self.seq], &dev)
        };
        let pos = ops::embedding(g, &g.leaf(&self.positions), &g.constant(pos_ids));
        ops::add(g, &tok, &pos)
    }

    /// This layer's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.tokens.clone(), self.positions.clone()]
    }
}

/// Applies dropout when `p > 0` (a no-op wrapper otherwise, so tiny
/// deterministic tests can disable it).
pub fn maybe_dropout(g: &Graph, x: &Value, p: f32) -> Value {
    if p > 0.0 {
        ops::dropout(g, x, p)
    } else {
        x.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_autograd::ops::{mean_all, sum_all};

    #[test]
    fn linear_shapes_and_grads() {
        let dev = Device::cpu();
        let mut rng = Prng::seed_from_u64(1);
        let lin = Linear::new("l", 4, 6, &mut rng, &dev);
        let g = Graph::new(&dev, 1);
        let x = g.constant(Tensor::ones([2, 4], &dev));
        let y = lin.forward(&g, &x);
        assert_eq!(y.dims(), &[2, 6]);
        let loss = sum_all(&g, &y);
        g.backward(&loss);
        assert!(lin.weight.grad().is_some());
        assert_eq!(
            lin.bias.as_ref().unwrap().grad().unwrap().to_vec(),
            vec![2.0; 6]
        );
    }

    #[test]
    fn layernorm_normalises_and_learns() {
        let dev = Device::cpu();
        let ln = LayerNorm::new("ln", 4, &dev);
        let g = Graph::new(&dev, 1);
        let x = g.constant(Tensor::from_vec(vec![1., 2., 3., 4.], [1, 4], &dev));
        let y = ln.forward(&g, &x);
        let v = y.tensor().to_vec();
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        let loss = mean_all(&g, &y);
        g.backward(&loss);
        assert!(ln.gamma.grad().is_some() && ln.beta.grad().is_some());
    }

    #[test]
    fn embedding_adds_positions() {
        let dev = Device::cpu();
        let mut rng = Prng::seed_from_u64(2);
        let emb = Embedding::new("e", 5, 3, 2, &mut rng, &dev);
        let g = Graph::new(&dev, 1);
        let ids = g.constant(Tensor::from_vec(vec![0., 0., 0.], [1, 3], &dev));
        let y = emb.forward(&g, &ids);
        assert_eq!(y.dims(), &[1, 3, 2]);
        // Same token at different positions must differ (positions add).
        let v = y.tensor().to_vec();
        assert_ne!(v[0..2], v[2..4]);
    }

    #[test]
    fn parameters_are_tagged_parameter_class() {
        let dev = Device::cpu();
        let mut rng = Prng::seed_from_u64(3);
        let lin = Linear::new("l", 2, 2, &mut rng, &dev);
        assert_eq!(lin.weight.tensor().mem_class(), MemClass::Parameter);
        assert_eq!(
            lin.bias.as_ref().unwrap().tensor().mem_class(),
            MemClass::Parameter
        );
        let ln = LayerNorm::new("n", 2, &dev);
        assert_eq!(ln.gamma.tensor().mem_class(), MemClass::Parameter);
    }
}
