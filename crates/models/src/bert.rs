//! BERT: the encoder-only model.

use crate::batch::Batch;
use crate::config::{ModelConfig, Recompute};
use crate::layers::{maybe_dropout, Embedding, LayerNorm, Linear};
use crate::stack::TransformerStack;
use ssdtrain_autograd::{ops, Graph, Value, Var};
use ssdtrain_tensor::{Device, Prng};

impl crate::model::StagedModel for BertModel {
    fn forward_embed(&self, g: &Graph, batch: &Batch) -> Value {
        BertModel::forward_embed(self, g, batch)
    }
    fn forward_layers(
        &self,
        g: &Graph,
        x: &Value,
        range: std::ops::Range<usize>,
        recompute: Recompute,
    ) -> Value {
        self.stack.forward_range(g, x, None, range, recompute)
    }
    fn forward_head_loss(&self, g: &Graph, h: &Value, batch: &Batch) -> Value {
        BertModel::forward_head_loss(self, g, h, batch)
    }
    fn layer_count(&self) -> usize {
        self.stack.len()
    }
    fn stage_parameters(&self) -> Vec<Var> {
        self.parameters()
    }
}

/// A BERT-style bidirectional encoder with a masked-LM head. Pretraining
/// here reconstructs the target token at every position (the shapes and
/// FLOPs of MLM, which is all the evaluation depends on).
#[derive(Debug, Clone)]
pub struct BertModel {
    cfg: ModelConfig,
    embed: Embedding,
    stack: TransformerStack,
    ln_f: LayerNorm,
    head: Linear,
}

impl BertModel {
    /// Builds the model with deterministic initialisation.
    pub fn new(cfg: &ModelConfig, dev: &Device, seed: u64) -> BertModel {
        let mut rng = Prng::seed_from_u64(seed);
        BertModel {
            cfg: cfg.clone(),
            embed: Embedding::new("embed", cfg.vocab, cfg.seq, cfg.hidden, &mut rng, dev),
            // Bidirectional: no causal mask.
            stack: TransformerStack::new("layer", cfg.layers, cfg, false, false, &mut rng, dev),
            ln_f: LayerNorm::new("ln_f", cfg.hidden, dev),
            head: Linear::new_no_bias("mlm_head", cfg.hidden, cfg.vocab / cfg.tp, &mut rng, dev),
        }
    }

    /// Forward pass to the mean cross-entropy loss.
    pub fn forward_loss(&self, g: &Graph, batch: &Batch, recompute: Recompute) -> Value {
        let h = self.forward_embed(g, batch);
        let h = self
            .stack
            .forward_range(g, &h, None, 0..self.stack.len(), recompute);
        self.forward_head_loss(g, &h, batch)
    }

    /// Embedding front of the model (pipeline stage 0's prologue).
    pub fn forward_embed(&self, g: &Graph, batch: &Batch) -> Value {
        let ids = g.constant(batch.tokens.clone());
        g.scoped("embed", || {
            let e = self.embed.forward(g, &ids);
            maybe_dropout(g, &e, self.cfg.dropout_p)
        })
    }

    /// Final layer-norm + MLM head + loss (the last stage's epilogue).
    pub fn forward_head_loss(&self, g: &Graph, h: &Value, batch: &Batch) -> Value {
        g.scoped("head", || {
            let normed = self.ln_f.forward(g, h);
            let logits = self.head.forward(g, &normed);
            let n = batch.batch * self.cfg.seq;
            let flat = ops::reshape(g, &logits, [n, self.cfg.vocab / self.cfg.tp]);
            let targets = g.constant(batch.targets.clone());
            ops::cross_entropy_mean(g, &flat, &targets)
        })
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.embed.parameters();
        p.extend(self.stack.parameters());
        p.extend(self.ln_f.parameters());
        p.extend(self.head.parameters());
        p
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::Tensor;

    #[test]
    fn bidirectional_attention_sees_the_future() {
        // Unlike GPT, changing a later token must change position-0
        // hidden states.
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_bert();
        let m = BertModel::new(&cfg, &dev, 3);

        let hidden_at_pos0 = |last_tok: f32| -> Vec<f32> {
            let g = Graph::new(&dev, 1);
            let mut toks = vec![1.0f32; cfg.seq];
            *toks.last_mut().expect("seq > 0") = last_tok;
            let ids = g.constant(Tensor::from_vec(toks, [1, cfg.seq], &dev));
            let h = m.embed.forward(&g, &ids);
            let h = m.stack.forward(&g, &h, None, Recompute::None);
            h.tensor().to_vec()[..cfg.hidden].to_vec()
        };

        assert_ne!(hidden_at_pos0(2.0), hidden_at_pos0(9.0));
    }

    #[test]
    fn loss_is_finite_and_backward_fills_grads() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_bert();
        let m = BertModel::new(&cfg, &dev, 1);
        let g = Graph::new(&dev, 1);
        let b = Batch::synthetic(&cfg, 2, 5, &dev);
        let loss = m.forward_loss(&g, &b, Recompute::None);
        assert!(loss.tensor().item().is_finite());
        g.backward(&loss);
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn recompute_matches_plain() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_bert();
        let m = BertModel::new(&cfg, &dev, 2);
        let b = Batch::synthetic(&cfg, 1, 9, &dev);
        let l1 = {
            let g = Graph::new(&dev, 4);
            m.forward_loss(&g, &b, Recompute::None).tensor().item()
        };
        let l2 = {
            let g = Graph::new(&dev, 4);
            m.forward_loss(&g, &b, Recompute::All).tensor().item()
        };
        assert_eq!(l1, l2);
    }
}
