//! GPT: the decoder-only model (paper Figure 3).

use crate::batch::Batch;
use crate::config::{ModelConfig, Recompute};
use crate::layers::{maybe_dropout, Embedding, LayerNorm, Linear};
use crate::stack::TransformerStack;
use ssdtrain_autograd::{ops, Graph, Value, Var};
use ssdtrain_tensor::{Device, Prng};

/// A GPT-style causal language model: embeddings, `L` decoder layers, a
/// final layer-norm and an LM head trained with next-token
/// cross-entropy.
#[derive(Debug, Clone)]
pub struct GptModel {
    cfg: ModelConfig,
    embed: Embedding,
    stack: TransformerStack,
    ln_f: LayerNorm,
    head: Linear,
}

impl crate::model::StagedModel for GptModel {
    fn forward_embed(&self, g: &Graph, batch: &Batch) -> Value {
        GptModel::forward_embed(self, g, batch)
    }
    fn forward_layers(
        &self,
        g: &Graph,
        x: &Value,
        range: std::ops::Range<usize>,
        recompute: Recompute,
    ) -> Value {
        GptModel::forward_layers(self, g, x, range, recompute)
    }
    fn forward_head_loss(&self, g: &Graph, h: &Value, batch: &Batch) -> Value {
        GptModel::forward_head_loss(self, g, h, batch)
    }
    fn layer_count(&self) -> usize {
        GptModel::layer_count(self)
    }
    fn stage_parameters(&self) -> Vec<Var> {
        self.parameters()
    }
}

impl GptModel {
    /// Builds the model with deterministic initialisation.
    pub fn new(cfg: &ModelConfig, dev: &Device, seed: u64) -> GptModel {
        let mut rng = Prng::seed_from_u64(seed);
        GptModel {
            cfg: cfg.clone(),
            embed: Embedding::new("embed", cfg.vocab, cfg.seq, cfg.hidden, &mut rng, dev),
            stack: TransformerStack::new("layer", cfg.layers, cfg, true, false, &mut rng, dev),
            ln_f: LayerNorm::new("ln_f", cfg.hidden, dev),
            head: Linear::new_no_bias("head", cfg.hidden, cfg.vocab / cfg.tp, &mut rng, dev),
        }
    }

    /// Forward pass to the mean cross-entropy loss.
    pub fn forward_loss(&self, g: &Graph, batch: &Batch, recompute: Recompute) -> Value {
        let h = self.forward_embed(g, batch);
        let h = self.forward_layers(g, &h, 0..self.layer_count(), recompute);
        self.forward_head_loss(g, &h, batch)
    }

    /// Embedding front of the model (pipeline stage 0's prologue).
    pub fn forward_embed(&self, g: &Graph, batch: &Batch) -> Value {
        let ids = g.constant(batch.tokens.clone());
        g.scoped("embed", || {
            let e = self.embed.forward(g, &ids);
            maybe_dropout(g, &e, self.cfg.dropout_p)
        })
    }

    /// A contiguous slice of transformer layers (one pipeline stage).
    pub fn forward_layers(
        &self,
        g: &Graph,
        x: &Value,
        range: std::ops::Range<usize>,
        recompute: Recompute,
    ) -> Value {
        self.stack.forward_range(g, x, None, range, recompute)
    }

    /// Final layer-norm + LM head + loss (the last stage's epilogue).
    pub fn forward_head_loss(&self, g: &Graph, h: &Value, batch: &Batch) -> Value {
        g.scoped("head", || {
            let normed = self.ln_f.forward(g, h);
            let logits = self.head.forward(g, &normed);
            let n = batch.batch * self.cfg.seq;
            let flat = ops::reshape(g, &logits, [n, self.cfg.vocab / self.cfg.tp]);
            let targets = g.constant(batch.targets.clone());
            ops::cross_entropy_mean(g, &flat, &targets)
        })
    }

    /// Number of transformer layers.
    pub fn layer_count(&self) -> usize {
        self.stack.len()
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.embed.parameters();
        p.extend(self.stack.parameters());
        p.extend(self.ln_f.parameters());
        p.extend(self.head.parameters());
        p
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::MemClass;

    #[test]
    fn loss_is_near_log_vocab_at_init() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let m = GptModel::new(&cfg, &dev, 1);
        let g = Graph::new(&dev, 1);
        let b = Batch::synthetic(&cfg, 2, 3, &dev);
        let loss = m.forward_loss(&g, &b, Recompute::None).tensor().item();
        let uniform = (cfg.vocab as f32).ln();
        assert!(
            (loss - uniform).abs() < 1.0,
            "loss {loss} vs ln|V| {uniform}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let m = GptModel::new(&cfg, &dev, 2);
        let b = Batch::synthetic(&cfg, 2, 7, &dev);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            let g = Graph::new(&dev, 1);
            let loss = m.forward_loss(&g, &b, Recompute::None);
            last = loss.tensor().item();
            first.get_or_insert(last);
            g.backward(&loss);
            for p in m.parameters() {
                if let Some(grad) = p.grad() {
                    let next = p.tensor().sub(&grad.scale(0.5));
                    p.set_tensor(next.deep_clone_as(MemClass::Parameter));
                    p.zero_grad();
                }
            }
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.8,
            "loss should drop on a memorisable batch: {first} -> {last}"
        );
    }

    #[test]
    fn gpt_memorises_a_fixed_batch() {
        // Long-horizon convergence: with enough SGD steps on one batch,
        // the loss should approach zero — a stringent end-to-end check
        // of every gradient in the stack.
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let m = GptModel::new(&cfg, &dev, 6);
        let b = Batch::synthetic(&cfg, 2, 99, &dev);
        let mut opt = ssdtrain_autograd::optim::Sgd::new(m.parameters(), 0.5);
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            let g = Graph::new(&dev, 1);
            let loss = m.forward_loss(&g, &b, Recompute::None);
            last = loss.tensor().item();
            g.backward(&loss);
            opt.step();
            opt.zero_grad();
        }
        assert!(last < 0.1, "loss should approach zero: {last}");
    }

    #[test]
    fn causal_mask_blocks_future_influence_on_loss_grad() {
        // Gradients of the loss restricted to position 0 must not depend
        // on tokens at later positions. We check a weaker, cheap
        // property: changing only the last input token leaves the
        // model's logits at position 0 unchanged.
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let m = GptModel::new(&cfg, &dev, 3);

        let logits_at_pos0 = |last_tok: f32| -> Vec<f32> {
            let g = Graph::new(&dev, 1);
            let mut toks = vec![1.0f32; cfg.seq];
            *toks.last_mut().expect("seq > 0") = last_tok;
            let ids = g.constant(ssdtrain_tensor::Tensor::from_vec(toks, [1, cfg.seq], &dev));
            let h = m.embed.forward(&g, &ids);
            let h = m.stack.forward(&g, &h, None, Recompute::None);
            let normed = m.ln_f.forward(&g, &h);
            let logits = m.head.forward(&g, &normed);
            logits.tensor().to_vec()[..cfg.vocab].to_vec()
        };

        assert_eq!(logits_at_pos0(2.0), logits_at_pos0(9.0));
    }

    #[test]
    fn recompute_loss_matches_plain() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt();
        let m = GptModel::new(&cfg, &dev, 4);
        let b = Batch::synthetic(&cfg, 2, 11, &dev);
        let g1 = Graph::new(&dev, 5);
        let l1 = m.forward_loss(&g1, &b, Recompute::None).tensor().item();
        let g2 = Graph::new(&dev, 5);
        let l2 = m.forward_loss(&g2, &b, Recompute::All).tensor().item();
        assert_eq!(l1, l2);
    }

    #[test]
    fn symbolic_forward_propagates_to_scalar_loss() {
        let dev = Device::symbolic();
        let cfg = ModelConfig::paper_scale(crate::Arch::Gpt, 256, 2);
        let m = GptModel::new(&cfg, &dev, 1);
        let g = Graph::new(&dev, 1);
        let b = Batch::synthetic(&cfg, 2, 1, &dev);
        let loss = m.forward_loss(&g, &b, Recompute::None);
        assert_eq!(loss.tensor().numel(), 1);
        assert!(!loss.tensor().has_data());
        g.backward(&loss);
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
    }
}
