//! Transformer building blocks: attention, MLP and the full layer
//! (paper Figure 3).

use crate::config::ModelConfig;
use crate::layers::{maybe_dropout, LayerNorm, Linear};
use ssdtrain_autograd::{checkpoint, ops, Graph, Value, Var};
use ssdtrain_tensor::{Device, Prng};
use std::rc::Rc;
use std::sync::Arc;

/// Multi-head attention with separate Q/K/V/output projections.
///
/// With `fused` (the default, matching the paper's use of
/// FlashAttention-2), the `S×S` scores are never materialised; the
/// unfused path records the pre-Flash operator chain with an explicit
/// softmax whose probabilities are saved for backward.
#[derive(Debug, Clone)]
pub struct Attention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    heads: usize,
    tp: usize,
    causal: bool,
    fused: bool,
    dropout_p: f32,
}

impl Attention {
    /// Creates an attention block. With `cfg.tp > 1` this is one GPU's
    /// Megatron-style shard: `heads / tp` local heads, column-parallel
    /// Q/K/V, row-parallel output projection followed by an allreduce.
    pub fn new(
        name: &str,
        cfg: &ModelConfig,
        causal: bool,
        rng: &mut Prng,
        dev: &Device,
    ) -> Attention {
        let h = cfg.hidden;
        let h_local = h / cfg.tp;
        Attention {
            q: Linear::new(&format!("{name}.q"), h, h_local, rng, dev),
            k: Linear::new(&format!("{name}.k"), h, h_local, rng, dev),
            v: Linear::new(&format!("{name}.v"), h, h_local, rng, dev),
            o: Linear::new(&format!("{name}.o"), h_local, h, rng, dev),
            heads: cfg.heads / cfg.tp,
            tp: cfg.tp,
            causal,
            fused: cfg.fused_attention,
            dropout_p: cfg.dropout_p,
        }
    }

    /// Attention of `x_q` over `x_kv` (self-attention when they are the
    /// same value; cross-attention in the T5 decoder otherwise).
    pub fn forward(&self, g: &Graph, x_q: &Value, x_kv: &Value) -> Value {
        let q = ops::permute_heads(g, &self.q.forward(g, x_q), self.heads);
        let k = ops::permute_heads(g, &self.k.forward(g, x_kv), self.heads);
        let v = ops::permute_heads(g, &self.v.forward(g, x_kv), self.heads);
        let ctx = if self.fused {
            ops::flash_attention(g, &q, &k, &v, self.causal, self.dropout_p)
        } else {
            let d = q.tensor().dim(2) as f32;
            let kt = ops::transpose_12(g, &k);
            let scores = ops::scale(g, &ops::bmm(g, &q, &kt), 1.0 / d.sqrt());
            let scores = if self.causal {
                ops::apply_causal_mask(g, &scores)
            } else {
                scores
            };
            let probs = ops::softmax_last(g, &scores);
            let probs = maybe_dropout(g, &probs, self.dropout_p);
            ops::bmm(g, &probs, &v)
        };
        let merged = ops::unpermute_heads(g, &ctx, self.heads);
        let out = self.o.forward(g, &merged);
        let out = if self.tp > 1 {
            // Row-parallel output: partial sums reduce across the TP
            // group before dropout (Megatron's `g` operator).
            ops::allreduce(g, &out, out.tensor().bytes())
        } else {
            out
        };
        maybe_dropout(g, &out, self.dropout_p)
    }

    /// This block's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        [&self.q, &self.k, &self.v, &self.o]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

/// The two-projection MLP block with GELU (Figure 3(b)).
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    tp: usize,
    dropout_p: f32,
}

impl Mlp {
    /// Creates an MLP with the standard 4× expansion; with `cfg.tp > 1`
    /// the inner dimension is column/row-parallel sharded.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut Prng, dev: &Device) -> Mlp {
        let h = cfg.hidden;
        let inner = 4 * h / cfg.tp;
        Mlp {
            fc1: Linear::new(&format!("{name}.fc1"), h, inner, rng, dev),
            fc2: Linear::new(&format!("{name}.fc2"), inner, h, rng, dev),
            tp: cfg.tp,
            dropout_p: cfg.dropout_p,
        }
    }

    /// Applies the block.
    pub fn forward(&self, g: &Graph, x: &Value) -> Value {
        let h = ops::gelu(g, &self.fc1.forward(g, x));
        let out = self.fc2.forward(g, &h);
        let out = if self.tp > 1 {
            ops::allreduce(g, &out, out.tensor().bytes())
        } else {
            out
        };
        maybe_dropout(g, &out, self.dropout_p)
    }

    /// This block's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.fc1.parameters();
        p.extend(self.fc2.parameters());
        p
    }
}

/// One pre-LN transformer layer: self-attention, optional
/// cross-attention (T5 decoder), MLP — each under its own module scope
/// so the tensor cache profiles them separately (Figure 8).
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    ln1: LayerNorm,
    attn: Attention,
    cross: Option<(LayerNorm, Attention)>,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl TransformerLayer {
    /// Creates a layer; `causal` selects decoder-style masking,
    /// `with_cross` adds a cross-attention block.
    pub fn new(
        name: &str,
        cfg: &ModelConfig,
        causal: bool,
        with_cross: bool,
        rng: &mut Prng,
        dev: &Device,
    ) -> Arc<TransformerLayer> {
        Arc::new(TransformerLayer {
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.hidden, dev),
            attn: Attention::new(&format!("{name}.attn"), cfg, causal, rng, dev),
            cross: with_cross.then(|| {
                (
                    LayerNorm::new(&format!("{name}.lnx"), cfg.hidden, dev),
                    Attention::new(&format!("{name}.xattn"), cfg, false, rng, dev),
                )
            }),
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.hidden, dev),
            mlp: Mlp::new(&format!("{name}.mlp"), cfg, rng, dev),
        })
    }

    /// Runs the layer; `ctx` is the encoder output for cross-attention.
    ///
    /// # Panics
    /// Panics if the layer has a cross block but `ctx` is `None`.
    pub fn forward(&self, g: &Graph, x: &Value, ctx: Option<&Value>) -> Value {
        let mut x = x.clone();
        x = g.scoped("attn", || {
            let normed = self.ln1.forward(g, &x);
            let a = self.attn.forward(g, &normed, &normed);
            ops::add(g, &x, &a)
        });
        if let Some((lnx, xattn)) = &self.cross {
            let ctx = ctx.expect("cross-attention layer needs encoder output");
            x = g.scoped("xattn", || {
                let normed = lnx.forward(g, &x);
                let a = xattn.forward(g, &normed, ctx);
                ops::add(g, &x, &a)
            });
        }
        g.scoped("mlp", || {
            let normed = self.ln2.forward(g, &x);
            let m = self.mlp.forward(g, &normed);
            ops::add(g, &x, &m)
        })
    }

    /// Runs the layer under activation checkpointing: intermediates are
    /// recomputed in backward (the ROK curve's "recompute" strategy).
    pub fn forward_checkpointed(
        self: &Arc<Self>,
        g: &Graph,
        x: &Value,
        ctx: Option<&Value>,
    ) -> Value {
        let layer = self.clone();
        let has_ctx = ctx.is_some();
        let mut inputs = vec![x.clone()];
        if let Some(c) = ctx {
            inputs.push(c.clone());
        }
        let outs = checkpoint(
            g,
            Rc::new(move |cg: &Graph, ins: &[Value]| {
                let ctx = has_ctx.then(|| ins[1].clone());
                vec![layer.forward(cg, &ins[0], ctx.as_ref())]
            }),
            &inputs,
        );
        outs.into_iter()
            .next()
            .expect("checkpoint returns the output")
    }

    /// This layer's parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.ln1.parameters();
        p.extend(self.attn.parameters());
        if let Some((lnx, xattn)) = &self.cross {
            p.extend(lnx.parameters());
            p.extend(xattn.parameters());
        }
        p.extend(self.ln2.parameters());
        p.extend(self.mlp.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_autograd::ops::mean_all;
    use ssdtrain_tensor::Tensor;

    fn setup(fused: bool) -> (Device, ModelConfig, Arc<TransformerLayer>) {
        let dev = Device::cpu();
        let cfg = ModelConfig {
            fused_attention: fused,
            ..ModelConfig::tiny_gpt()
        };
        let mut rng = Prng::seed_from_u64(4);
        let layer = TransformerLayer::new("l0", &cfg, true, false, &mut rng, &dev);
        (dev, cfg, layer)
    }

    #[test]
    fn layer_preserves_shape() {
        let (dev, cfg, layer) = setup(true);
        let g = Graph::new(&dev, 1);
        let x = g.constant(Tensor::ones([2, cfg.seq, cfg.hidden], &dev));
        let y = layer.forward(&g, &x, None);
        assert_eq!(y.dims(), &[2, cfg.seq, cfg.hidden]);
    }

    #[test]
    fn fused_and_unfused_attention_agree() {
        let dev = Device::cpu();
        let mk = |fused: bool| {
            let cfg = ModelConfig {
                fused_attention: fused,
                ..ModelConfig::tiny_gpt()
            };
            let mut rng = Prng::seed_from_u64(11);
            let attn = Attention::new("a", &cfg, true, &mut rng, &dev);
            let g = Graph::new(&dev, 1);
            let mut xr = Prng::seed_from_u64(5);
            let x = g.constant(Tensor::randn([2, 4, cfg.hidden], 0.5, &mut xr, &dev));
            attn.forward(&g, &x, &x).tensor().to_vec()
        };
        let fused = mk(true);
        let unfused = mk(false);
        assert_eq!(fused.len(), unfused.len());
        for (a, b) in fused.iter().zip(&unfused) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn checkpointed_layer_matches_plain_gradients() {
        let (dev, cfg, layer) = setup(true);
        let mut xr = Prng::seed_from_u64(6);
        let x0 = Tensor::randn([1, cfg.seq, cfg.hidden], 0.5, &mut xr, &dev);

        let run = |ckpt: bool| -> (f32, Vec<f32>) {
            for p in layer.parameters() {
                p.zero_grad();
            }
            let g = Graph::new(&dev, 9);
            let x = g.constant(x0.clone());
            let y = if ckpt {
                layer.forward_checkpointed(&g, &x, None)
            } else {
                layer.forward(&g, &x, None)
            };
            let loss = mean_all(&g, &y);
            g.backward(&loss);
            let grads = layer
                .parameters()
                .iter()
                .flat_map(|p| p.grad().map(|gr| gr.to_vec()).unwrap_or_default())
                .collect();
            (loss.tensor().item(), grads)
        };

        let (l1, g1) = run(false);
        let (l2, g2) = run(true);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2, "checkpointing must not change gradients");
    }

    #[test]
    fn cross_attention_layer_uses_encoder_context() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_t5();
        let mut rng = Prng::seed_from_u64(8);
        let layer = TransformerLayer::new("d0", &cfg, true, true, &mut rng, &dev);
        let g = Graph::new(&dev, 1);
        let mut xr = Prng::seed_from_u64(3);
        let x = g.constant(Tensor::randn([1, cfg.seq, cfg.hidden], 0.3, &mut xr, &dev));
        let c1 = g.constant(Tensor::zeros([1, cfg.seq, cfg.hidden], &dev));
        let c2 = g.constant(Tensor::ones([1, cfg.seq, cfg.hidden], &dev));
        let y1 = layer.forward(&g, &x, Some(&c1));
        let y2 = layer.forward(&g, &x, Some(&c2));
        assert_ne!(
            y1.tensor().to_vec(),
            y2.tensor().to_vec(),
            "different encoder context must change the output"
        );
    }

    #[test]
    #[should_panic(expected = "needs encoder output")]
    fn cross_layer_without_context_panics() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_t5();
        let mut rng = Prng::seed_from_u64(8);
        let layer = TransformerLayer::new("d0", &cfg, true, true, &mut rng, &dev);
        let g = Graph::new(&dev, 1);
        let x = g.constant(Tensor::zeros([1, cfg.seq, cfg.hidden], &dev));
        let _ = layer.forward(&g, &x, None);
    }

    #[test]
    fn tensor_parallel_shards_parameters_and_inserts_allreduce() {
        let dev = Device::cpu();
        let cfg = ModelConfig::tiny_gpt().with_tp(2);
        let mut rng = Prng::seed_from_u64(10);
        let layer = TransformerLayer::new("l0", &cfg, true, false, &mut rng, &dev);
        // Shard parameter count: attention qkv are h×(h/2), o is (h/2)×h,
        // MLP is h×(2h) + (2h)×h — exactly half the dense matmul params.
        let dense: usize = TransformerLayer::new(
            "ref",
            &ModelConfig::tiny_gpt(),
            true,
            false,
            &mut Prng::seed_from_u64(10),
            &dev,
        )
        .parameters()
        .iter()
        .filter(|p| p.tensor().rank() == 2)
        .map(|p| p.numel())
        .sum();
        let sharded: usize = layer
            .parameters()
            .iter()
            .filter(|p| p.tensor().rank() == 2)
            .map(|p| p.numel())
            .sum();
        assert_eq!(sharded * 2, dense);

        // The forward pass contains exactly two allreduces (attn + mlp).
        use ssdtrain_autograd::{ExecObserver, OpCost, Phase};
        #[derive(Default)]
        struct CountAr(std::sync::atomic::AtomicU32);
        impl ExecObserver for CountAr {
            fn on_op(&self, name: &str, _c: &OpCost, _p: Phase) {
                if name == "allreduce" {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        let g = Graph::new(&dev, 1);
        let counter = Arc::new(CountAr::default());
        g.set_observer(counter.clone());
        let x = g.constant(Tensor::ones([1, cfg.seq, cfg.hidden], &dev));
        let _y = layer.forward(&g, &x, None);
        assert_eq!(counter.0.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn whole_layer_gradcheck_against_finite_differences() {
        // End-to-end central-difference check of a full transformer layer
        // (layernorm -> fused attention -> residual -> layernorm -> MLP
        // -> residual) with respect to the first layernorm's gamma.
        use ssdtrain_autograd::check_gradients;
        use ssdtrain_autograd::ops::mean_all;

        let dev = Device::cpu();
        let cfg = ModelConfig {
            hidden: 8,
            heads: 2,
            seq: 4,
            ..ModelConfig::tiny_gpt()
        };
        let mut rng = Prng::seed_from_u64(31);
        let layer = TransformerLayer::new("l", &cfg, true, false, &mut rng, &dev);
        let mut xr = Prng::seed_from_u64(32);
        let x0 = Tensor::randn([1, cfg.seq, cfg.hidden], 0.5, &mut xr, &dev);

        // Substitute the checked Var for ln1.gamma by rebuilding the
        // forward with an explicit layernorm over the same weights.
        let report = check_gradients(&dev, &layer.ln1.gamma.tensor(), 5e-3, 33, |g, gamma| {
            let xv = g.constant(x0.clone());
            let normed = ssdtrain_autograd::ops::layernorm(
                g,
                &xv,
                &g.leaf(gamma),
                &g.leaf(&layer.ln1.beta),
                1e-5,
            );
            let a = layer.attn.forward(g, &normed, &normed);
            let x = ssdtrain_autograd::ops::add(g, &xv, &a);
            let normed2 = layer.ln2.forward(g, &x);
            let m = layer.mlp.forward(g, &normed2);
            let y = ssdtrain_autograd::ops::add(g, &x, &m);
            mean_all(g, &y)
        });
        assert!(report.passes(5e-3), "{report:?}");
    }

    #[test]
    fn scopes_are_attn_and_mlp() {
        use parking_lot::Mutex;
        use ssdtrain_autograd::{ModuleHooks, ScopeInfo};

        #[derive(Default)]
        struct Paths(Mutex<Vec<String>>);
        impl ModuleHooks for Paths {
            fn forward_pre(&self, s: &ScopeInfo) {
                self.0.lock().push(s.path.clone());
            }
        }

        let (dev, cfg, layer) = setup(true);
        let g = Graph::new(&dev, 1);
        let log = Arc::new(Paths::default());
        g.add_module_hooks(log.clone());
        let x = g.constant(Tensor::ones([1, cfg.seq, cfg.hidden], &dev));
        g.scoped("layer0", || layer.forward(&g, &x, None));
        let paths = log.0.lock().clone();
        assert_eq!(paths, vec!["layer0", "layer0/attn", "layer0/mlp"]);
    }
}
