//! Model configurations.

use serde::{Deserialize, Serialize};

/// Which transformer layers run under activation checkpointing.
///
/// `FirstLayers(k)` recomputes the first `k` layers and leaves the rest
/// to whatever the session's placement strategy does with them — the
/// building block of hybrid recompute+offload points in the interior of
/// the ROK plane (the joint optimisation the paper's Section 4.4 leaves
/// open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Recompute {
    /// No checkpointing.
    #[default]
    None,
    /// Every layer is checkpointed (layerwise full recomputation).
    All,
    /// Only the first `k` layers (in forward order) are checkpointed.
    FirstLayers(usize),
}

impl Recompute {
    /// Whether layer `index` (0-based, per stack) is checkpointed.
    pub fn applies_to(self, index: usize) -> bool {
        match self {
            Recompute::None => false,
            Recompute::All => true,
            Recompute::FirstLayers(k) => index < k,
        }
    }
}

/// The three transformer families of the paper's evaluation
/// (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Decoder-only (causal attention).
    Gpt,
    /// Encoder-only (bidirectional attention).
    Bert,
    /// Encoder-decoder (bidirectional encoder, causal decoder with
    /// cross-attention).
    T5,
}

impl Arch {
    /// Lowercase label.
    pub const fn label(self) -> &'static str {
        match self {
            Arch::Gpt => "gpt",
            Arch::Bert => "bert",
            Arch::T5 => "t5",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hyperparameters of one model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family.
    pub arch: Arch,
    /// Hidden dimension `H`.
    pub hidden: usize,
    /// Number of transformer layers `L` (for T5 this is the total; the
    /// decoder gets `L / 2` rounded down, per the paper's Section 4.1).
    pub layers: usize,
    /// Attention heads (the paper uses head dimension 128 at scale).
    pub heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length `S`.
    pub seq: usize,
    /// Dropout probability (applied to each red-bordered output of
    /// Figure 3).
    pub dropout_p: f32,
    /// Use the fused (FlashAttention-style) attention kernel; the
    /// unfused path materialises the `S×S` probabilities (pre-Flash
    /// behaviour, used for the selective-recomputation discussion).
    pub fused_attention: bool,
    /// Megatron-style tensor-parallel degree. The model instance
    /// represents **one GPU's shard**: attention heads and MLP inner
    /// dimensions divide by `tp`, and each block ends with a simulated
    /// allreduce. `tp > 1` is a timing/memory model — numeric values are
    /// one shard's partial sums, so functional tests use `tp = 1`.
    pub tp: usize,
}

impl ModelConfig {
    /// A paper-scale configuration: head dim 128, sequence length 1024,
    /// GPT-2 vocabulary (Section 4.1).
    ///
    /// # Panics
    /// Panics unless `hidden` is a multiple of 128.
    pub fn paper_scale(arch: Arch, hidden: usize, layers: usize) -> ModelConfig {
        assert_eq!(
            hidden % 128,
            0,
            "paper-scale hidden must be a multiple of 128"
        );
        ModelConfig {
            arch,
            hidden,
            layers,
            heads: hidden / 128,
            vocab: 50_304,
            seq: 1024,
            dropout_p: 0.1,
            fused_attention: true,
            tp: 1,
        }
    }

    /// A tiny numeric GPT for functional tests.
    pub fn tiny_gpt() -> ModelConfig {
        ModelConfig {
            arch: Arch::Gpt,
            hidden: 16,
            layers: 2,
            heads: 2,
            vocab: 11,
            seq: 8,
            dropout_p: 0.0,
            fused_attention: true,
            tp: 1,
        }
    }

    /// A tiny numeric BERT.
    pub fn tiny_bert() -> ModelConfig {
        ModelConfig {
            arch: Arch::Bert,
            ..ModelConfig::tiny_gpt()
        }
    }

    /// A tiny numeric T5.
    pub fn tiny_t5() -> ModelConfig {
        ModelConfig {
            arch: Arch::T5,
            layers: 4, // 2 encoder + 2 decoder
            ..ModelConfig::tiny_gpt()
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Number of encoder layers (all of them except for T5).
    pub fn encoder_layers(&self) -> usize {
        match self.arch {
            Arch::T5 => self.layers - self.layers / 2,
            _ => self.layers,
        }
    }

    /// Number of decoder layers (T5 only).
    pub fn decoder_layers(&self) -> usize {
        match self.arch {
            Arch::T5 => self.layers / 2,
            _ => 0,
        }
    }

    /// Returns this configuration sharded over `tp` GPUs.
    ///
    /// # Panics
    /// Panics if heads or the 4×hidden MLP width are not divisible by
    /// `tp`.
    pub fn with_tp(mut self, tp: usize) -> ModelConfig {
        assert!(tp >= 1, "tp must be at least 1");
        assert_eq!(self.heads % tp, 0, "heads must divide by tp");
        assert_eq!(4 * self.hidden % tp, 0, "MLP width must divide by tp");
        self.tp = tp;
        self
    }

    /// A short identifier such as `"bert-h8192-l4"`.
    pub fn tag(&self) -> String {
        format!("{}-h{}-l{}", self.arch, self.hidden, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_uses_head_dim_128() {
        let c = ModelConfig::paper_scale(Arch::Bert, 8192, 4);
        assert_eq!(c.heads, 64);
        assert_eq!(c.head_dim(), 128);
        assert_eq!(c.seq, 1024);
    }

    #[test]
    fn t5_splits_layers_rounding_decoder_down() {
        let c = ModelConfig {
            layers: 5,
            ..ModelConfig::tiny_t5()
        };
        assert_eq!(c.decoder_layers(), 2);
        assert_eq!(c.encoder_layers(), 3);
    }

    #[test]
    fn non_t5_has_no_decoder() {
        assert_eq!(ModelConfig::tiny_gpt().decoder_layers(), 0);
        assert_eq!(ModelConfig::tiny_bert().encoder_layers(), 2);
    }

    #[test]
    fn tag_is_stable() {
        assert_eq!(ModelConfig::tiny_gpt().tag(), "gpt-h16-l2");
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn paper_scale_validates_hidden() {
        let _ = ModelConfig::paper_scale(Arch::Gpt, 1000, 2);
    }
}
