//! GPU kernel-time model.

use serde::{Deserialize, Serialize};

/// Performance characteristics of one GPU.
///
/// Kernel durations follow a roofline: compute-bound kernels take
/// `flops / (peak × efficiency)`, memory-bound kernels take
/// `bytes / hbm_bandwidth`, and every launch pays a fixed overhead —
/// which is why small micro-batches under-utilise the device, the effect
/// the paper's introduction describes.
///
/// ```
/// use ssdtrain_simhw::GpuSpec;
/// let a100 = GpuSpec::a100_pcie_40gb();
/// // A large matmul is compute-bound: 2 TFLOP at ~140 TFLOP/s ≈ 14 ms.
/// let t = a100.kernel_time(2e12 as u64, 1 << 30, true);
/// assert!(t > 0.012 && t < 0.017, "{t}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Peak dense FP16 throughput in TFLOP/s.
    pub fp16_tflops: f64,
    /// Achievable fraction of peak for large GEMMs (model FLOPs
    /// utilisation; Megatron-LM reports 0.4–0.52 on A100).
    pub matmul_efficiency: f64,
    /// Achievable fraction of peak for non-GEMM kernels.
    pub elementwise_efficiency: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Fixed kernel-launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// The evaluation GPU: Nvidia A100 PCIe 40 GB (Table 3), locked at
    /// base frequency as the paper does for consistent numbers.
    pub fn a100_pcie_40gb() -> GpuSpec {
        GpuSpec {
            name: "A100-PCIe-40GB".into(),
            fp16_tflops: 312.0,
            matmul_efficiency: 0.45,
            elementwise_efficiency: 0.80,
            hbm_gbps: 1555.0,
            memory_bytes: 40 * (1u64 << 30),
            launch_overhead_s: 5e-6,
        }
    }

    /// A100 SXM 80 GB, for the "real-world training systems" design-space
    /// discussion (Section 4.1).
    pub fn a100_sxm_80gb() -> GpuSpec {
        GpuSpec {
            name: "A100-SXM-80GB".into(),
            fp16_tflops: 312.0,
            matmul_efficiency: 0.50,
            elementwise_efficiency: 0.80,
            hbm_gbps: 2039.0,
            memory_bytes: 80 * (1u64 << 30),
            launch_overhead_s: 5e-6,
        }
    }

    /// Duration of one kernel in seconds.
    ///
    /// `is_matmul` selects the GEMM efficiency; other kernels are usually
    /// bandwidth-bound anyway.
    pub fn kernel_time(&self, flops: u64, bytes_moved: u64, is_matmul: bool) -> f64 {
        let eff = if is_matmul {
            self.matmul_efficiency
        } else {
            self.elementwise_efficiency
        };
        let t_compute = flops as f64 / (self.fp16_tflops * 1e12 * eff);
        let t_memory = bytes_moved as f64 / (self.hbm_gbps * 1e9);
        t_compute.max(t_memory) + self.launch_overhead_s
    }

    /// Effective sustained matmul throughput in TFLOP/s.
    pub fn effective_tflops(&self) -> f64 {
        self.fp16_tflops * self.matmul_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_kernels_pay_launch_overhead() {
        let g = GpuSpec::a100_pcie_40gb();
        let t = g.kernel_time(1000, 1000, false);
        assert!(t >= g.launch_overhead_s);
        assert!(t < 2.0 * g.launch_overhead_s);
    }

    #[test]
    fn memory_bound_kernel_times_by_bandwidth() {
        let g = GpuSpec::a100_pcie_40gb();
        // 155.5 GB at 1555 GB/s ≈ 0.1 s, compute negligible.
        let t = g.kernel_time(1, 155_500_000_000, false);
        assert!((t - 0.1).abs() < 0.001, "{t}");
    }

    #[test]
    fn compute_bound_kernel_times_by_flops() {
        let g = GpuSpec::a100_pcie_40gb();
        let eff = g.effective_tflops() * 1e12;
        let flops = 1e15 as u64;
        let t = g.kernel_time(flops, 0, true);
        assert!((t - flops as f64 / eff).abs() < 1e-4, "{t}");
    }

    #[test]
    fn a100_effective_throughput_matches_megatron_range() {
        let g = GpuSpec::a100_pcie_40gb();
        let eff = g.effective_tflops();
        assert!((130.0..170.0).contains(&eff), "{eff}");
    }
}
