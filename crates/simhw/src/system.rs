//! Assembled system configurations.

use crate::catalog::ssds;
use crate::gpu::GpuSpec;
use crate::link::Channel;
use crate::memory::GpuMemory;
use crate::ssd::Raid0;
use crate::time::SimClock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How offloaded bytes travel between GPU memory and the SSD array —
/// the "Direct GPU-SSD data path" axis of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadPath {
    /// GPUDirect Storage: one PCIe hop, no CPU involvement (the paper's
    /// design, via kvikio/GDS).
    Direct,
    /// Bounce buffer through host DRAM: the data crosses PCIe twice and
    /// a CPU memcpy contends with training-management work, leaving only
    /// `efficiency` of the link rate (the earlier systems of Table 2).
    ViaHost {
        /// Fraction of the direct-path bandwidth actually achieved
        /// (~0.4–0.6 empirically, per the GDS measurements the paper
        /// cites).
        efficiency: f64,
    },
}

/// Static description of one GPU's I/O neighbourhood in a training node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Human-readable name.
    pub name: String,
    /// GPU model.
    pub gpu: GpuSpec,
    /// Number of GPUs participating (tensor parallel within the node).
    pub gpus: usize,
    /// PCIe bandwidth per direction per GPU, bytes/s (Gen4 x16 ≈ 26 GB/s
    /// effective with GDS).
    pub pcie_bps: f64,
    /// NVLink bandwidth between GPU pairs, bytes/s (A100: 600 GB/s
    /// aggregate; we model the per-direction usable rate).
    pub nvlink_bps: f64,
    /// The SSD array dedicated to each GPU.
    pub ssd_array: Raid0,
    /// Host memory capacity, bytes (bounds CPU offloading, Figure 2).
    pub host_mem_bytes: u64,
    /// GPU↔SSD data path (Table 2's first axis).
    pub offload_path: OffloadPath,
    /// Fixed per-store-job submission overhead, seconds (driver ioctl +
    /// DMA descriptor setup). 0 = the pre-existing bandwidth-only model.
    #[serde(default)]
    pub store_job_overhead_secs: f64,
    /// Per-write-operation media overhead charged on the SSD array's
    /// wear meter, bytes (FTL mapping + partial erase-block RMW). 0 =
    /// ideal WAF-1 sequential model.
    #[serde(default)]
    pub ssd_write_overhead_bytes: u64,
}

impl SystemConfig {
    /// The paper's evaluation machine (Table 3): 2× A100 40 GB PCIe with
    /// NVLink, 7× Intel Optane P5800X split into RAID0 arrays of 3 and 4
    /// drives, one array per GPU. We model the measured GPU (the one with
    /// the 4-drive array, as the paper states).
    pub fn dac_testbed() -> SystemConfig {
        SystemConfig {
            name: "2xA100 + 7xP5800X (Table 3)".into(),
            gpu: GpuSpec::a100_pcie_40gb(),
            gpus: 2,
            pcie_bps: 25.0e9,
            nvlink_bps: 250.0e9,
            ssd_array: Raid0::new(ssds::optane_p5800x(), 4),
            host_mem_bytes: 1024 * (1u64 << 30),
            offload_path: OffloadPath::Direct,
            store_job_overhead_secs: 0.0,
            ssd_write_overhead_bytes: 0,
        }
    }

    /// This machine with the bounce-buffer data path instead of GDS.
    pub fn with_via_host_path(mut self, efficiency: f64) -> SystemConfig {
        assert!((0.0..=1.0).contains(&efficiency), "efficiency in (0, 1]");
        self.offload_path = OffloadPath::ViaHost { efficiency };
        self
    }

    fn path_efficiency(&self) -> f64 {
        match self.offload_path {
            OffloadPath::Direct => 1.0,
            OffloadPath::ViaHost { efficiency } => efficiency,
        }
    }

    /// Effective offload *write* bandwidth: the paper's data path is
    /// GPU → PCIe → SSD array, so the minimum of the two rates (scaled
    /// down when bouncing through host memory).
    pub fn offload_write_bps(&self) -> f64 {
        self.pcie_bps.min(self.ssd_array.write_bps()) * self.path_efficiency()
    }

    /// Effective offload *read* bandwidth.
    pub fn offload_read_bps(&self) -> f64 {
        self.pcie_bps.min(self.ssd_array.read_bps()) * self.path_efficiency()
    }

    /// Bandwidth of the GPU → PCIe → host-DRAM path, symmetric per
    /// direction: a host-memory offload tier is capped by the PCIe link
    /// alone (no SSD array in the way).
    pub fn host_offload_bps(&self) -> f64 {
        self.pcie_bps
    }

    /// Instantiates the runtime pieces for one simulated GPU: a clock,
    /// its memory tracker and the two PCIe directions.
    pub fn instantiate(&self) -> GpuRuntime {
        let clock = SimClock::new();
        let mem = Arc::new(GpuMemory::new(clock.clone(), self.gpu.memory_bytes));
        GpuRuntime {
            write_channel: Channel::new("pcie-write", self.offload_write_bps()),
            read_channel: Channel::new("pcie-read", self.offload_read_bps()),
            nvlink: Channel::new("nvlink", self.nvlink_bps),
            memory: mem,
            clock,
        }
    }
}

/// Live runtime resources for one simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuRuntime {
    /// GPU→SSD direction (activation stores).
    pub write_channel: Channel,
    /// SSD→GPU direction (activation reloads).
    pub read_channel: Channel,
    /// Inter-GPU link for tensor-parallel collectives.
    pub nvlink: Channel,
    /// The memory tracker to register on the device.
    pub memory: Arc<GpuMemory>,
    /// The shared step clock.
    pub clock: SimClock,
}

impl GpuRuntime {
    /// Resets clock, channels and memory for a fresh measured step.
    pub fn reset(&self) {
        self.clock.reset();
        self.write_channel.reset();
        self.read_channel.reset();
        self.nvlink.reset();
        self.memory.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_table3() {
        let sys = SystemConfig::dac_testbed();
        assert_eq!(sys.gpus, 2);
        assert_eq!(sys.gpu.memory_bytes, 40 * (1u64 << 30));
        assert_eq!(sys.ssd_array.n, 4);
        assert_eq!(sys.host_mem_bytes, 1024 * (1u64 << 30));
    }

    #[test]
    fn via_host_path_costs_bandwidth() {
        let sys = SystemConfig::dac_testbed().with_via_host_path(0.5);
        assert!((sys.offload_write_bps() - 12.2e9).abs() < 0.1e9);
        assert!((sys.offload_read_bps() - 12.5e9).abs() < 0.1e9);
    }

    #[test]
    fn offload_bandwidth_is_min_of_pcie_and_array() {
        let sys = SystemConfig::dac_testbed();
        // 4x P5800X write = 24.4 GB/s < PCIe 25 GB/s.
        assert!((sys.offload_write_bps() - 24.4e9).abs() < 0.1e9);
        // Read: PCIe 25 GB/s < 4x 7.2 = 28.8 GB/s.
        assert!((sys.offload_read_bps() - 25.0e9).abs() < 0.1e9);
    }

    #[test]
    fn instantiate_wires_clock_into_memory() {
        let sys = SystemConfig::dac_testbed();
        let rt = sys.instantiate();
        rt.clock.advance_by(1.0);
        assert_eq!(rt.clock.now().as_secs(), 1.0);
        assert_eq!(rt.memory.capacity(), sys.gpu.memory_bytes);
        rt.reset();
        assert_eq!(rt.clock.now().as_secs(), 0.0);
    }
}
