//! Simulated GPU memory: allocation tracking and footprint timelines.

use crate::time::{SimClock, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use ssdtrain_tensor::{MemClass, MemTracker};
use std::sync::Arc;

/// One point of the memory-footprint timeline (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintPoint {
    /// Simulated time of the allocator event.
    pub time: SimTime,
    /// Total resident bytes after the event.
    pub total: u64,
    /// Resident activation bytes after the event.
    pub activations: u64,
}

/// Summary of a step's memory behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Peak total resident bytes.
    pub peak_total: u64,
    /// Peak resident activation bytes (the paper's headline metric).
    pub peak_activations: u64,
    /// Resident bytes by class at the time of the report.
    pub final_by_class: Vec<(String, u64)>,
    /// Number of allocator events (Figure 7 notes offloading runs incur
    /// more of these).
    pub events: u64,
}

/// Observes new footprint peaks as they are recorded.
///
/// Implemented by higher layers (e.g. the trace crate's memory bridge)
/// that want live allocator-peak updates without this crate depending on
/// them. Called outside the tracker's internal lock, in event-commit
/// order — future-stamped events (see [`GpuMemory::with_time`]) are
/// observed when recorded, so the notified peak is the *running* one;
/// [`GpuMemory::peak_total`] remains the authoritative sorted-timeline
/// value.
pub trait PeakObserver: Send + Sync {
    /// A new peak of `total` resident bytes (of which `activations` are
    /// activation-class) was recorded at simulated time `time`.
    fn on_peak(&self, time: SimTime, total: u64, activations: u64);
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    delta: i64,
    class: MemClass,
}

#[derive(Debug, Default)]
struct State {
    current: [i64; 5],
    events: Vec<Event>,
    time_override: Option<SimTime>,
    live_peak: i64,
}

/// A GPU memory tracker.
///
/// Registered on a [`ssdtrain_tensor::Device`]; every storage allocation
/// and free is recorded with the simulated time at which it happens. The
/// tensor cache releases offloaded storages *at the store job's modelled
/// completion time* using [`GpuMemory::with_time`], so the reconstructed
/// footprint curve reflects the true overlap of transfers with compute.
///
/// ```
/// use ssdtrain_simhw::{GpuMemory, SimClock};
/// use ssdtrain_tensor::{Device, Tensor};
/// use std::sync::Arc;
///
/// let clock = SimClock::new();
/// let mem = Arc::new(GpuMemory::new(clock.clone(), 40 << 30));
/// let dev = Device::cpu();
/// dev.set_tracker(mem.clone());
/// {
///     let _t = Tensor::zeros([1024], &dev); // 4 KiB of F32
///     clock.advance_by(0.5);
/// }
/// assert_eq!(mem.peak_total(), 4096);
/// assert_eq!(mem.resident_total(), 0);
/// ```
#[derive(Clone)]
pub struct GpuMemory {
    clock: SimClock,
    capacity: u64,
    state: Arc<Mutex<State>>,
    observer: Arc<Mutex<Option<Arc<dyn PeakObserver>>>>,
}

fn class_index(c: MemClass) -> usize {
    match c {
        MemClass::Parameter => 0,
        MemClass::Gradient => 1,
        MemClass::OptimizerState => 2,
        MemClass::Activation => 3,
        MemClass::Workspace => 4,
    }
}

impl GpuMemory {
    /// Creates a tracker tied to `clock` with a device capacity (used for
    /// out-of-memory detection in reports).
    pub fn new(clock: SimClock, capacity: u64) -> GpuMemory {
        GpuMemory {
            clock,
            capacity,
            state: Arc::new(Mutex::new(State::default())),
            observer: Arc::new(Mutex::new(None)),
        }
    }

    /// Installs (or replaces) the live peak observer. Clones of this
    /// tracker share the observer.
    pub fn set_peak_observer(&self, observer: Arc<dyn PeakObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Runs `f` with allocator events stamped at `t` instead of the
    /// current clock time (for frees that complete in the simulated
    /// future, e.g. at a store job's end).
    pub fn with_time<R>(&self, t: SimTime, f: impl FnOnce() -> R) -> R {
        let prev = {
            let mut s = self.state.lock();
            s.time_override.replace(t)
        };
        let r = f();
        self.state.lock().time_override = prev;
        r
    }

    fn record(&self, delta: i64, class: MemClass) {
        let new_peak = {
            let mut s = self.state.lock();
            let time = s.time_override.unwrap_or_else(|| self.clock.now());
            s.current[class_index(class)] += delta;
            s.events.push(Event { time, delta, class });
            let total: i64 = s.current.iter().map(|v| *v.max(&0)).sum();
            if total > s.live_peak {
                s.live_peak = total;
                let act = s.current[class_index(MemClass::Activation)].max(0) as u64;
                Some((time, total as u64, act))
            } else {
                None
            }
        };
        // Notify outside the state lock: the observer may take its own
        // locks (e.g. a trace sink) and must not deadlock against
        // re-entrant allocator calls.
        if let Some((time, total, act)) = new_peak {
            let obs = self.observer.lock().clone();
            if let Some(obs) = obs {
                obs.on_peak(time, total, act);
            }
        }
    }

    /// Currently resident bytes of one class.
    pub fn resident(&self, class: MemClass) -> u64 {
        self.state.lock().current[class_index(class)].max(0) as u64
    }

    /// Currently resident bytes across all classes.
    pub fn resident_total(&self) -> u64 {
        self.state
            .lock()
            .current
            .iter()
            .map(|v| v.max(&0))
            .sum::<i64>() as u64
    }

    /// The footprint timeline, sorted by event time: total and
    /// activation-class bytes after each allocator event.
    ///
    /// Events may be recorded out of chronological order (future-stamped
    /// frees), so the timeline is rebuilt by sorting.
    pub fn timeline(&self) -> Vec<FootprintPoint> {
        let s = self.state.lock();
        let mut evs: Vec<Event> = s.events.clone();
        drop(s);
        evs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        let mut total = 0i64;
        let mut act = 0i64;
        evs.iter()
            .map(|e| {
                total += e.delta;
                if e.class == MemClass::Activation {
                    act += e.delta;
                }
                FootprintPoint {
                    time: e.time,
                    total: total.max(0) as u64,
                    activations: act.max(0) as u64,
                }
            })
            .collect()
    }

    /// Peak total resident bytes over the timeline.
    pub fn peak_total(&self) -> u64 {
        self.timeline().iter().map(|p| p.total).max().unwrap_or(0)
    }

    /// Peak resident activation bytes over the timeline.
    pub fn peak_activations(&self) -> u64 {
        self.timeline()
            .iter()
            .map(|p| p.activations)
            .max()
            .unwrap_or(0)
    }

    /// Peak activation bytes within a time window `[from, to]` — used to
    /// read the "memory at the beginning of backward propagation" point
    /// of Figure 7.
    pub fn peak_activations_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.timeline()
            .iter()
            .filter(|p| p.time >= from && p.time <= to)
            .map(|p| p.activations)
            .max()
            .unwrap_or(0)
    }

    /// Whether the peak exceeded device capacity (the run would have hit
    /// a CUDA out-of-memory error on the real machine).
    pub fn oom(&self) -> bool {
        self.peak_total() > self.capacity
    }

    /// Full report.
    pub fn report(&self) -> MemoryReport {
        let s = self.state.lock();
        let final_by_class = MemClass::ALL
            .iter()
            .map(|c| {
                (
                    c.label().to_owned(),
                    s.current[class_index(*c)].max(0) as u64,
                )
            })
            .collect();
        let events = s.events.len() as u64;
        drop(s);
        MemoryReport {
            peak_total: self.peak_total(),
            peak_activations: self.peak_activations(),
            final_by_class,
            events,
        }
    }

    /// Replays this step's allocator events (in simulated-time order)
    /// through the caching-allocator model and returns its statistics —
    /// the *reserved* footprint a real PyTorch run would report on top
    /// of the allocated curve.
    pub fn allocator_stats(&self) -> crate::allocator::AllocatorStats {
        let s = self.state.lock();
        let mut evs: Vec<Event> = s.events.clone();
        drop(s);
        evs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        crate::allocator::CachingAllocator::replay(
            evs.iter().map(|e| (e.delta.unsigned_abs(), e.delta < 0)),
        )
    }

    /// Clears the event log and counters (new measured step).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.current = [0; 5];
        s.events.clear();
        s.live_peak = 0;
    }
}

impl MemTracker for GpuMemory {
    fn on_alloc(&self, bytes: u64, class: MemClass) {
        self.record(bytes as i64, class);
    }
    fn on_free(&self, bytes: u64, class: MemClass) {
        self.record(-(bytes as i64), class);
    }
}

impl std::fmt::Debug for GpuMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuMemory")
            .field("capacity", &self.capacity)
            .field("resident_total", &self.resident_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gm() -> (SimClock, GpuMemory) {
        let clock = SimClock::new();
        let mem = GpuMemory::new(clock.clone(), 1 << 30);
        (clock, mem)
    }

    #[test]
    fn peak_reflects_alloc_free_ordering() {
        let (clock, mem) = gm();
        mem.on_alloc(100, MemClass::Activation);
        clock.advance_by(1.0);
        mem.on_alloc(200, MemClass::Activation);
        clock.advance_by(1.0);
        mem.on_free(100, MemClass::Activation);
        assert_eq!(mem.peak_activations(), 300);
        assert_eq!(mem.resident(MemClass::Activation), 200);
    }

    #[test]
    fn future_stamped_free_lowers_the_curve_later() {
        let (clock, mem) = gm();
        mem.on_alloc(100, MemClass::Activation);
        // Free completes at t=5 although recorded now (t=0).
        mem.with_time(SimTime::from_secs(5.0), || {
            mem.on_free(100, MemClass::Activation)
        });
        clock.advance_by(1.0);
        mem.on_alloc(50, MemClass::Activation);
        let tl = mem.timeline();
        // Timeline order: alloc@0, alloc@1, free@5.
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[1].total, 150);
        assert_eq!(tl[2].total, 50);
        assert_eq!(mem.peak_total(), 150);
    }

    #[test]
    fn classes_are_tracked_separately() {
        let (_c, mem) = gm();
        mem.on_alloc(10, MemClass::Parameter);
        mem.on_alloc(20, MemClass::Activation);
        assert_eq!(mem.resident(MemClass::Parameter), 10);
        assert_eq!(mem.resident(MemClass::Activation), 20);
        assert_eq!(mem.resident_total(), 30);
        assert_eq!(mem.peak_activations(), 20);
    }

    #[test]
    fn windowed_peak() {
        let (clock, mem) = gm();
        mem.on_alloc(100, MemClass::Activation);
        clock.advance_by(2.0);
        mem.on_alloc(100, MemClass::Activation);
        clock.advance_by(2.0);
        mem.on_free(150, MemClass::Activation);
        let w = mem.peak_activations_between(SimTime::from_secs(1.0), SimTime::from_secs(3.0));
        assert_eq!(w, 200);
    }

    #[test]
    fn oom_detection() {
        let clock = SimClock::new();
        let mem = GpuMemory::new(clock, 100);
        mem.on_alloc(150, MemClass::Activation);
        assert!(mem.oom());
        mem.reset();
        assert!(!mem.oom());
    }

    #[test]
    fn peak_observer_sees_each_new_running_peak() {
        #[derive(Default)]
        struct Rec(Mutex<Vec<(u64, u64)>>);
        impl PeakObserver for Rec {
            fn on_peak(&self, _time: SimTime, total: u64, activations: u64) {
                self.0.lock().push((total, activations));
            }
        }
        let (_c, mem) = gm();
        let rec = Arc::new(Rec::default());
        mem.set_peak_observer(rec.clone());
        mem.on_alloc(100, MemClass::Parameter);
        mem.on_alloc(50, MemClass::Activation);
        mem.on_free(50, MemClass::Activation); // not a peak
        mem.on_alloc(200, MemClass::Activation);
        assert_eq!(
            *rec.0.lock(),
            vec![(100, 0), (150, 50), (300, 200)],
            "only strictly increasing totals are reported"
        );
        mem.reset();
        mem.on_alloc(1, MemClass::Workspace);
        assert_eq!(rec.0.lock().len(), 4, "reset restarts peak tracking");
    }

    #[test]
    fn integrates_with_device_storage_lifecycle() {
        use ssdtrain_tensor::{Device, Tensor};
        let clock = SimClock::new();
        let mem = GpuMemory::new(clock.clone(), 1 << 30);
        let dev = Device::cpu();
        dev.set_tracker(Arc::new(mem.clone()));
        {
            let _t = Tensor::zeros([256], &dev); // 256 * 4 bytes (F32)
            assert_eq!(mem.resident_total(), 1024);
        }
        assert_eq!(mem.resident_total(), 0);
        assert_eq!(mem.peak_total(), 1024);
    }
}
