//! Pinned host buffer arena for staged offload bytes.
//!
//! Every byte that leaves the GPU for an offload tier is staged through
//! pinned (page-locked) host memory: the DMA engine needs a stable
//! physical address for the duration of the transfer. Allocating and
//! registering a fresh pinned region per store is the expensive way to
//! get one — `cudaHostAlloc`/`cudaHostRegister` cost tens of
//! microseconds and serialize on the driver — so real offloading
//! runtimes (the paper's, MemAscend's) keep a reusable arena of pinned
//! slabs sized for the tensors that recur every step.
//!
//! [`BufferArena`] models that arena deterministically:
//!
//! * **Size-classed slabs** — a request is rounded up to the next
//!   power-of-two class (min [`MIN_SLAB_BYTES`]), so a tensor that
//!   recurs each step always lands in the same class and reuses a slab
//!   from the free list instead of growing the footprint.
//! * **Virtual placement** — slabs live at virtual base addresses
//!   (fresh slabs extend a bump pointer; freed slabs are recycled at
//!   their old base). No bytes are stored; the addresses exist so
//!   aliasing is *checkable*: two live slabs never overlap.
//! * **Accounting** — cumulative acquired/released byte counters obey
//!   `acquired == released + in_use` at every instant, the per-step
//!   high-water mark exposes how much pinned memory a configuration
//!   really needs, and `footprint` (sum of all slab classes ever
//!   created) never shrinks — the gap between footprint and high-water
//!   is the cost of fragmentation across classes.
//!
//! The arena is shared (`Clone` hands out the same state, like
//! [`GpuMemory`](crate::GpuMemory)) so the cache, the coalescer and the
//! prefetcher can draw from one pinned pool.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Smallest slab class, bytes. Requests below this round up to it.
pub const MIN_SLAB_BYTES: u64 = 4096;

/// A handle to one pinned slab held by a caller.
///
/// The handle is `Copy` — it is an address range, not an owning guard —
/// and must be returned with [`BufferArena::release`] exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinnedSlab {
    /// Unique id of this acquisition (release is validated against it).
    pub id: u64,
    /// Virtual base address of the slab.
    pub base: u64,
    /// Size class the slab belongs to (power of two).
    pub class_bytes: u64,
    /// Bytes of payload actually staged in the slab (`<= class_bytes`).
    pub len: u64,
}

impl PinnedSlab {
    /// The half-open virtual address range `[base, base + class_bytes)`.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.base..self.base + self.class_bytes
    }
}

/// Snapshot of the arena's accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArenaStats {
    /// Slabs created fresh (bump-pointer extensions).
    pub slab_allocs: u64,
    /// Slabs served from a free list instead of freshly created.
    pub slab_reuses: u64,
    /// Cumulative payload bytes acquired.
    pub acquired_bytes: u64,
    /// Cumulative payload bytes released.
    pub released_bytes: u64,
    /// Payload bytes currently held (`acquired - released`).
    pub in_use_bytes: u64,
    /// Peak of `in_use_bytes` since the last [`BufferArena::begin_step`].
    pub high_water_bytes: u64,
    /// Sum of class sizes of every slab ever created (pinned footprint;
    /// never shrinks — reuse is what keeps it bounded).
    pub footprint_bytes: u64,
}

#[derive(Debug, Default)]
struct ArenaState {
    next_id: u64,
    next_base: u64,
    /// Free slab bases per size class.
    free: HashMap<u64, Vec<u64>>,
    /// Live slabs: id → (base, class, len).
    live: HashMap<u64, (u64, u64, u64)>,
    stats: ArenaStats,
}

/// Deterministic model of a pinned host-memory arena (see module docs).
///
/// ```
/// use ssdtrain_simhw::{BufferArena, MIN_SLAB_BYTES};
///
/// let arena = BufferArena::new();
/// let a = arena.acquire(10_000).expect("non-zero request");
/// assert_eq!(a.class_bytes, 16384); // next power of two
/// let stats = arena.stats();
/// assert_eq!(stats.in_use_bytes, 10_000);
///
/// arena.release(a);
/// let b = arena.acquire(9_000).expect("non-zero request");
/// assert_eq!(b.base, a.base); // same class -> slab reused in place
/// assert_eq!(arena.stats().slab_reuses, 1);
/// assert_eq!(arena.stats().footprint_bytes, 16384); // did not grow
/// # arena.release(b);
/// # assert_eq!(arena.stats().acquired_bytes, arena.stats().released_bytes);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BufferArena {
    inner: Arc<Mutex<ArenaState>>,
}

impl BufferArena {
    /// An empty arena.
    pub fn new() -> BufferArena {
        BufferArena::default()
    }

    /// Rounds a request up to its size class: the next power of two, at
    /// least [`MIN_SLAB_BYTES`].
    pub fn class_of(len: u64) -> u64 {
        len.max(MIN_SLAB_BYTES).next_power_of_two()
    }

    /// Acquires a slab large enough for `len` payload bytes, reusing a
    /// freed slab of the same class when one exists. Returns `None` for
    /// a zero-length request (nothing to stage).
    pub fn acquire(&self, len: u64) -> Option<PinnedSlab> {
        if len == 0 {
            return None;
        }
        let class = BufferArena::class_of(len);
        let mut st = self.inner.lock();
        let base = match st.free.get_mut(&class).and_then(Vec::pop) {
            Some(base) => {
                st.stats.slab_reuses += 1;
                base
            }
            None => {
                let base = st.next_base;
                st.next_base += class;
                st.stats.slab_allocs += 1;
                st.stats.footprint_bytes += class;
                base
            }
        };
        let id = st.next_id;
        st.next_id += 1;
        st.live.insert(id, (base, class, len));
        st.stats.acquired_bytes += len;
        st.stats.in_use_bytes += len;
        st.stats.high_water_bytes = st.stats.high_water_bytes.max(st.stats.in_use_bytes);
        Some(PinnedSlab {
            id,
            base,
            class_bytes: class,
            len,
        })
    }

    /// Returns a slab to its class free list. Returns `false` (and
    /// changes nothing) if the handle is not live — a double release
    /// must not corrupt the accounting.
    pub fn release(&self, slab: PinnedSlab) -> bool {
        let mut st = self.inner.lock();
        let Some((base, class, len)) = st.live.remove(&slab.id) else {
            return false;
        };
        st.stats.released_bytes += len;
        st.stats.in_use_bytes -= len;
        st.free.entry(class).or_default().push(base);
        true
    }

    /// Starts a fresh step window: resets the high-water mark to the
    /// current in-use level. Cumulative counters and the footprint
    /// persist — slab reuse across steps is the entire point.
    pub fn begin_step(&self) {
        let mut st = self.inner.lock();
        st.stats.high_water_bytes = st.stats.in_use_bytes;
    }

    /// Snapshot of the accounting counters.
    pub fn stats(&self) -> ArenaStats {
        self.inner.lock().stats
    }

    /// Number of slabs currently held by callers.
    pub fn live_slabs(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// The live slabs' address ranges (for aliasing checks in tests).
    pub fn live_ranges(&self) -> Vec<std::ops::Range<u64>> {
        self.inner
            .lock()
            .live
            .values()
            .map(|&(base, class, _)| base..base + class)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_up_to_power_of_two_classes() {
        assert_eq!(BufferArena::class_of(1), MIN_SLAB_BYTES);
        assert_eq!(BufferArena::class_of(4096), 4096);
        assert_eq!(BufferArena::class_of(4097), 8192);
        assert_eq!(BufferArena::class_of(3 << 20), 4 << 20);
    }

    #[test]
    fn zero_length_acquire_is_refused() {
        let arena = BufferArena::new();
        assert!(arena.acquire(0).is_none());
        assert_eq!(arena.stats(), ArenaStats::default());
    }

    #[test]
    fn live_slabs_never_alias() {
        let arena = BufferArena::new();
        let slabs: Vec<PinnedSlab> = (1..=8).filter_map(|i| arena.acquire(i * 1000)).collect();
        let ranges = arena.live_ranges();
        for (i, a) in ranges.iter().enumerate() {
            for b in ranges.iter().skip(i + 1) {
                assert!(a.end <= b.start || b.end <= a.start, "{a:?} vs {b:?}");
            }
        }
        for s in slabs {
            assert!(arena.release(s));
        }
    }

    #[test]
    fn release_then_acquire_reuses_the_slab_in_place() {
        let arena = BufferArena::new();
        let a = arena.acquire(10_000).expect("acquire");
        arena.release(a);
        let b = arena.acquire(12_000).expect("acquire");
        assert_eq!(b.base, a.base);
        assert_eq!(b.class_bytes, a.class_bytes);
        let st = arena.stats();
        assert_eq!(st.slab_allocs, 1);
        assert_eq!(st.slab_reuses, 1);
        assert_eq!(st.footprint_bytes, 16384);
        arena.release(b);
    }

    #[test]
    fn accounting_conserves_bytes() {
        let arena = BufferArena::new();
        let a = arena.acquire(5000).expect("acquire");
        let b = arena.acquire(7000).expect("acquire");
        let st = arena.stats();
        assert_eq!(st.acquired_bytes, 12_000);
        assert_eq!(st.in_use_bytes, 12_000);
        assert_eq!(st.high_water_bytes, 12_000);
        arena.release(a);
        let st = arena.stats();
        assert_eq!(st.released_bytes, 5000);
        assert_eq!(st.acquired_bytes, st.released_bytes + st.in_use_bytes);
        arena.release(b);
        assert_eq!(arena.live_slabs(), 0);
        let st = arena.stats();
        assert_eq!(st.acquired_bytes, st.released_bytes);
    }

    #[test]
    fn double_release_is_inert() {
        let arena = BufferArena::new();
        let a = arena.acquire(100).expect("acquire");
        assert!(arena.release(a));
        let before = arena.stats();
        assert!(!arena.release(a));
        assert_eq!(arena.stats(), before);
    }

    #[test]
    fn begin_step_resets_high_water_to_in_use() {
        let arena = BufferArena::new();
        let a = arena.acquire(10_000).expect("acquire");
        let b = arena.acquire(10_000).expect("acquire");
        arena.release(b);
        assert_eq!(arena.stats().high_water_bytes, 20_000);
        arena.begin_step();
        assert_eq!(arena.stats().high_water_bytes, 10_000);
        arena.release(a);
    }

    #[test]
    fn clones_share_one_pool() {
        let arena = BufferArena::new();
        let other = arena.clone();
        let a = arena.acquire(4096).expect("acquire");
        assert_eq!(other.live_slabs(), 1);
        other.release(a);
        assert_eq!(arena.live_slabs(), 0);
    }
}
