//! NVMe SSD model: bandwidth, endurance, write amplification, RAID0.
//!
//! Implements the endurance arithmetic of paper Sections 2.3 and 3.4:
//! endurance ratings use the JESD random-write method with a write
//! amplification factor (WAF) around 2.5, while activation offloading
//! issues large sequential writes with WAF ≈ 1, which stretches rated
//! endurance by roughly 2.5×. Lifespan is projected as
//! `t_life = S_endurance · t_step / S_activations`.

use serde::{Deserialize, Serialize};

/// Static characteristics of one SSD model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Product name.
    pub name: String,
    /// NAND cell type, e.g. `"SLC"`, `"TLC"`, `"3D XPoint"`.
    pub cell: String,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained sequential write bandwidth, bytes/s.
    pub write_bps: f64,
    /// Sustained sequential read bandwidth, bytes/s.
    pub read_bps: f64,
    /// Endurance rating in drive writes per day (JESD method, 5-year
    /// warranty).
    pub dwpd: f64,
    /// WAF assumed by the JESD rating.
    pub rated_waf: f64,
    /// Street price in US dollars (for $/PBW comparisons, Table 1).
    pub price_usd: f64,
}

/// Seconds in the 5-year warranty period DWPD ratings assume.
pub const WARRANTY_SECS: f64 = 5.0 * 365.25 * 24.0 * 3600.0;

/// Seconds per (Julian) year.
pub const YEAR_SECS: f64 = 365.25 * 24.0 * 3600.0;

impl SsdSpec {
    /// Lifetime *host* writes allowed by the JESD rating, in bytes
    /// (capacity × DWPD × warranty days).
    pub fn rated_pbw_bytes(&self) -> f64 {
        self.capacity_bytes as f64 * self.dwpd * (WARRANTY_SECS / 86_400.0)
    }

    /// Lifetime host writes under a different workload WAF: the media
    /// wears by `rated_pbw × rated_waf` total media writes, so host
    /// writes scale by `rated_waf / workload_waf` (≈2.5× for sequential
    /// offloading on a 2.5-rated-WAF drive).
    pub fn endurance_bytes(&self, workload_waf: f64) -> f64 {
        assert!(workload_waf >= 1.0, "WAF cannot be below 1");
        self.rated_pbw_bytes() * self.rated_waf / workload_waf
    }

    /// Price per petabyte written (JESD rating), Table 1's comparison
    /// column.
    pub fn price_per_pbw(&self) -> f64 {
        self.price_usd / (self.rated_pbw_bytes() / 1e15)
    }
}

/// Running wear accounting for one drive (or array) under a workload.
///
/// Besides the host-byte budget, the meter models *per-operation* write
/// amplification: every write op costs a fixed media overhead
/// (FTL mapping update plus the read-modify-write of a partially filled
/// erase block), so many small writes wear the media faster than one
/// coalesced write of the same payload. [`WearMeter::effective_waf`]
/// reports `media_bytes / host_bytes` — the quantity the paper drives
/// toward 1.0 with large sequential segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearMeter {
    /// Host bytes written so far.
    pub host_bytes: u64,
    /// Workload write-amplification factor.
    pub waf: f64,
    /// Endurance budget in host bytes at this WAF.
    pub endurance_bytes: f64,
    /// Media bytes actually worn (host bytes + per-op overheads).
    #[serde(default)]
    pub media_bytes: u64,
    /// Fixed media overhead charged per write *operation* (0 = the
    /// pre-existing ideal model where media == host).
    #[serde(default)]
    pub write_overhead_bytes: u64,
}

impl WearMeter {
    /// Creates a meter for a device with the given endurance at `waf`.
    pub fn new(endurance_bytes: f64, waf: f64) -> WearMeter {
        WearMeter {
            host_bytes: 0,
            waf,
            endurance_bytes,
            media_bytes: 0,
            write_overhead_bytes: 0,
        }
    }

    /// Sets the per-operation media overhead (builder style).
    pub fn with_write_overhead(mut self, bytes: u64) -> WearMeter {
        self.write_overhead_bytes = bytes;
        self
    }

    /// Records one host write operation.
    pub fn record_write(&mut self, bytes: u64) {
        self.record_batch(bytes, 1);
    }

    /// Records a coalesced batch: `bytes` of payload landing as `ops`
    /// write operations. The per-op overhead is charged per *operation*,
    /// so a batch that merges N tensors into one sequential segment pays
    /// one overhead instead of N — this is where coalescing buys back
    /// write amplification.
    pub fn record_batch(&mut self, bytes: u64, ops: u64) {
        self.host_bytes += bytes;
        self.media_bytes += bytes + ops * self.write_overhead_bytes;
    }

    /// Observed write amplification: media bytes per host byte. Equals
    /// the configured `waf` baseline scale only when no writes happened
    /// yet (returns `waf` on an untouched meter so dashboards have a
    /// defined value).
    pub fn effective_waf(&self) -> f64 {
        if self.host_bytes == 0 {
            self.waf
        } else {
            self.media_bytes as f64 / self.host_bytes as f64
        }
    }

    /// Fraction of endurance consumed (0 = fresh, 1 = worn out).
    pub fn wear_fraction(&self) -> f64 {
        self.host_bytes as f64 / self.endurance_bytes
    }

    /// Host bytes the device can still absorb before its endurance
    /// budget is spent (0 once worn out). Tiering benches use this to
    /// report how much write headroom a DRAM front tier preserves.
    pub fn remaining_bytes(&self) -> f64 {
        (self.endurance_bytes - self.host_bytes as f64).max(0.0)
    }

    /// Projected lifespan in years given a steady write rate, the paper's
    /// `t_life = S_endurance · t_step / S_activations` (Section 3.4).
    ///
    /// # Panics
    /// Panics if `bytes_per_step` is zero.
    pub fn projected_lifespan_years(&self, bytes_per_step: u64, step_secs: f64) -> f64 {
        assert!(bytes_per_step > 0, "no writes, infinite lifespan");
        self.endurance_bytes * step_secs / (bytes_per_step as f64 * YEAR_SECS)
    }
}

/// A RAID0 array: bandwidth and endurance sum across members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raid0 {
    /// Member drive model.
    pub member: SsdSpec,
    /// Number of drives striped.
    pub n: usize,
}

impl Raid0 {
    /// Creates an array of `n` identical drives.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(member: SsdSpec, n: usize) -> Raid0 {
        assert!(n > 0, "empty array");
        Raid0 { member, n }
    }

    /// Aggregate sequential write bandwidth.
    pub fn write_bps(&self) -> f64 {
        self.member.write_bps * self.n as f64
    }

    /// Aggregate sequential read bandwidth.
    pub fn read_bps(&self) -> f64 {
        self.member.read_bps * self.n as f64
    }

    /// Aggregate capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.member.capacity_bytes * self.n as u64
    }

    /// Aggregate endurance in host bytes at the workload WAF.
    pub fn endurance_bytes(&self, workload_waf: f64) -> f64 {
        self.member.endurance_bytes(workload_waf) * self.n as f64
    }

    /// A wear meter for the whole array.
    pub fn wear_meter(&self, workload_waf: f64) -> WearMeter {
        WearMeter::new(self.endurance_bytes(workload_waf), workload_waf)
    }
}

/// Multiplier on programme/erase cycles when the required data-retention
/// period is relaxed from `from_days` to `to_days` (paper Section 3.4:
/// NAND gets ~50× PE cycles going from 3 years to 3 days). Modelled as a
/// log-linear interpolation through those two published points.
pub fn retention_relaxation_factor(from_days: f64, to_days: f64) -> f64 {
    assert!(
        from_days > 0.0 && to_days > 0.0,
        "retention must be positive"
    );
    if to_days >= from_days {
        return 1.0;
    }
    // 50x over a (3y -> 3d) span of log10(365.25) decades.
    let decades = (from_days / to_days).log10();
    let per_decade = 50f64.powf(1.0 / (3.0f64 * 365.25 / 3.0).log10());
    per_decade.powf(decades)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SsdSpec {
        SsdSpec {
            name: "toy".into(),
            cell: "TLC".into(),
            capacity_bytes: 1_000_000_000_000, // 1 TB
            write_bps: 2e9,
            read_bps: 4e9,
            dwpd: 3.0,
            rated_waf: 2.5,
            price_usd: 1000.0,
        }
    }

    #[test]
    fn rated_pbw_is_capacity_times_dwpd_times_days() {
        let s = toy();
        // 1 TB * 3 DWPD * 1826.25 days ≈ 5.48 PB
        let pbw = s.rated_pbw_bytes() / 1e15;
        assert!((pbw - 5.47875).abs() < 1e-3, "{pbw}");
    }

    #[test]
    fn sequential_workload_stretches_endurance() {
        let s = toy();
        let jesd = s.endurance_bytes(2.5);
        let seq = s.endurance_bytes(1.0);
        assert!((seq / jesd - 2.5).abs() < 1e-9);
    }

    #[test]
    fn lifespan_projection_matches_formula() {
        let meter = WearMeter::new(1e15, 1.0); // 1 PB endurance
                                               // 10 GB per 1-second step -> 1e15/1e10 = 1e5 steps = 1e5 s.
        let years = meter.projected_lifespan_years(10_000_000_000, 1.0);
        let expect = 1e5 / YEAR_SECS;
        assert!((years - expect).abs() < 1e-9);
    }

    #[test]
    fn wear_fraction_accumulates() {
        let mut meter = WearMeter::new(1000.0, 1.0);
        meter.record_write(250);
        meter.record_write(250);
        assert!((meter.wear_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_overhead_keeps_media_equal_to_host() {
        let mut meter = WearMeter::new(1e12, 1.0);
        meter.record_write(4096);
        meter.record_batch(1 << 20, 7);
        assert_eq!(meter.media_bytes, meter.host_bytes);
        assert!((meter.effective_waf() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coalescing_pays_one_overhead_instead_of_n() {
        let payload = 1u64 << 20;
        let mut small = WearMeter::new(1e12, 1.0).with_write_overhead(4096);
        for _ in 0..16 {
            small.record_write(payload / 16);
        }
        let mut big = WearMeter::new(1e12, 1.0).with_write_overhead(4096);
        big.record_batch(payload, 1);
        assert_eq!(small.host_bytes, big.host_bytes);
        assert_eq!(small.media_bytes - big.media_bytes, 15 * 4096);
        assert!(small.effective_waf() > big.effective_waf());
    }

    #[test]
    fn untouched_meter_reports_the_configured_waf() {
        let meter = WearMeter::new(1e12, 2.5).with_write_overhead(4096);
        assert!((meter.effective_waf() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn raid0_sums_members() {
        let arr = Raid0::new(toy(), 4);
        assert_eq!(arr.write_bps(), 8e9);
        assert_eq!(arr.capacity_bytes(), 4_000_000_000_000);
        assert!((arr.endurance_bytes(1.0) / toy().endurance_bytes(1.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn retention_relaxation_hits_published_point() {
        // 3 years -> 3 days must give ~50x.
        let f = retention_relaxation_factor(3.0 * 365.25, 3.0);
        assert!((f - 50.0).abs() < 1.0, "{f}");
        // No relaxation -> 1.0.
        assert_eq!(retention_relaxation_factor(30.0, 30.0), 1.0);
        // Milder relaxation sits strictly between.
        let mid = retention_relaxation_factor(3.0 * 365.25, 30.0);
        assert!(mid > 1.0 && mid < 50.0, "{mid}");
    }

    #[test]
    fn price_per_pbw_is_finite_and_positive() {
        let p = toy().price_per_pbw();
        assert!(p > 0.0 && p.is_finite());
    }
}
