//! A CUDA-caching-allocator model.
//!
//! PyTorch's allocator never returns memory to the driver: freed blocks
//! go to size-bucketed free lists and are reused by best-fit, so the
//! *reserved* footprint is a high-water mark that fragmentation can
//! inflate well beyond the allocated bytes. The paper keeps PyTorch's
//! caching allocator in place (Section 3.1) and Figure 7 counts its
//! events; this model reproduces the reserved-vs-allocated distinction
//! so placement strategies can be compared on both.
//!
//! Model rules (matching the real allocator's visible behaviour):
//! * requests < 1 MiB round up to 512 B multiples ("small pool");
//!   requests ≥ 1 MiB round up to 2 MiB multiples ("large pool");
//! * a free block is reused for any request of the same pool whose
//!   rounded size fits; the block may be *split*, leaving a remainder
//!   block in the pool (large pool only, like the real allocator);
//! * nothing is ever returned to the device: `reserved` only grows.

use serde::{Deserialize, Serialize};

const SMALL_GRAIN: u64 = 512;
const SMALL_LIMIT: u64 = 1 << 20;
const LARGE_GRAIN: u64 = 2 << 20;

/// Rounds a request to its pool granularity.
pub fn rounded_size(bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    if bytes < SMALL_LIMIT {
        bytes.div_ceil(SMALL_GRAIN) * SMALL_GRAIN
    } else {
        bytes.div_ceil(LARGE_GRAIN) * LARGE_GRAIN
    }
}

/// Allocator statistics after a replayed event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Bytes currently handed out to live tensors (rounded sizes).
    pub allocated: u64,
    /// Peak of `allocated`.
    pub allocated_peak: u64,
    /// Bytes reserved from the device (never shrinks).
    pub reserved: u64,
    /// Cache hits (requests served from the free lists).
    pub reuses: u64,
    /// Requests that had to reserve new device memory.
    pub fresh_allocations: u64,
    /// Large-pool splits performed.
    pub splits: u64,
}

impl AllocatorStats {
    /// Reserved bytes not currently allocated (cached + fragmentation).
    pub fn cached(&self) -> u64 {
        self.reserved - self.allocated
    }

    /// `reserved / allocated_peak` — 1.0 means no fragmentation overhead.
    pub fn overhead_ratio(&self) -> f64 {
        if self.allocated_peak == 0 {
            1.0
        } else {
            self.reserved as f64 / self.allocated_peak as f64
        }
    }
}

/// The caching allocator. Feed it the same alloc/free stream a
/// [`crate::GpuMemory`] sees (sizes in requested bytes) and read the
/// reserved footprint back.
#[derive(Debug, Default, Clone)]
pub struct CachingAllocator {
    small_free: Vec<u64>,
    large_free: Vec<u64>,
    stats: AllocatorStats,
}

impl CachingAllocator {
    /// An empty allocator.
    pub fn new() -> CachingAllocator {
        CachingAllocator::default()
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Serves an allocation request; returns the rounded block size the
    /// caller must pass back to [`CachingAllocator::free`].
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let size = rounded_size(bytes);
        if size == 0 {
            return 0;
        }
        let pool: &mut Vec<u64> = if size < SMALL_LIMIT {
            &mut self.small_free
        } else {
            &mut self.large_free
        };
        // Best fit: the smallest cached block that holds the request.
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| **b >= size)
            .min_by_key(|(_, b)| **b)
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let block = pool.swap_remove(i);
                self.stats.reuses += 1;
                // Large blocks split; the remainder stays cached. Small
                // blocks are handed out whole (slack is internal).
                if size >= SMALL_LIMIT && block > size {
                    pool.push(block - size);
                    self.stats.splits += 1;
                    self.stats.allocated += size;
                } else {
                    self.stats.allocated += block.max(size);
                }
            }
            None => {
                self.stats.fresh_allocations += 1;
                self.stats.reserved += size;
                self.stats.allocated += size;
            }
        }
        self.stats.allocated_peak = self.stats.allocated_peak.max(self.stats.allocated);
        size
    }

    /// Returns a block (by the size [`CachingAllocator::alloc`] reported)
    /// to the free lists.
    pub fn free(&mut self, rounded: u64) {
        if rounded == 0 {
            return;
        }
        self.stats.allocated = self.stats.allocated.saturating_sub(rounded);
        if rounded < SMALL_LIMIT {
            self.small_free.push(rounded);
        } else {
            self.large_free.push(rounded);
        }
    }

    /// Replays a `(bytes, is_free)` stream where frees reference the
    /// most recent live allocation of the same request size (the common
    /// tensor-lifetime pattern); returns the final statistics.
    pub fn replay(events: impl IntoIterator<Item = (u64, bool)>) -> AllocatorStats {
        let mut alloc = CachingAllocator::new();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (request, rounded)
        for (bytes, is_free) in events {
            if is_free {
                if let Some(pos) = live.iter().rposition(|(req, _)| *req == bytes) {
                    let (_, rounded) = live.swap_remove(pos);
                    alloc.free(rounded);
                }
            } else {
                let rounded = alloc.alloc(bytes);
                live.push((bytes, rounded));
            }
        }
        alloc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_matches_pool_granularity() {
        assert_eq!(rounded_size(0), 0);
        assert_eq!(rounded_size(1), 512);
        assert_eq!(rounded_size(512), 512);
        assert_eq!(rounded_size(513), 1024);
        assert_eq!(rounded_size((1 << 20) - 1), 1 << 20);
        assert_eq!(rounded_size(1 << 20), 2 << 20);
        assert_eq!(rounded_size((2 << 20) + 1), 4 << 20);
    }

    #[test]
    fn freed_blocks_are_reused_not_rereserved() {
        let mut a = CachingAllocator::new();
        let b1 = a.alloc(3 << 20);
        a.free(b1);
        let _b2 = a.alloc(3 << 20);
        let s = a.stats();
        assert_eq!(s.fresh_allocations, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.reserved, 4 << 20); // 3 MiB rounds to 4 MiB
    }

    #[test]
    fn reserved_never_shrinks() {
        let mut a = CachingAllocator::new();
        let blocks: Vec<u64> = (1..=8).map(|i| a.alloc(i << 20)).collect();
        let reserved = a.stats().reserved;
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.stats().reserved, reserved);
        assert_eq!(a.stats().allocated, 0);
        assert_eq!(a.stats().cached(), reserved);
    }

    #[test]
    fn large_blocks_split_and_remainder_stays_cached() {
        let mut a = CachingAllocator::new();
        let big = a.alloc(10 << 20);
        a.free(big);
        let _small = a.alloc(2 << 20);
        let s = a.stats();
        assert_eq!(s.splits, 1);
        assert_eq!(s.reserved, 10 << 20);
        assert_eq!(s.allocated, 2 << 20);
        // Remainder is reusable.
        let mut a2 = a.clone();
        let _ = a2.alloc(8 << 20);
        assert_eq!(a2.stats().fresh_allocations, 1, "no new reservation");
    }

    #[test]
    fn mismatched_size_churn_inflates_reserved() {
        // Alternating odd sizes defeat reuse: reserved grows beyond the
        // allocated peak — the fragmentation effect real recompute runs
        // suffer.
        let mut a = CachingAllocator::new();
        let mut last = None;
        for i in 0..16u64 {
            if let Some(b) = last.take() {
                a.free(b);
            }
            last = Some(a.alloc((3 + 2 * i) << 20));
        }
        let s = a.stats();
        assert!(s.overhead_ratio() > 1.5, "{:?}", s);
    }

    #[test]
    fn replay_pairs_frees_with_requests() {
        let stats = CachingAllocator::replay([
            (4 << 20, false),
            (4 << 20, false),
            (4 << 20, true),
            (4 << 20, false),
        ]);
        assert_eq!(stats.fresh_allocations, 2);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.allocated, 8 << 20);
    }

    #[test]
    fn steady_state_same_size_churn_has_no_overhead() {
        let mut events = Vec::new();
        for _ in 0..100 {
            events.push((8 << 20, false));
            events.push((8 << 20, true));
        }
        let stats = CachingAllocator::replay(events);
        assert_eq!(stats.reserved, 8 << 20);
        assert!((stats.overhead_ratio() - 1.0).abs() < 1e-9);
    }
}
