//! # ssdtrain-simhw
//!
//! Hardware timing substrate for the SSDTrain reproduction: everything the
//! paper measured on real silicon — an A100's kernel throughput, the GPU
//! memory allocator's footprint timeline, PCIe transfer channels, and
//! NVMe SSD bandwidth/endurance — modelled deterministically so that
//! paper-scale training steps can be *timed* while being executed
//! symbolically.
//!
//! The model is deliberately simple and documented per component:
//!
//! * [`GpuSpec`] — roofline kernel timing: `max(flops/throughput,
//!   bytes/bandwidth) + launch overhead`.
//! * [`GpuMemory`] — a [`ssdtrain_tensor::MemTracker`] recording every
//!   allocation/free with its simulated timestamp, reconstructing the
//!   paper's Figure 7 memory-footprint curve and per-class peaks.
//! * [`Channel`] — a FIFO bandwidth resource (PCIe write/read direction,
//!   NVLink); jobs queue and the channel reports per-job start/finish.
//! * [`BufferArena`] — the pinned host staging pool: size-classed slab
//!   reuse with high-water and footprint accounting, so offload
//!   configurations expose their real pinned-memory cost.
//! * [`SsdSpec`] / [`WearMeter`] / [`Raid0`] — sequential-write bandwidth,
//!   endurance in petabytes-written, write-amplification and retention
//!   relaxation (paper Sections 2.3 and 3.4).
//! * [`catalog`] — real device data behind Table 1, Figure 1 and
//!   Figure 2.
//! * [`SystemConfig`] — assembled machines, including the paper's
//!   evaluation testbed (Table 3).

pub mod allocator;
pub mod arena;
pub mod catalog;
pub mod fault;
pub mod gpu;
pub mod link;
pub mod memory;
pub mod ssd;
pub mod system;
pub mod time;

pub use allocator::{AllocatorStats, CachingAllocator};
pub use arena::{ArenaStats, BufferArena, PinnedSlab, MIN_SLAB_BYTES};
pub use fault::{FaultKind, FaultLog, FaultPlan, FaultRule, FaultTrigger};
pub use gpu::GpuSpec;
pub use link::{Channel, TransferObserver};
pub use memory::{FootprintPoint, GpuMemory, MemoryReport, PeakObserver};
pub use ssd::{Raid0, SsdSpec, WearMeter};
pub use system::{OffloadPath, SystemConfig};
pub use time::{SimClock, SimTime};
