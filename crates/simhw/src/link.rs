//! FIFO bandwidth channels (PCIe directions, NVLink).

use crate::time::SimTime;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Observes completed transfer bookings on a [`Channel`].
///
/// Implemented by higher layers (e.g. the trace crate's link bridge)
/// that want per-transfer spans without this crate depending on them.
/// Called outside the channel's internal lock, in submission order.
pub trait TransferObserver: Send + Sync {
    /// A transfer of `bytes` was booked on `channel`, occupying it over
    /// the simulated interval `[start, end]`.
    fn on_transfer(&self, channel: &str, start: SimTime, end: SimTime, bytes: u64);
}

#[derive(Debug)]
struct ChannelInner {
    free_at: SimTime,
    busy_secs: f64,
    bytes_total: u64,
    jobs: u64,
    slowdown: f64,
}

impl Default for ChannelInner {
    fn default() -> ChannelInner {
        ChannelInner {
            free_at: SimTime::ZERO,
            busy_secs: 0.0,
            bytes_total: 0,
            jobs: 0,
            slowdown: 1.0,
        }
    }
}

/// A shared FIFO transfer resource with fixed bandwidth.
///
/// Jobs submitted at time `t` start at `max(t, when the previous job
/// finished)` and occupy the channel for `bytes / bandwidth`. One channel
/// models one PCIe *direction* — the paper relies on PCIe being full
/// duplex so that activation writes (forward) and reads (backward) do not
/// contend.
///
/// ```
/// use ssdtrain_simhw::{Channel, SimTime};
/// let ch = Channel::new("pcie-write", 10e9); // 10 GB/s
/// let (s1, e1) = ch.submit(SimTime::ZERO, 10_000_000_000);
/// assert_eq!(e1.as_secs(), 1.0);
/// // Second job queues behind the first.
/// let (s2, _e2) = ch.submit(SimTime::from_secs(0.5), 1);
/// assert_eq!(s2.as_secs(), 1.0);
/// # let _ = s1;
/// ```
#[derive(Clone)]
pub struct Channel {
    name: String,
    bytes_per_sec: f64,
    inner: Arc<Mutex<ChannelInner>>,
    observer: Arc<Mutex<Option<Arc<dyn TransferObserver>>>>,
}

impl Channel {
    /// Creates a channel with the given bandwidth in bytes/second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not positive.
    pub fn new(name: &str, bytes_per_sec: f64) -> Channel {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Channel {
            name: name.to_owned(),
            bytes_per_sec,
            inner: Arc::new(Mutex::new(ChannelInner::default())),
            observer: Arc::new(Mutex::new(None)),
        }
    }

    /// Installs (or replaces) the transfer observer. Clones of this
    /// channel share the observer.
    pub fn set_observer(&self, observer: Arc<dyn TransferObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// Channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured (healthy) bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Bandwidth currently delivered, after any slowdown.
    pub fn effective_bandwidth(&self) -> f64 {
        self.bytes_per_sec / self.inner.lock().slowdown
    }

    /// Degrades the channel: jobs submitted from now on take `factor`
    /// times longer. Used by fault injection to model a device entering
    /// a slow mode mid-run; factors compose multiplicatively.
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn throttle(&self, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.inner.lock().slowdown *= factor;
    }

    /// Enqueues a transfer of `bytes` at `now`; returns `(start, end)`.
    pub fn submit(&self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let (start, end) = {
            let mut inner = self.inner.lock();
            let start = now.max(inner.free_at);
            let dur = bytes as f64 * inner.slowdown / self.bytes_per_sec;
            let end = start.plus_secs(dur);
            inner.free_at = end;
            inner.busy_secs += dur;
            inner.bytes_total += bytes;
            inner.jobs += 1;
            (start, end)
        };
        // Notify outside the queue lock so observers may inspect the
        // channel without deadlocking.
        let obs = self.observer.lock().clone();
        if let Some(obs) = obs {
            obs.on_transfer(&self.name, start, end, bytes);
        }
        (start, end)
    }

    /// When the channel next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.inner.lock().free_at
    }

    /// Total bytes transferred so far.
    pub fn bytes_total(&self) -> u64 {
        self.inner.lock().bytes_total
    }

    /// Number of jobs served.
    pub fn job_count(&self) -> u64 {
        self.inner.lock().jobs
    }

    /// Fraction of `[0, horizon]` the channel spent transferring.
    ///
    /// # Panics
    /// Panics if `horizon` is not positive.
    pub fn utilization(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        (self.inner.lock().busy_secs / horizon).min(1.0)
    }

    /// Clears accumulated state (new measured step). A slowdown applied
    /// via [`Channel::throttle`] persists — degraded hardware does not
    /// heal between steps.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let slowdown = inner.slowdown;
        *inner = ChannelInner {
            slowdown,
            ..ChannelInner::default()
        };
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Channel")
            .field("name", &self.name)
            .field("gbps", &(self.bytes_per_sec / 1e9))
            .field("jobs", &inner.jobs)
            .field("bytes_total", &inner.bytes_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_serialize_fifo() {
        let ch = Channel::new("w", 1e9);
        let (_s1, e1) = ch.submit(SimTime::ZERO, 1_000_000_000); // 1 s
        assert_eq!(e1.as_secs(), 1.0);
        let (s2, e2) = ch.submit(SimTime::from_secs(0.2), 500_000_000);
        assert_eq!(s2.as_secs(), 1.0);
        assert_eq!(e2.as_secs(), 1.5);
    }

    #[test]
    fn idle_gap_allows_immediate_start() {
        let ch = Channel::new("w", 1e9);
        ch.submit(SimTime::ZERO, 1_000_000_000);
        let (s, _) = ch.submit(SimTime::from_secs(5.0), 1);
        assert_eq!(s.as_secs(), 5.0);
    }

    #[test]
    fn utilization_counts_busy_time() {
        let ch = Channel::new("w", 1e9);
        ch.submit(SimTime::ZERO, 2_000_000_000); // 2 s busy
        assert!((ch.utilization(4.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn totals_accumulate_and_reset() {
        let ch = Channel::new("w", 1e9);
        ch.submit(SimTime::ZERO, 100);
        ch.submit(SimTime::ZERO, 200);
        assert_eq!(ch.bytes_total(), 300);
        assert_eq!(ch.job_count(), 2);
        ch.reset();
        assert_eq!(ch.bytes_total(), 0);
        assert_eq!(ch.free_at(), SimTime::ZERO);
    }

    #[test]
    fn throttle_slows_later_jobs_and_survives_reset() {
        let ch = Channel::new("w", 1e9);
        let (_, e) = ch.submit(SimTime::ZERO, 1_000_000_000);
        assert_eq!(e.as_secs(), 1.0);
        ch.throttle(4.0);
        assert_eq!(ch.effective_bandwidth(), 0.25e9);
        let (_, e) = ch.submit(SimTime::from_secs(10.0), 1_000_000_000);
        assert_eq!(e.as_secs(), 14.0);
        ch.reset();
        let (_, e) = ch.submit(SimTime::ZERO, 1_000_000_000);
        assert_eq!(e.as_secs(), 4.0);
    }

    #[test]
    fn transfer_observer_sees_each_booking() {
        #[derive(Default)]
        struct Rec(Mutex<Vec<(String, f64, f64, u64)>>);
        impl TransferObserver for Rec {
            fn on_transfer(&self, channel: &str, start: SimTime, end: SimTime, bytes: u64) {
                self.0
                    .lock()
                    .push((channel.to_owned(), start.as_secs(), end.as_secs(), bytes));
            }
        }
        let ch = Channel::new("w", 1e9);
        let rec = Arc::new(Rec::default());
        ch.set_observer(rec.clone());
        ch.submit(SimTime::ZERO, 1_000_000_000);
        ch.clone().submit(SimTime::ZERO, 500_000_000);
        assert_eq!(
            *rec.0.lock(),
            vec![
                ("w".to_owned(), 0.0, 1.0, 1_000_000_000),
                ("w".to_owned(), 1.0, 1.5, 500_000_000),
            ],
            "observer sees FIFO-resolved intervals, shared by clones"
        );
    }

    #[test]
    fn clones_share_the_queue() {
        let a = Channel::new("w", 1e9);
        let b = a.clone();
        b.submit(SimTime::ZERO, 1_000_000_000);
        assert_eq!(a.free_at().as_secs(), 1.0);
    }
}
