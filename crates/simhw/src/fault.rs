//! Deterministic fault injection for the offload path.
//!
//! A [`FaultPlan`] is a seeded, replayable schedule of I/O faults. The
//! cache's offload target is wrapped in a decorator (see
//! `ssdtrain::FaultyTarget`) that consults the plan on every write and
//! read; when a rule fires the decorator turns the operation into an
//! error — or throttles the I/O engine for [`FaultKind::SlowIo`] —
//! letting tests and experiments exercise the recovery machinery under
//! *exactly* reproducible failure sequences (the same discipline the
//! simulated clock brings to timing).
//!
//! Triggers mirror how real spill tiers degrade: a specific operation
//! failing ([`FaultTrigger::NthOp`]), capacity/endurance pressure after
//! a byte volume ([`FaultTrigger::ByteThreshold`]), a worn-out array
//! ([`FaultTrigger::WearFraction`]), and random transient errors
//! ([`FaultTrigger::Random`], driven by the plan's seed).

use serde::{Deserialize, Serialize};

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The write fails with an I/O error (spill dir gone, disk full).
    WriteError,
    /// The read fails with an I/O error (unreadable sector, lost file).
    ReadError,
    /// The device degrades: bandwidth divides by `factor` from now on.
    SlowIo {
        /// Slowdown divisor applied to the affected direction (> 1 is
        /// slower).
        factor: f64,
    },
    /// The endurance budget is spent; writes are refused to protect the
    /// device.
    EnduranceExhausted,
}

impl FaultKind {
    /// Whether this fault applies to write operations.
    pub fn affects_writes(self) -> bool {
        !matches!(self, FaultKind::ReadError)
    }

    /// Whether this fault applies to read operations.
    pub fn affects_reads(self) -> bool {
        matches!(self, FaultKind::ReadError | FaultKind::SlowIo { .. })
    }
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Fires on the `nth` I/O operation (0-based, counted across reads
    /// and writes in submission order).
    NthOp {
        /// Operation index that triggers the fault.
        nth: u64,
    },
    /// Fires on every operation once cumulative transferred bytes reach
    /// `bytes`.
    ByteThreshold {
        /// Cumulative byte volume that arms the fault.
        bytes: u64,
    },
    /// Fires once the device's wear fraction (host bytes written over
    /// endurance budget) reaches `fraction`.
    WearFraction {
        /// Wear fraction in `[0, 1]` that arms the fault.
        fraction: f64,
    },
    /// Fires independently on each operation with probability `prob`,
    /// drawn from the plan's seeded generator.
    Random {
        /// Per-operation firing probability in `[0, 1]`.
        prob: f64,
    },
}

/// One (trigger, kind) rule with an optional budget of firings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// When the rule fires.
    pub trigger: FaultTrigger,
    /// What the firing does.
    pub kind: FaultKind,
    /// How many times the rule may fire; `None` means unbounded.
    pub max_fires: Option<u64>,
    fired: u64,
}

impl FaultRule {
    fn armed(&self) -> bool {
        self.max_fires.is_none_or(|m| self.fired < m)
    }
}

/// Snapshot of how often a plan has fired, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultLog {
    /// Total I/O operations observed.
    pub ops: u64,
    /// Faults fired on writes.
    pub write_faults: u64,
    /// Faults fired on reads.
    pub read_faults: u64,
    /// `SlowIo` firings (also counted in the direction totals).
    pub slowdowns: u64,
}

/// A seeded, deterministic schedule of injected I/O faults.
///
/// ```
/// use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
/// let mut plan = FaultPlan::new(42)
///     .with_fault(FaultTrigger::NthOp { nth: 1 }, FaultKind::WriteError);
/// assert_eq!(plan.on_write(100, 0.0), None); // op 0 passes
/// assert_eq!(plan.on_write(100, 0.0), Some(FaultKind::WriteError)); // op 1
/// assert_eq!(plan.on_write(100, 0.0), None); // NthOp fires exactly once
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    rng: u64,
    op_idx: u64,
    cum_bytes: u64,
    log: FaultLog,
}

impl FaultPlan {
    /// Creates an empty plan whose `Random` triggers draw from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            seed,
            rng: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            op_idx: 0,
            cum_bytes: 0,
            log: FaultLog::default(),
        }
    }

    /// Adds a rule that fires exactly once.
    pub fn with_fault(self, trigger: FaultTrigger, kind: FaultKind) -> FaultPlan {
        self.with_rule(FaultRule {
            trigger,
            kind,
            max_fires: Some(1),
            fired: 0,
        })
    }

    /// Adds a rule that fires every time its trigger matches.
    pub fn with_recurring_fault(self, trigger: FaultTrigger, kind: FaultKind) -> FaultPlan {
        self.with_rule(FaultRule {
            trigger,
            kind,
            max_fires: None,
            fired: 0,
        })
    }

    /// Adds an explicit rule.
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// The seed `Random` triggers draw from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Firing counters so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }

    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Reports a write of `bytes` against a device at `wear_fraction`;
    /// returns the fault to apply, if any. At most one rule fires per
    /// operation (first armed match in rule order).
    pub fn on_write(&mut self, bytes: u64, wear_fraction: f64) -> Option<FaultKind> {
        let fault = self.step(bytes, wear_fraction, true);
        if let Some(kind) = fault {
            self.log.write_faults += 1;
            if matches!(kind, FaultKind::SlowIo { .. }) {
                self.log.slowdowns += 1;
            }
        }
        fault
    }

    /// Reports a read of `bytes`; returns the fault to apply, if any.
    pub fn on_read(&mut self, bytes: u64) -> Option<FaultKind> {
        let fault = self.step(bytes, 0.0, false);
        if let Some(kind) = fault {
            self.log.read_faults += 1;
            if matches!(kind, FaultKind::SlowIo { .. }) {
                self.log.slowdowns += 1;
            }
        }
        fault
    }

    fn step(&mut self, bytes: u64, wear_fraction: f64, is_write: bool) -> Option<FaultKind> {
        let op = self.op_idx;
        self.op_idx += 1;
        self.cum_bytes += bytes;
        let cum = self.cum_bytes;
        // Random triggers consume exactly one draw per op regardless of
        // which rule matches, keeping the schedule independent of rule
        // order.
        let draw = self.next_unit();
        self.log.ops += 1;
        for rule in &mut self.rules {
            if !rule.armed() {
                continue;
            }
            let dir_ok = if is_write {
                rule.kind.affects_writes()
            } else {
                rule.kind.affects_reads()
            };
            if !dir_ok {
                continue;
            }
            let hit = match rule.trigger {
                FaultTrigger::NthOp { nth } => op == nth,
                FaultTrigger::ByteThreshold { bytes } => cum >= bytes,
                FaultTrigger::WearFraction { fraction } => wear_fraction >= fraction,
                FaultTrigger::Random { prob } => draw < prob,
            };
            if hit {
                rule.fired += 1;
                return Some(rule.kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_op_fires_exactly_once() {
        let mut p =
            FaultPlan::new(1).with_fault(FaultTrigger::NthOp { nth: 2 }, FaultKind::WriteError);
        assert_eq!(p.on_write(10, 0.0), None);
        assert_eq!(p.on_write(10, 0.0), None);
        assert_eq!(p.on_write(10, 0.0), Some(FaultKind::WriteError));
        assert_eq!(p.on_write(10, 0.0), None);
        assert_eq!(p.log().write_faults, 1);
    }

    #[test]
    fn byte_threshold_arms_on_cumulative_volume() {
        let mut p = FaultPlan::new(1).with_recurring_fault(
            FaultTrigger::ByteThreshold { bytes: 100 },
            FaultKind::EnduranceExhausted,
        );
        assert_eq!(p.on_write(60, 0.0), None);
        assert_eq!(p.on_write(60, 0.0), Some(FaultKind::EnduranceExhausted));
        // Recurring: keeps refusing.
        assert_eq!(p.on_write(1, 0.0), Some(FaultKind::EnduranceExhausted));
    }

    #[test]
    fn wear_fraction_trigger_uses_reported_wear() {
        let mut p = FaultPlan::new(1).with_fault(
            FaultTrigger::WearFraction { fraction: 0.5 },
            FaultKind::WriteError,
        );
        assert_eq!(p.on_write(10, 0.4), None);
        assert_eq!(p.on_write(10, 0.6), Some(FaultKind::WriteError));
    }

    #[test]
    fn read_errors_do_not_fire_on_writes() {
        let mut p = FaultPlan::new(1)
            .with_recurring_fault(FaultTrigger::NthOp { nth: 0 }, FaultKind::ReadError);
        assert_eq!(p.on_write(10, 0.0), None);
        let mut p =
            FaultPlan::new(1).with_fault(FaultTrigger::NthOp { nth: 0 }, FaultKind::ReadError);
        assert_eq!(p.on_read(10), Some(FaultKind::ReadError));
    }

    #[test]
    fn random_trigger_is_seed_deterministic() {
        let run = |seed| {
            let mut p = FaultPlan::new(seed)
                .with_recurring_fault(FaultTrigger::Random { prob: 0.3 }, FaultKind::WriteError);
            (0..64)
                .map(|_| p.on_write(1, 0.0).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().any(|f| *f), "prob 0.3 over 64 ops fires");
    }

    #[test]
    fn slow_io_counts_in_the_log() {
        let mut p = FaultPlan::new(1).with_fault(
            FaultTrigger::NthOp { nth: 0 },
            FaultKind::SlowIo { factor: 4.0 },
        );
        assert_eq!(p.on_write(10, 0.0), Some(FaultKind::SlowIo { factor: 4.0 }));
        assert_eq!(p.log().slowdowns, 1);
    }
}
