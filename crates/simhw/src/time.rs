//! Simulated time.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A point in simulated time, in seconds from step start.
///
/// Backed by `f64`; all arithmetic is pure, so runs are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From seconds.
    pub fn from_secs(s: f64) -> SimTime {
        SimTime(s)
    }

    /// As seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// As milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// This time advanced by `s` seconds.
    pub fn plus_secs(self, s: f64) -> SimTime {
        SimTime(self.0 + s)
    }

    /// Elementwise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Difference in seconds (`self - earlier`).
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// A shared simulated clock.
///
/// The training-step executor advances it past each kernel; the tensor
/// cache reads it when submitting I/O jobs and advances it when an unpack
/// must wait for a reload (that advance *is* the exposed I/O latency the
/// paper measures).
///
/// ```
/// use ssdtrain_simhw::SimClock;
/// let clock = SimClock::new();
/// clock.advance_by(1.5);
/// assert_eq!(clock.now().as_secs(), 1.5);
/// clock.advance_to(ssdtrain_simhw::SimTime::from_secs(1.0)); // no-op: in the past
/// assert_eq!(clock.now().as_secs(), 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<SimTime>>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        *self.now.lock()
    }

    /// Advances by `secs` (must be non-negative).
    ///
    /// # Panics
    /// Panics on negative durations.
    pub fn advance_by(&self, secs: f64) -> SimTime {
        assert!(secs >= 0.0, "cannot advance by a negative duration");
        let mut now = self.now.lock();
        *now = now.plus_secs(secs);
        *now
    }

    /// Advances to `t` if `t` is in the future; otherwise leaves the clock
    /// unchanged. Returns the stall duration actually incurred.
    pub fn advance_to(&self, t: SimTime) -> f64 {
        let mut now = self.now.lock();
        if t > *now {
            let stall = t.since(*now);
            *now = t;
            stall
        } else {
            0.0
        }
    }

    /// Resets to zero (start of a new measured step).
    pub fn reset(&self) {
        *self.now.lock() = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_by_accumulates() {
        let c = SimClock::new();
        c.advance_by(0.25);
        c.advance_by(0.75);
        assert_eq!(c.now().as_secs(), 1.0);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance_by(2.0);
        assert_eq!(c.advance_to(SimTime::from_secs(1.0)), 0.0);
        assert_eq!(c.now().as_secs(), 2.0);
        let stall = c.advance_to(SimTime::from_secs(3.5));
        assert!((stall - 1.5).abs() < 1e-12);
        assert_eq!(c.now().as_secs(), 3.5);
    }

    #[test]
    fn clones_share_the_clock() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance_by(1.0);
        assert_eq!(a.now().as_secs(), 1.0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance_by(5.0);
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn since_and_display() {
        let t = SimTime::from_secs(2.5);
        assert_eq!(t.since(SimTime::from_secs(1.0)), 1.5);
        assert_eq!(t.to_string(), "2.500000s");
        assert_eq!(t.as_millis(), 2500.0);
    }
}
