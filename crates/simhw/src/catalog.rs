//! Real-device data behind the paper's Tables and Figures.
//!
//! * [`ssds`] — the endurance-focused drives of Table 1 plus the Intel
//!   Optane P5800X used in the evaluation testbed (Table 3).
//! * [`accelerators`] — the GPU/TPU trend points of Figure 1.
//! * [`llms`] — model-size trend points of Figure 1.
//! * [`instances`] — cluster/cloud host-memory limits of Figure 2.
//! * [`megatron_configs`] — the large-system configurations (from the
//!   Megatron-LM scaling study the paper cites as \[77\]) that Figure 9's
//!   lifespan/bandwidth modelling sweeps over.

use crate::ssd::SsdSpec;
use serde::{Deserialize, Serialize};

/// One accelerator generation (Figure 1 trend point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorPoint {
    /// Device name.
    pub name: String,
    /// Release year (fractional years allowed).
    pub year: f64,
    /// Peak FP16 (or BF16) training throughput, TFLOP/s.
    pub fp16_tflops: f64,
    /// On-package memory capacity, GB.
    pub memory_gb: f64,
}

/// One LLM release (Figure 1 trend point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmPoint {
    /// Model name.
    pub name: String,
    /// Release year.
    pub year: f64,
    /// Parameter count in billions.
    pub params_b: f64,
}

/// A cluster node or cloud instance (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstancePoint {
    /// Instance or cluster name.
    pub name: String,
    /// GPUs per node.
    pub gpus: u32,
    /// Host memory, GB.
    pub host_mem_gb: f64,
    /// Local NVMe capacity, GB (expandable; this is the stock config).
    pub local_ssd_gb: f64,
}

/// One large-system training configuration for the Figure 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegatronConfig {
    /// Framework label: `"Megatron"` or `"ZeRO3"`.
    pub framework: String,
    /// Parameters in billions.
    pub params_b: f64,
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Global batch size in sequences.
    pub batch: usize,
    /// Total GPUs.
    pub gpus: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Measured per-GPU model throughput, TFLOP/s (from the published
    /// scaling study; captures all communication inefficiency).
    pub tflops_per_gpu: f64,
}

/// Table 1 drives and the testbed's Optane P5800X.
pub mod ssds {
    use super::*;

    /// Kioxia FL6 3.2 TB — 96-layer SLC, 60 DWPD write-intensive drive.
    pub fn kioxia_fl6() -> SsdSpec {
        SsdSpec {
            name: "Kioxia FL6 3.2TB".into(),
            cell: "96L SLC".into(),
            capacity_bytes: 3_200_000_000_000,
            write_bps: 3.9e9,
            read_bps: 6.2e9,
            dwpd: 60.0,
            rated_waf: 2.5,
            price_usd: 4754.0, // US$13.9 per PBW at 342 PBW (Table 1)
        }
    }

    /// Solidigm D7-P5620 12.8 TB — mainstream 144-layer TLC, 3 DWPD.
    pub fn solidigm_p5620() -> SsdSpec {
        SsdSpec {
            name: "Solidigm D7-P5620 12.8TB".into(),
            cell: "144L TLC".into(),
            capacity_bytes: 12_800_000_000_000,
            write_bps: 4.2e9,
            read_bps: 7.1e9,
            dwpd: 3.0,
            rated_waf: 2.5,
            price_usd: 2865.0, // US$43.8 per PBW at 65.4 PBW (Table 1)
        }
    }

    /// Solidigm D7-P5810 1.6 TB — 144-layer SLC, 65 DWPD sequential.
    pub fn solidigm_p5810() -> SsdSpec {
        SsdSpec {
            name: "Solidigm D7-P5810 1.6TB".into(),
            cell: "144L SLC".into(),
            capacity_bytes: 1_600_000_000_000,
            write_bps: 5.0e9,
            read_bps: 6.4e9,
            dwpd: 65.0,
            rated_waf: 2.5,
            price_usd: 1621.0, // US$11.1 per PBW at 146 PBW (Table 1)
        }
    }

    /// Intel Optane P5800X 1.6 TB — the evaluation testbed drive
    /// (Table 3); 3D XPoint has effectively no erase-block write
    /// amplification, hence a rated WAF of 1.
    pub fn optane_p5800x() -> SsdSpec {
        SsdSpec {
            name: "Intel Optane P5800X 1.6TB".into(),
            cell: "3D XPoint".into(),
            capacity_bytes: 1_600_000_000_000,
            write_bps: 6.1e9,
            read_bps: 7.2e9,
            dwpd: 100.0,
            rated_waf: 1.0,
            price_usd: 3000.0, // ≈ US$10.27 per PBW (Section 4.4)
        }
    }

    /// The hypothetical 12.8 TB D7-P5810-class drive the paper's
    /// Section 3.4 modelling assumes four of per GPU ("We assume four
    /// Solidigm D7-P5810 12.8TB for each GPU") — P5810 endurance
    /// characteristics at P5620-class capacity.
    pub fn solidigm_p5810_12t8() -> SsdSpec {
        SsdSpec {
            name: "Solidigm D7-P5810-class 12.8TB (hypothetical)".into(),
            cell: "144L SLC".into(),
            capacity_bytes: 12_800_000_000_000,
            write_bps: 5.0e9,
            read_bps: 6.4e9,
            dwpd: 65.0,
            rated_waf: 2.5,
            price_usd: 12_968.0, // same US$11.1/PBW as the 1.6 TB part
        }
    }

    /// The three Table 1 drives, in table order.
    pub fn table1() -> Vec<SsdSpec> {
        vec![kioxia_fl6(), solidigm_p5620(), solidigm_p5810()]
    }
}

/// Figure 1's accelerator trend points (Nvidia data-center GPUs and
/// Google TPUs; FP16/BF16 dense throughput).
pub fn accelerators() -> Vec<AcceleratorPoint> {
    let p = |name: &str, year: f64, tf: f64, gb: f64| AcceleratorPoint {
        name: name.into(),
        year,
        fp16_tflops: tf,
        memory_gb: gb,
    };
    vec![
        p("K80", 2014.9, 8.7, 12.0), // FP32-era; per-die memory, FP16 ≈ FP32 rate
        p("P100", 2016.4, 21.2, 16.0),
        p("V100", 2017.5, 125.0, 16.0),
        p("V100-32", 2018.2, 125.0, 32.0),
        p("TPUv2", 2017.4, 46.0, 16.0),
        p("TPUv3", 2018.4, 123.0, 32.0),
        p("A100", 2020.4, 312.0, 40.0),
        p("A100-80", 2020.9, 312.0, 80.0),
        p("TPUv4", 2021.4, 275.0, 32.0),
        p("H100", 2022.7, 989.0, 80.0),
        p("TPUv5p", 2023.9, 459.0, 95.0),
        p("H200", 2024.2, 989.0, 141.0),
        p("B200", 2024.9, 2250.0, 192.0),
    ]
}

/// Figure 1's LLM size trend points.
pub fn llms() -> Vec<LlmPoint> {
    let p = |name: &str, year: f64, b: f64| LlmPoint {
        name: name.into(),
        year,
        params_b: b,
    };
    vec![
        p("GPT-1", 2018.4, 0.117),
        p("BERT-L", 2018.8, 0.34),
        p("GPT-2", 2019.1, 1.5),
        p("T5-11B", 2019.8, 11.0),
        p("GPT-3", 2020.4, 175.0),
        p("MT-NLG", 2021.8, 530.0),
        p("PaLM", 2022.3, 540.0),
        p("GPT-4 (est.)", 2023.2, 1800.0),
    ]
}

/// Figure 2's host-memory-limited instances.
pub fn instances() -> Vec<InstancePoint> {
    let p = |name: &str, gpus: u32, mem: f64, ssd: f64| InstancePoint {
        name: name.into(),
        gpus,
        host_mem_gb: mem,
        local_ssd_gb: ssd,
    };
    vec![
        p("GCP a2-highgpu-8g", 8, 680.0, 3000.0),
        p("Azure ND A100 v4", 8, 900.0, 6500.0),
        p("NCSA Delta gpuA100x4", 4, 256.0, 1600.0),
        p("DGX A100", 8, 1024.0, 15360.0),
    ]
}

/// The large-system configurations Figure 9 sweeps: the published
/// Megatron-LM scaling-study table (hidden/layers/batch/GPUs/achieved
/// TFLOPS per GPU) plus ZeRO stage-3 runs at representative sizes with
/// the lower per-GPU efficiency DeepSpeed reports. Exact per-column
/// labels of the original figure are reconstructed from these public
/// tables (see EXPERIMENTS.md).
pub fn megatron_configs() -> Vec<MegatronConfig> {
    let m = |params_b: f64,
             hidden: usize,
             layers: usize,
             heads: usize,
             batch: usize,
             gpus: usize,
             tp: usize,
             pp: usize,
             tflops: f64| MegatronConfig {
        framework: "Megatron".into(),
        params_b,
        hidden,
        layers,
        heads,
        seq: 2048,
        batch,
        gpus,
        tp,
        pp,
        tflops_per_gpu: tflops,
    };
    let z = |params_b: f64,
             hidden: usize,
             layers: usize,
             heads: usize,
             batch: usize,
             gpus: usize,
             tflops: f64| MegatronConfig {
        framework: "ZeRO3".into(),
        params_b,
        hidden,
        layers,
        heads,
        seq: 2048,
        batch,
        gpus,
        tp: 1,
        pp: 1,
        tflops_per_gpu: tflops,
    };
    vec![
        m(1.7, 2304, 24, 24, 512, 32, 1, 1, 137.0),
        m(3.6, 3072, 30, 32, 512, 64, 2, 1, 138.0),
        m(7.5, 4096, 36, 32, 512, 128, 4, 1, 142.0),
        m(18.4, 6144, 40, 48, 1024, 256, 8, 1, 135.0),
        m(39.1, 8192, 48, 64, 1536, 512, 8, 2, 138.0),
        m(76.1, 10240, 60, 80, 1792, 1024, 8, 4, 140.0),
        m(145.6, 12288, 80, 96, 2304, 1536, 8, 8, 148.0),
        m(310.1, 16384, 96, 128, 2160, 1920, 8, 16, 155.0),
        m(529.6, 20480, 105, 128, 2520, 2520, 8, 35, 163.0),
        m(1008.0, 25600, 128, 160, 3072, 3072, 8, 64, 163.0),
        z(13.0, 5120, 40, 40, 1024, 64, 47.0),
        z(175.0, 12288, 96, 96, 1536, 384, 44.0),
        z(530.0, 20480, 105, 128, 2100, 1120, 40.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pbw_matches_published_numbers() {
        // Paper Table 1: FL6 342 PBW, P5620 65.4 PBW, P5810 146 PBW.
        let fl6 = ssds::kioxia_fl6().rated_pbw_bytes() / 1e15;
        assert!((fl6 - 342.0).abs() / 342.0 < 0.05, "FL6 {fl6}");
        let p5620 = ssds::solidigm_p5620().rated_pbw_bytes() / 1e15;
        assert!((p5620 - 65.4).abs() / 65.4 < 0.10, "P5620 {p5620}");
        let p5810 = ssds::solidigm_p5810().rated_pbw_bytes() / 1e15;
        assert!((p5810 - 146.0).abs() / 146.0 < 0.35, "P5810 {p5810}");
    }

    #[test]
    fn table1_price_per_pbw_ordering_matches_paper() {
        // Paper: P5810 ($11.1) < FL6 ($13.9) < P5620 ($43.8).
        let fl6 = ssds::kioxia_fl6().price_per_pbw();
        let p5620 = ssds::solidigm_p5620().price_per_pbw();
        let p5810 = ssds::solidigm_p5810().price_per_pbw();
        assert!(p5810 < fl6 && fl6 < p5620, "{p5810} {fl6} {p5620}");
    }

    #[test]
    fn optane_price_per_pbw_near_paper_value() {
        let p = ssds::optane_p5800x().price_per_pbw();
        assert!((p - 10.27).abs() < 1.0, "{p}");
    }

    #[test]
    fn trend_datasets_are_nonempty_and_sorted_enough() {
        let acc = accelerators();
        assert!(acc.len() >= 10);
        assert!(acc.iter().all(|a| a.fp16_tflops > 0.0 && a.memory_gb > 0.0));
        let ll = llms();
        assert!(ll.len() >= 6);
        assert!(ll.windows(2).all(|w| w[0].year <= w[1].year));
    }

    #[test]
    fn instances_have_bounded_host_memory() {
        // The Figure 2 argument: host memory per node ≤ ~1 TB while SSDs
        // scale to tens of TB.
        for i in instances() {
            assert!(i.host_mem_gb <= 1100.0, "{}", i.name);
        }
    }

    #[test]
    fn megatron_table_is_consistent() {
        for c in megatron_configs() {
            assert!(c.gpus >= c.tp * c.pp, "{}", c.params_b);
            assert_eq!(c.hidden % c.heads, 0, "{}", c.params_b);
            assert!(c.tflops_per_gpu > 30.0 && c.tflops_per_gpu < 200.0);
            // Parameter count roughly 12 * L * h^2 (GPT-style).
            let approx = 12.0 * c.layers as f64 * (c.hidden as f64).powi(2) / 1e9;
            let ratio = approx / c.params_b;
            assert!((0.6..1.6).contains(&ratio), "{}: ratio {ratio}", c.params_b);
        }
    }
}
