//! A registry of named counters, gauges and histograms.
//!
//! Subsumes ad-hoc stats structs (`OffloadStats` fields, step timings)
//! behind one queryable, renderable surface. Names are stored in a
//! `BTreeMap`, so snapshots and text renderings are deterministically
//! ordered.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Moment summary of an observed distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic accumulator.
    Counter(u64),
    /// Last-write-wins sample.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

/// A cloneable registry of named metrics.
///
/// ```
/// use ssdtrain_trace::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.inc_counter("offload.store_jobs", 3);
/// m.inc_counter("offload.store_jobs", 2);
/// m.set_gauge("mem.act_peak_bytes", 1024.0);
/// m.observe("step.secs", 0.5);
/// m.observe("step.secs", 1.5);
/// assert_eq!(m.counter("offload.store_jobs"), 5);
/// assert_eq!(m.histogram("step.secs").unwrap().mean(), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, MetricValue>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    ///
    /// A name previously used with a different metric kind is replaced.
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock();
        match m.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            _ => {
                m.insert(name.to_owned(), MetricValue::Counter(delta));
            }
        }
    }

    /// Sets the named gauge.
    ///
    /// A name previously used with a different metric kind is replaced.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// Records one observation into the named histogram.
    ///
    /// A name previously used with a different metric kind is replaced.
    pub fn observe(&self, name: &str, value: f64) {
        let mut m = self.inner.lock();
        match m.get_mut(name) {
            Some(MetricValue::Histogram(h)) => {
                h.count += 1;
                h.sum += value;
                h.min = h.min.min(value);
                h.max = h.max.max(value);
            }
            _ => {
                m.insert(
                    name.to_owned(),
                    MetricValue::Histogram(HistogramSummary {
                        count: 1,
                        sum: value,
                        min: value,
                        max: value,
                    }),
                );
            }
        }
    }

    /// Current value of the named counter (0 if absent or another kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Current value of the named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Summary of the named histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.inner.lock().get(name) {
            Some(MetricValue::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops all metrics.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Renders all metrics as stable, line-oriented text
    /// (`name value`, histograms expanded into `_count/_sum/_min/_max`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{name}_count {}", h.count);
                    let _ = writeln!(out, "{name}_sum {:.6}", h.sum);
                    let _ = writeln!(out, "{name}_min {:.6}", h.min);
                    let _ = writeln!(out, "{name}_max {:.6}", h.max);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc_counter("a", 1);
        m.inc_counter("a", 41);
        assert_eq!(m.counter("a"), 42);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.0);
        assert_eq!(m.gauge("g"), Some(2.0));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histograms_track_moments() {
        let m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn kind_change_replaces() {
        let m = MetricsRegistry::new();
        m.set_gauge("x", 9.0);
        m.inc_counter("x", 5);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.gauge("x"), None);
    }

    #[test]
    fn render_text_is_sorted_and_stable() {
        let m = MetricsRegistry::new();
        m.inc_counter("b.count", 2);
        m.set_gauge("a.gauge", 0.5);
        m.observe("c.hist", 1.0);
        let text = m.render_text();
        assert_eq!(
            text,
            "a.gauge 0.500000\nb.count 2\nc.hist_count 1\nc.hist_sum 1.000000\nc.hist_min 1.000000\nc.hist_max 1.000000\n"
        );
        assert_eq!(text, m.render_text());
    }

    #[test]
    fn clones_share_state() {
        let a = MetricsRegistry::new();
        let b = a.clone();
        b.inc_counter("shared", 1);
        assert_eq!(a.counter("shared"), 1);
    }
}
