//! Unified observability layer for the SSDTrain simulator.
//!
//! The paper's key claims — overlap of offload I/O with compute, the ROK
//! trade-off, adaptive-offloading convergence — are *timeline* arguments.
//! End-of-step aggregates ([`OffloadStats`-style counters]) cannot show
//! *why* a step is slow or whether a store actually overlapped the
//! forward pass. This crate provides the substrate:
//!
//! * [`TraceSink`] — a lock-cheap, cloneable recorder of typed spans,
//!   instants and counter samples stamped on the **simulated clock**
//!   ([`SimTime`]). A disabled sink (the default) costs one `Option`
//!   check per call site; an enabled sink appends to a `Vec` under a
//!   mutex, which is uncontended in the single-threaded simulator.
//! * [`MetricsRegistry`] — named counters / gauges / histograms that
//!   subsume ad-hoc stats structs for dashboard-style consumption.
//! * [`chrome_trace_json`] — a Chrome-trace (Perfetto JSON) exporter,
//!   hand-serialized with deterministic float formatting so golden-file
//!   tests can assert byte stability.
//! * [`text_summary`] — a plain-text per-step timeline summary.
//!
//! Event timestamps are simulated seconds converted to microseconds in
//! the exporter; each training step becomes one Chrome-trace *process*
//! (`pid = step`) because the simulated clock restarts at zero every
//! measured step.
//!
//! The [`MemoryTraceBridge`] and [`LinkTraceBridge`] adapters implement
//! the observer traits exposed by `ssdtrain-simhw` (which sits *below*
//! this crate in the dependency graph and therefore cannot emit trace
//! events directly).

mod chrome;
mod metrics;

pub use chrome::{chrome_trace_json, text_summary};
pub use metrics::{HistogramSummary, MetricValue, MetricsRegistry};

use parking_lot::Mutex;
use ssdtrain_simhw::{PeakObserver, SimTime, TransferObserver};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The fixed event taxonomy. Every category maps to a stable string
/// (`cat` in Chrome-trace output) and a display lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Store lifecycle: enqueue instants, committed write spans, cancels.
    Store,
    /// Activation reloads: synchronous and prefetch-issued load spans.
    Load,
    /// Prefetch decisions (issue instants).
    Prefetch,
    /// Deduplication hits (a pack that reused an existing record).
    Dedup,
    /// Data forwarding (an in-flight store served from memory).
    Forwarding,
    /// Stage boundaries (forward / backward / optimizer / micro-batch).
    Stage,
    /// Injected hardware faults.
    Fault,
    /// Recovery actions taken in response to faults.
    Recovery,
    /// Allocator peak updates (memory counters).
    Alloc,
    /// Raw link transfers (channel-level spans).
    Link,
    /// Exposed I/O stalls (compute blocked on a transfer).
    Stall,
    /// Session-level markers (step begin/end, pipeline commands).
    Session,
    /// Tier placement events (spill to a slower tier, full-stack
    /// refusal, demotion between tiers).
    Tier,
    /// Pinned staging-arena traffic (slab acquire/release, high-water
    /// counter samples).
    Arena,
    /// Write-coalescer lifecycle (segment seal/commit, member evictions).
    Coalesce,
}

impl TraceCategory {
    /// Stable string used as the Chrome-trace `cat` field.
    pub const fn as_str(self) -> &'static str {
        match self {
            TraceCategory::Store => "store",
            TraceCategory::Load => "load",
            TraceCategory::Prefetch => "prefetch",
            TraceCategory::Dedup => "dedup",
            TraceCategory::Forwarding => "forwarding",
            TraceCategory::Stage => "stage",
            TraceCategory::Fault => "fault",
            TraceCategory::Recovery => "recovery",
            TraceCategory::Alloc => "alloc",
            TraceCategory::Link => "link",
            TraceCategory::Stall => "stall",
            TraceCategory::Session => "session",
            TraceCategory::Tier => "tier",
            TraceCategory::Arena => "arena",
            TraceCategory::Coalesce => "coalesce",
        }
    }

    /// Display lane: `(tid, thread name)` in the Chrome-trace view, so
    /// related categories stack together.
    pub const fn lane(self) -> (u32, &'static str) {
        match self {
            TraceCategory::Session | TraceCategory::Stage => (0, "schedule"),
            TraceCategory::Store
            | TraceCategory::Dedup
            | TraceCategory::Forwarding
            | TraceCategory::Coalesce => (1, "store path"),
            TraceCategory::Load | TraceCategory::Prefetch | TraceCategory::Stall => {
                (2, "load path")
            }
            TraceCategory::Fault | TraceCategory::Recovery => (3, "faults"),
            TraceCategory::Alloc | TraceCategory::Link | TraceCategory::Arena => {
                (4, "memory+links")
            }
            TraceCategory::Tier => (5, "tiers"),
        }
    }
}

impl std::fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed argument value attached to an event. Byte counts are kept as
/// `U64` so byte-accounting cross-checks against stats structs stay
/// bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Exact unsigned integer (byte counts, ids).
    U64(u64),
    /// Floating-point measurement (factors, seconds).
    F64(f64),
    /// Free-form label (target names, fault kinds).
    Str(String),
}

impl ArgValue {
    /// The exact integer value, if this argument is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// What shape of event this is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A closed interval starting at `ts` (Chrome-trace `ph: "X"`).
    Span {
        /// Duration in simulated seconds.
        dur_secs: f64,
    },
    /// A point event (Chrome-trace `ph: "i"`).
    Instant,
    /// A counter sample; the series values live in `args`
    /// (Chrome-trace `ph: "C"`).
    Counter,
}

/// One recorded event on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Training step the event belongs to (1-based; 0 = before any step).
    pub step: u32,
    /// Simulated start time.
    pub ts: SimTime,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Taxonomy category.
    pub cat: TraceCategory,
    /// Human-readable name (e.g. `store`, `stage.forward`).
    pub name: String,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The `bytes` argument, if present — the payload size used by
    /// byte-accounting cross-checks.
    pub fn bytes(&self) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| *k == "bytes")
            .and_then(|(_, v)| v.as_u64())
    }

    /// End time for spans (`ts` for instants and counters).
    pub fn end(&self) -> SimTime {
        match self.kind {
            EventKind::Span { dur_secs } => self.ts.plus_secs(dur_secs),
            _ => self.ts,
        }
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    events: Mutex<Vec<TraceEvent>>,
    step: AtomicU32,
}

/// A cloneable, lock-cheap recorder of trace events.
///
/// The default sink is **disabled**: every emission site pays one
/// `Option` check and nothing else, which bounds the observability
/// overhead on untraced runs. Clones share the same buffer, so a sink
/// can be handed to the cache, the I/O engine, the fault decorator and
/// the session and still produce one merged timeline.
///
/// ```
/// use ssdtrain_trace::{TraceCategory, TraceSink};
/// use ssdtrain_simhw::SimTime;
///
/// let sink = TraceSink::enabled();
/// sink.instant_bytes(TraceCategory::Store, "store.enqueue", SimTime::ZERO, 4096);
/// assert_eq!(sink.events().len(), 1);
/// assert_eq!(sink.events()[0].bytes(), Some(4096));
///
/// let off = TraceSink::disabled();
/// off.instant(TraceCategory::Stage, "ignored", SimTime::ZERO);
/// assert!(off.events().is_empty());
/// ```
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// A sink that records events.
    pub fn enabled() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner::default())),
        }
    }

    /// A sink that drops everything (the [`Default`]).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the step counter; subsequent events are stamped with the
    /// new step. Returns the step number (first call returns 1).
    pub fn next_step(&self) -> u32 {
        match &self.inner {
            Some(inner) => inner.step.fetch_add(1, Ordering::Relaxed) + 1,
            None => 0,
        }
    }

    /// The step new events are currently stamped with.
    pub fn current_step(&self) -> u32 {
        match &self.inner {
            Some(inner) => inner.step.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Records a fully-specified event.
    pub fn emit(
        &self,
        kind: EventKind,
        cat: TraceCategory,
        name: impl Into<String>,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let step = inner.step.load(Ordering::Relaxed);
            inner.events.lock().push(TraceEvent {
                step,
                ts,
                kind,
                cat,
                name: name.into(),
                args,
            });
        }
    }

    /// Records a closed span `[start, end]`.
    pub fn span(&self, cat: TraceCategory, name: impl Into<String>, start: SimTime, end: SimTime) {
        if self.inner.is_some() {
            let dur_secs = end.since(start).max(0.0);
            // ssdtrain-lint: allow(no-alloc-hot-loop): `Vec::new` defers its
            // allocation until the first push, and this args list stays empty
            self.emit(EventKind::Span { dur_secs }, cat, name, start, Vec::new());
        }
    }

    /// Records a span carrying a byte count.
    pub fn span_bytes(
        &self,
        cat: TraceCategory,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) {
        if self.inner.is_some() {
            let dur_secs = end.since(start).max(0.0);
            self.emit(
                EventKind::Span { dur_secs },
                cat,
                name,
                start,
                // ssdtrain-lint: allow(no-alloc-hot-loop): one-element args
                // vector, built only when tracing is enabled (gate above)
                vec![("bytes", ArgValue::U64(bytes))],
            );
        }
    }

    /// Records a point event.
    pub fn instant(&self, cat: TraceCategory, name: impl Into<String>, ts: SimTime) {
        if self.inner.is_some() {
            self.emit(EventKind::Instant, cat, name, ts, Vec::new());
        }
    }

    /// Records a point event carrying a byte count.
    pub fn instant_bytes(
        &self,
        cat: TraceCategory,
        name: impl Into<String>,
        ts: SimTime,
        bytes: u64,
    ) {
        if self.inner.is_some() {
            self.emit(
                EventKind::Instant,
                cat,
                name,
                ts,
                // ssdtrain-lint: allow(no-alloc-hot-loop): one-element args
                // vector, built only when tracing is enabled (gate above)
                vec![("bytes", ArgValue::U64(bytes))],
            );
        }
    }

    /// Records a point event with arbitrary typed arguments.
    pub fn instant_with(
        &self,
        cat: TraceCategory,
        name: impl Into<String>,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_some() {
            self.emit(EventKind::Instant, cat, name, ts, args);
        }
    }

    /// Opens a span at `start`; the caller must close it with
    /// [`OpenSpan::end`] (or discard it with [`OpenSpan::cancel`]) on
    /// every path. The end timestamp comes from the simulated clock,
    /// which a `Drop` impl cannot read, so closing is deliberately
    /// manual — the `span-balance` lint proves the pairing.
    pub fn begin_span(
        &self,
        cat: TraceCategory,
        name: impl Into<String>,
        start: SimTime,
    ) -> OpenSpan {
        OpenSpan {
            sink: self.clone(),
            cat,
            name: name.into(),
            start,
            closed: false,
        }
    }

    /// Records a counter sample; each `(series, value)` pair becomes one
    /// plotted series in the Chrome-trace view.
    pub fn counter(
        &self,
        cat: TraceCategory,
        name: impl Into<String>,
        ts: SimTime,
        series: &[(&'static str, f64)],
    ) {
        if self.inner.is_some() {
            let args = series
                .iter()
                .map(|(k, v)| (*k, ArgValue::F64(*v)))
                .collect();
            self.emit(EventKind::Counter, cat, name, ts, args);
        }
    }

    /// A snapshot of all recorded events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().len(),
            None => 0,
        }
    }

    /// Whether nothing has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events and resets the step counter.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().clear();
            inner.step.store(0, Ordering::Relaxed);
        }
    }

    /// Exports the recorded events as Chrome-trace JSON.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// Renders the plain-text per-step timeline summary.
    pub fn to_text_summary(&self) -> String {
        text_summary(&self.events())
    }
}

/// A manually opened span returned by [`TraceSink::begin_span`].
///
/// Unlike the RAII stage scopes, an open span cannot close itself: the
/// end timestamp is simulated time, and `Drop` has no way to read the
/// clock. [`OpenSpan::end`] records the span, [`OpenSpan::cancel`]
/// discards it. Dropping an open span without either emits a
/// `<name>.open` instant at the start time, so an unbalanced span shows
/// up in the trace instead of silently vanishing.
#[must_use = "close the span with `.end(ts)` or `.cancel()`"]
pub struct OpenSpan {
    sink: TraceSink,
    cat: TraceCategory,
    name: String,
    start: SimTime,
    closed: bool,
}

impl OpenSpan {
    /// Closes the span at `end`, recording `[start, end]`.
    pub fn end(mut self, end: SimTime) {
        self.closed = true;
        let name = std::mem::take(&mut self.name);
        self.sink.span(self.cat, name, self.start, end);
    }

    /// Discards the span without recording anything.
    pub fn cancel(mut self) {
        self.closed = true;
    }

    /// The span's start time (useful when the closer recomputes
    /// durations).
    pub fn start(&self) -> SimTime {
        self.start
    }
}

impl Drop for OpenSpan {
    fn drop(&mut self) {
        if !self.closed {
            let name = std::mem::take(&mut self.name);
            self.sink
                .instant(self.cat, format!("{name}.open"), self.start);
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

/// Adapter: forwards [`GpuMemory`](ssdtrain_simhw::GpuMemory) peak
/// updates into a [`TraceSink`] as counter samples (category `alloc`).
#[derive(Debug, Clone)]
pub struct MemoryTraceBridge {
    sink: TraceSink,
}

impl MemoryTraceBridge {
    /// Wraps `sink` for [`GpuMemory::set_peak_observer`](ssdtrain_simhw::GpuMemory::set_peak_observer).
    pub fn new(sink: TraceSink) -> Arc<MemoryTraceBridge> {
        Arc::new(MemoryTraceBridge { sink })
    }
}

impl PeakObserver for MemoryTraceBridge {
    fn on_peak(&self, time: SimTime, total: u64, activations: u64) {
        self.sink.counter(
            TraceCategory::Alloc,
            "mem.peak",
            time,
            &[("total", total as f64), ("activations", activations as f64)],
        );
    }
}

/// Adapter: forwards [`Channel`](ssdtrain_simhw::Channel) transfers into
/// a [`TraceSink`] as spans (category `link`).
#[derive(Debug, Clone)]
pub struct LinkTraceBridge {
    sink: TraceSink,
}

impl LinkTraceBridge {
    /// Wraps `sink` for [`Channel::set_observer`](ssdtrain_simhw::Channel::set_observer).
    pub fn new(sink: TraceSink) -> Arc<LinkTraceBridge> {
        Arc::new(LinkTraceBridge { sink })
    }
}

impl TransferObserver for LinkTraceBridge {
    fn on_transfer(&self, channel: &str, start: SimTime, end: SimTime, bytes: u64) {
        self.sink.span_bytes(
            TraceCategory::Link,
            format!("xfer.{channel}"),
            start,
            end,
            bytes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.instant(TraceCategory::Store, "x", SimTime::ZERO);
        sink.span(
            TraceCategory::Stage,
            "y",
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        );
        assert!(sink.is_empty());
        assert_eq!(sink.next_step(), 0);
        assert!(!sink.is_enabled());
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = TraceSink::enabled();
        let b = a.clone();
        b.instant_bytes(TraceCategory::Load, "load", SimTime::from_secs(1.0), 128);
        assert_eq!(a.len(), 1);
        assert_eq!(a.events()[0].bytes(), Some(128));
    }

    #[test]
    fn step_counter_stamps_events() {
        let sink = TraceSink::enabled();
        sink.instant(TraceCategory::Session, "pre", SimTime::ZERO);
        assert_eq!(sink.next_step(), 1);
        sink.instant(TraceCategory::Session, "in-step", SimTime::ZERO);
        let evs = sink.events();
        assert_eq!(evs[0].step, 0);
        assert_eq!(evs[1].step, 1);
    }

    #[test]
    fn span_end_matches_duration() {
        let sink = TraceSink::enabled();
        sink.span(
            TraceCategory::Stage,
            "stage.forward",
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.5),
        );
        let ev = &sink.events()[0];
        assert_eq!(ev.end(), SimTime::from_secs(2.5));
    }

    #[test]
    fn open_span_end_records_the_span() {
        let sink = TraceSink::enabled();
        let span = sink.begin_span(TraceCategory::Session, "step", SimTime::from_secs(1.0));
        span.end(SimTime::from_secs(3.0));
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "step");
        assert_eq!(evs[0].end(), SimTime::from_secs(3.0));
    }

    #[test]
    fn open_span_cancel_records_nothing() {
        let sink = TraceSink::enabled();
        let span = sink.begin_span(TraceCategory::Session, "step", SimTime::ZERO);
        span.cancel();
        assert!(sink.is_empty());
    }

    #[test]
    fn leaked_open_span_surfaces_as_an_open_instant() {
        let sink = TraceSink::enabled();
        {
            let _span = sink.begin_span(TraceCategory::Session, "step", SimTime::ZERO);
            // dropped without end/cancel
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "step.open");
        assert!(matches!(evs[0].kind, EventKind::Instant));
    }

    #[test]
    fn clear_resets_events_and_step() {
        let sink = TraceSink::enabled();
        sink.next_step();
        sink.instant(TraceCategory::Fault, "fault.write", SimTime::ZERO);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.current_step(), 0);
    }
}
