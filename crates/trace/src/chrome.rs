//! Chrome-trace (Perfetto JSON) exporter and plain-text timeline summary.
//!
//! Serialization is written by hand with fixed-precision float
//! formatting (microseconds, three decimals) so that the same event
//! sequence always produces byte-identical JSON — a property the golden
//! trace test relies on. The vendored `serde` is a marker-trait shim, so
//! there is no derive-based alternative anyway.

use crate::{ArgValue, EventKind, TraceCategory, TraceEvent};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Simulated seconds → microseconds with fixed formatting.
fn fmt_us(secs: f64) -> String {
    format!("{:.3}", secs * 1e6)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn arg_value_into(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        ArgValue::F64(f) => {
            let _ = write!(out, "{f:.3}");
        }
        ArgValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn args_into(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        arg_value_into(out, v);
    }
    out.push('}');
}

fn metadata_event(out: &mut String, name: &str, pid: u32, tid: u32, value: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    );
    escape_into(out, value);
    out.push_str("\"}}");
}

/// Exports `events` as a Chrome-trace JSON object (`traceEvents` array
/// plus metadata). Each training step is rendered as its own process
/// (`pid` = step number) because the simulated clock restarts at zero
/// per step; categories map to fixed display lanes via
/// [`TraceCategory::lane`]. Output is deterministic: same events in, same
/// bytes out.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");

    // Process/thread naming metadata, in deterministic (step, lane) order.
    // Lane names come from `TraceCategory::lane` itself so new categories
    // cannot drift out of sync with this exporter.
    let steps: BTreeSet<u32> = events.iter().map(|e| e.step).collect();
    let lanes: BTreeSet<(u32, u32, &str)> = events
        .iter()
        .map(|e| {
            let (tid, name) = e.cat.lane();
            (e.step, tid, name)
        })
        .collect();
    let mut first = true;
    for step in &steps {
        if !first {
            out.push(',');
        }
        first = false;
        metadata_event(&mut out, "process_name", *step, 0, &format!("step {step}"));
        out.push(',');
        let _ = write!(
            out,
            "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{step},\"tid\":0,\"args\":{{\"sort_index\":{step}}}}}"
        );
    }
    for (step, tid, lane_name) in &lanes {
        out.push(',');
        metadata_event(&mut out, "thread_name", *step, *tid, lane_name);
    }

    for ev in events {
        let (tid, _) = ev.cat.lane();
        out.push(',');
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &ev.name);
        let _ = write!(
            &mut out,
            "\",\"cat\":\"{}\",\"pid\":{},\"tid\":{tid},\"ts\":{}",
            ev.cat.as_str(),
            ev.step,
            fmt_us(ev.ts.as_secs())
        );
        match ev.kind {
            EventKind::Span { dur_secs } => {
                let _ = write!(&mut out, ",\"ph\":\"X\",\"dur\":{}", fmt_us(dur_secs));
            }
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
            EventKind::Counter => {
                out.push_str(",\"ph\":\"C\"");
            }
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":");
            args_into(&mut out, &ev.args);
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[derive(Default)]
struct CatAgg {
    count: u64,
    bytes: u64,
    busy_secs: f64,
}

/// Renders a human-readable per-step timeline summary: stage spans in
/// chronological order followed by per-category aggregates.
pub fn text_summary(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let steps: BTreeSet<u32> = events.iter().map(|e| e.step).collect();
    for step in steps {
        let evs: Vec<&TraceEvent> = events.iter().filter(|e| e.step == step).collect();
        let _ = writeln!(out, "== step {step} ({} events) ==", evs.len());

        let mut stages: Vec<&&TraceEvent> = evs
            .iter()
            .filter(|e| e.cat == TraceCategory::Stage)
            .collect();
        stages.sort_by(|a, b| a.ts.partial_cmp(&b.ts).expect("finite times"));
        for s in stages {
            if let EventKind::Span { dur_secs } = s.kind {
                let _ = writeln!(
                    out,
                    "  {:>12} .. {:>12}  {}",
                    format!("{:.3}ms", s.ts.as_secs() * 1e3),
                    format!("{:.3}ms", (s.ts.as_secs() + dur_secs) * 1e3),
                    s.name
                );
            }
        }

        let cats = [
            TraceCategory::Store,
            TraceCategory::Coalesce,
            TraceCategory::Load,
            TraceCategory::Prefetch,
            TraceCategory::Dedup,
            TraceCategory::Forwarding,
            TraceCategory::Stall,
            TraceCategory::Fault,
            TraceCategory::Recovery,
            TraceCategory::Tier,
            TraceCategory::Link,
            TraceCategory::Alloc,
            TraceCategory::Arena,
        ];
        for cat in cats {
            let mut agg = CatAgg::default();
            for e in evs.iter().filter(|e| e.cat == cat) {
                agg.count += 1;
                agg.bytes += e.bytes().unwrap_or(0);
                if let EventKind::Span { dur_secs } = e.kind {
                    agg.busy_secs += dur_secs;
                }
            }
            if agg.count == 0 {
                continue;
            }
            let _ = write!(out, "  {:<12} {:>5} events", cat.as_str(), agg.count);
            if agg.bytes > 0 {
                let _ = write!(out, "  {:>9.3} MiB", agg.bytes as f64 / (1u64 << 20) as f64);
            }
            if agg.busy_secs > 0.0 {
                let _ = write!(out, "  {:>9.3} ms busy", agg.busy_secs * 1e3);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;
    use ssdtrain_simhw::SimTime;

    fn sample() -> Vec<TraceEvent> {
        let sink = TraceSink::enabled();
        sink.next_step();
        sink.span_bytes(
            TraceCategory::Store,
            "store",
            SimTime::from_secs(0.001),
            SimTime::from_secs(0.002),
            1 << 20,
        );
        sink.instant(
            TraceCategory::Fault,
            "fault.write_error",
            SimTime::from_secs(0.0015),
        );
        sink.counter(
            TraceCategory::Alloc,
            "mem.peak",
            SimTime::from_secs(0.001),
            &[("total", 1024.0), ("activations", 512.0)],
        );
        sink.span(
            TraceCategory::Stage,
            "stage.forward",
            SimTime::ZERO,
            SimTime::from_secs(0.01),
        );
        sink.events()
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn json_contains_all_phases_and_categories() {
        let json = chrome_trace_json(&sample());
        for needle in [
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"cat\":\"store\"",
            "\"cat\":\"fault\"",
            "\"cat\":\"alloc\"",
            "\"cat\":\"stage\"",
            "\"ts\":1000.000",
            "\"dur\":1000.000",
            "\"bytes\":1048576",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn string_escaping_is_safe() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn summary_lists_stage_spans_and_aggregates() {
        let text = text_summary(&sample());
        assert!(text.contains("== step 1"));
        assert!(text.contains("stage.forward"));
        assert!(text.contains("store"));
        assert!(text.contains("1.000 MiB"));
    }
}
