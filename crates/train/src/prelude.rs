//! Everything a training program needs, in one import.
//!
//! Layers the session/builder/pipeline API on top of
//! [`ssdtrain::prelude`], so `use ssdtrain_train::prelude::*;` brings in
//! the cache, trace and simulated-hardware types too. The crate root
//! re-exports this module wholesale.

pub use ssdtrain::prelude::*;

pub use crate::builder::{ConfigError, SessionBuilder};
pub use crate::error::{PipelineError, StepError};
pub use crate::executor::GpuExecutor;
pub use crate::metrics::StepMetrics;
pub use crate::opt_engine::{OptEngine, OptReport};
pub use crate::pipeline::{PipelineMetrics, PipelineSim};
pub use crate::pipeline_exec::{PipelineExec, PipelineExecConfig, PipelineStepReport};
pub use crate::schedule::{single_gpu_schedule, stage_ranges, StepCmd};
pub use crate::session::{OffloadBackend, OffloadClassSet, SessionConfig, TrainSession};

pub use ssdtrain_models::{Arch, Batch, Model, ModelConfig};
