//! A 1F1B pipeline-parallel schedule simulator.
//!
//! The paper's Algorithm 1 hooks SSDTrain into DeepSpeed's *pipeline*
//! scheduler; its Section 4.4 argues that the activation memory TBA
//! frees should be spent on more in-flight micro-batches, which shrink
//! pipeline bubbles. This module simulates the non-interleaved 1F1B
//! schedule explicitly — per-stage command streams with cross-stage
//! dependencies — and reports the measured makespan, bubble fraction and
//! per-stage activation residency under keep vs offload placement.
//!
//! Per-micro-batch durations and activation volumes are parameters, so a
//! profiled [`crate::TrainSession`] measurement can ground the
//! simulation (see [`PipelineSim::from_step_metrics`]).

use crate::metrics::StepMetrics;
use serde::{Deserialize, Serialize};

/// One pipeline-stage command (the `cmd` stream of the paper's
/// Algorithm 1, reduced to what affects time and memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageCmd {
    /// Forward of micro-batch `mb`.
    Forward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Backward of micro-batch `mb`.
    Backward {
        /// Micro-batch index.
        mb: usize,
    },
}

/// Builds stage `s`'s 1F1B command order for `m` micro-batches on a
/// `pp`-stage pipeline: `min(m, pp - s)` warm-up forwards, then strict
/// 1B1F alternation, then the cool-down backwards.
pub fn one_f1b_commands(pp: usize, s: usize, m: usize) -> Vec<StageCmd> {
    assert!(s < pp, "stage out of range");
    let warmup = (pp - s).min(m);
    let mut cmds = Vec::with_capacity(2 * m);
    for mb in 0..warmup {
        cmds.push(StageCmd::Forward { mb });
    }
    let mut next_f = warmup;
    let mut next_b = 0;
    while next_b < m {
        cmds.push(StageCmd::Backward { mb: next_b });
        next_b += 1;
        if next_f < m {
            cmds.push(StageCmd::Forward { mb: next_f });
            next_f += 1;
        }
    }
    cmds
}

/// Parameters of one simulated pipeline step.
///
/// ```
/// use ssdtrain_train::PipelineSim;
/// let sim = PipelineSim {
///     pp: 4,
///     micro_batches: 16,
///     fwd_secs: 0.01,
///     bwd_secs: 0.02,
///     act_bytes_per_mb: 1 << 30,
///     offload_resident_bytes: 1 << 28,
///     send_secs: 0.0,
/// };
/// let m = sim.run();
/// assert!(m.bubble_fraction < 0.2); // 16 micro-batches on 4 stages
/// assert_eq!(m.peak_in_flight, 4);  // 1F1B holds pp micro-batches
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSim {
    /// Pipeline stages.
    pub pp: usize,
    /// Micro-batches per step.
    pub micro_batches: usize,
    /// Seconds of one stage's forward for one micro-batch.
    pub fwd_secs: f64,
    /// Seconds of one stage's backward for one micro-batch.
    pub bwd_secs: f64,
    /// Activation bytes one micro-batch leaves resident on one stage
    /// (keep strategy) between its forward and backward.
    pub act_bytes_per_mb: u64,
    /// Resident activation bytes with offloading (flat in the number of
    /// in-flight micro-batches; measured from a single-stage session).
    pub offload_resident_bytes: u64,
    /// Activation-boundary transfer time between adjacent stages.
    pub send_secs: f64,
}

/// Results of simulating one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineMetrics {
    /// Makespan of the step (last backward on stage 0).
    pub step_secs: f64,
    /// Ideal (bubble-free) time: `m × (f + b)` on one stage.
    pub ideal_secs: f64,
    /// Measured idle fraction `1 - ideal/step`.
    pub bubble_fraction: f64,
    /// Peak in-flight micro-batches on stage 0.
    pub peak_in_flight: usize,
    /// Stage-0 activation peak under keep.
    pub keep_peak_bytes: u64,
    /// Stage-0 activation residency under offload.
    pub offload_peak_bytes: u64,
}

impl PipelineSim {
    /// Grounds the per-micro-batch quantities in a measured single-stage
    /// step: `metrics` must come from a session configured with this
    /// stage's layer slice and a single micro-batch.
    pub fn from_step_metrics(
        pp: usize,
        micro_batches: usize,
        metrics: &StepMetrics,
        offload_resident_bytes: u64,
        send_secs: f64,
    ) -> PipelineSim {
        PipelineSim {
            pp,
            micro_batches,
            fwd_secs: metrics.fwd_secs,
            bwd_secs: (metrics.step_secs - metrics.fwd_secs).max(0.0),
            act_bytes_per_mb: metrics.act_peak_bytes,
            offload_resident_bytes,
            send_secs,
        }
    }

    /// Runs the schedule to completion and reports the metrics.
    ///
    /// # Panics
    /// Panics if `pp == 0` or `micro_batches == 0`.
    pub fn run(&self) -> PipelineMetrics {
        let (pp, m) = (self.pp, self.micro_batches);
        assert!(pp > 0 && m > 0, "pipeline needs stages and micro-batches");
        // Completion times per (stage, micro-batch).
        let mut f_end = vec![vec![f64::NAN; m]; pp];
        let mut b_end = vec![vec![f64::NAN; m]; pp];
        let mut stage_free = vec![0.0f64; pp];
        let cmds: Vec<Vec<StageCmd>> = (0..pp).map(|s| one_f1b_commands(pp, s, m)).collect();
        let mut cursor = vec![0usize; pp];

        // Execute commands as their dependencies resolve. The 1F1B orders
        // are deadlock-free, so a round-robin sweep always progresses.
        let total: usize = cmds.iter().map(|c| c.len()).sum();
        let mut done = 0;
        while done < total {
            let mut progressed = false;
            for s in 0..pp {
                while cursor[s] < cmds[s].len() {
                    let cmd = cmds[s][cursor[s]];
                    let ready = match cmd {
                        StageCmd::Forward { mb } => {
                            if s == 0 {
                                Some(0.0)
                            } else if f_end[s - 1][mb].is_nan() {
                                None
                            } else {
                                Some(f_end[s - 1][mb] + self.send_secs)
                            }
                        }
                        StageCmd::Backward { mb } => {
                            if s == pp - 1 {
                                // The last stage can turn a micro-batch
                                // around once its own forward is done.
                                if f_end[s][mb].is_nan() {
                                    None
                                } else {
                                    Some(f_end[s][mb])
                                }
                            } else if b_end[s + 1][mb].is_nan() {
                                None
                            } else {
                                Some(b_end[s + 1][mb] + self.send_secs)
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let start = ready.max(stage_free[s]);
                    match cmd {
                        StageCmd::Forward { mb } => {
                            let end = start + self.fwd_secs;
                            f_end[s][mb] = end;
                            stage_free[s] = end;
                        }
                        StageCmd::Backward { mb } => {
                            let end = start + self.bwd_secs;
                            b_end[s][mb] = end;
                            stage_free[s] = end;
                        }
                    }
                    cursor[s] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            assert!(progressed, "1F1B schedule deadlocked (bug)");
        }

        let step_secs = b_end[0].iter().fold(0.0f64, |acc, e| acc.max(*e));
        let ideal_secs = m as f64 * (self.fwd_secs + self.bwd_secs);
        let bubble_fraction = 1.0 - ideal_secs / step_secs;

        // Stage-0 in-flight peak: sweep its forward/backward completions.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(2 * m);
        for mb in 0..m {
            events.push((f_end[0][mb], 1));
            events.push((b_end[0][mb], -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut in_flight = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            in_flight += d;
            peak = peak.max(in_flight);
        }
        let peak_in_flight = peak.max(0) as usize;

        PipelineMetrics {
            step_secs,
            ideal_secs,
            bubble_fraction,
            peak_in_flight,
            keep_peak_bytes: self.act_bytes_per_mb * peak_in_flight as u64,
            offload_peak_bytes: self.offload_resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_analysis::pipeline::bubble_fraction;

    fn sim(pp: usize, m: usize) -> PipelineSim {
        PipelineSim {
            pp,
            micro_batches: m,
            fwd_secs: 1.0,
            bwd_secs: 2.0,
            act_bytes_per_mb: 1 << 30,
            offload_resident_bytes: 1 << 28,
            send_secs: 0.0,
        }
    }

    #[test]
    fn single_stage_has_no_bubble() {
        let m = sim(1, 4).run();
        assert!((m.step_secs - 12.0).abs() < 1e-9);
        assert!(m.bubble_fraction.abs() < 1e-9);
        assert_eq!(m.peak_in_flight, 1);
    }

    #[test]
    fn command_stream_shape_is_1f1b() {
        let cmds = one_f1b_commands(4, 0, 6);
        // Stage 0: 4 warm-up forwards, then B/F alternation, then drain.
        assert_eq!(
            &cmds[..6],
            &[
                StageCmd::Forward { mb: 0 },
                StageCmd::Forward { mb: 1 },
                StageCmd::Forward { mb: 2 },
                StageCmd::Forward { mb: 3 },
                StageCmd::Backward { mb: 0 },
                StageCmd::Forward { mb: 4 },
            ]
        );
        assert_eq!(cmds.len(), 12);
        // Last stage warms up with exactly one forward.
        let last = one_f1b_commands(4, 3, 6);
        assert_eq!(last[0], StageCmd::Forward { mb: 0 });
        assert_eq!(last[1], StageCmd::Backward { mb: 0 });
    }

    #[test]
    fn measured_bubble_tracks_the_closed_form() {
        // With fwd = bwd the classic (pp-1)/(m+pp-1) formula is exact for
        // 1F1B; with fwd != bwd it remains a close approximation.
        for (pp, m) in [(2usize, 4usize), (4, 4), (4, 16), (8, 32)] {
            let mut s = sim(pp, m);
            s.bwd_secs = 1.0; // balanced
            let got = s.run().bubble_fraction;
            let formula = bubble_fraction(pp, m);
            assert!(
                (got - formula).abs() < 0.02,
                "pp {pp} m {m}: measured {got:.4} vs formula {formula:.4}"
            );
        }
    }

    #[test]
    fn more_micro_batches_shrink_the_measured_bubble() {
        let b4 = sim(4, 4).run().bubble_fraction;
        let b16 = sim(4, 16).run().bubble_fraction;
        let b64 = sim(4, 64).run().bubble_fraction;
        assert!(b4 > b16 && b16 > b64, "{b4} {b16} {b64}");
        assert!(b64 < 0.06);
    }

    #[test]
    fn stage0_keeps_pp_micro_batches_in_flight() {
        // 1F1B: the first stage holds up to pp micro-batches of
        // activations; offload residency stays flat.
        let m = sim(4, 16).run();
        assert_eq!(m.peak_in_flight, 4);
        assert_eq!(m.keep_peak_bytes, 4 << 30);
        assert_eq!(m.offload_peak_bytes, 1 << 28);
        let m2 = sim(4, 64).run();
        assert_eq!(m2.peak_in_flight, 4, "flat in m");
    }

    #[test]
    fn send_time_adds_to_the_critical_path() {
        let mut s = sim(4, 8);
        s.send_secs = 0.5;
        let with = s.run().step_secs;
        s.send_secs = 0.0;
        let without = s.run().step_secs;
        assert!(with > without + 2.0, "{with} vs {without}");
    }

    #[test]
    fn from_step_metrics_splits_forward_and_backward() {
        let mut m = crate::metrics::StepMetrics {
            strategy: "keep".into(),
            model: "t".into(),
            batch: 1,
            step_secs: 3.0,
            fwd_secs: 1.0,
            act_peak_bytes: 100,
            total_peak_bytes: 200,
            act_at_bwd_start: 100,
            timeline: Vec::new(),
            offload: ssdtrain::OffloadStats::default(),
            model_flops: 0,
            comm_secs: 0.0,
            ssd_host_writes: 0,
            alloc: ssdtrain_simhw::AllocatorStats::default(),
            oom: false,
            loss: 0.0,
            opt_secs: 0.0,
            opt_exposed_secs: 0.0,
        };
        m.step_secs = 3.0;
        let sim = PipelineSim::from_step_metrics(4, 8, &m, 10, 0.01);
        assert_eq!(sim.fwd_secs, 1.0);
        assert_eq!(sim.bwd_secs, 2.0);
        assert_eq!(sim.act_bytes_per_mb, 100);
        let run = sim.run();
        assert!(run.step_secs > run.ideal_secs);
    }
}
