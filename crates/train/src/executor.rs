//! The GPU-stream executor: turns operator costs into simulated time.

use parking_lot::Mutex;
use ssdtrain_autograd::{ExecObserver, OpCost, Phase};
use ssdtrain_simhw::{GpuSpec, SimClock};

/// Kernels timed with the GEMM efficiency of the roofline.
fn is_matmul(name: &str) -> bool {
    matches!(name, "matmul" | "bmm" | "flash_attention")
}

#[derive(Debug, Default, Clone, Copy)]
struct PhaseTotals {
    flops: u64,
    secs: f64,
    ops: u64,
}

#[derive(Debug, Default)]
struct Totals {
    forward: PhaseTotals,
    backward: PhaseTotals,
    recompute: PhaseTotals,
    comm_secs: f64,
}

/// An [`ExecObserver`] that advances the step clock past every kernel
/// using the GPU roofline, times `allreduce` collectives on the
/// interconnect, and accumulates per-phase FLOP totals (the numerator of
/// the paper's *model throughput* excludes recomputation FLOPs).
pub struct GpuExecutor {
    clock: SimClock,
    gpu: GpuSpec,
    nvlink_bps: f64,
    tp: usize,
    totals: Mutex<Totals>,
}

impl GpuExecutor {
    /// Creates an executor for one GPU participating in a `tp`-way
    /// tensor-parallel group over an interconnect of `nvlink_bps`
    /// bytes/s.
    pub fn new(clock: SimClock, gpu: GpuSpec, nvlink_bps: f64, tp: usize) -> GpuExecutor {
        GpuExecutor {
            clock,
            gpu,
            nvlink_bps,
            tp,
            totals: Mutex::new(Totals::default()),
        }
    }

    /// Ring-allreduce wall time for a `bytes` payload across `tp` ranks.
    pub fn allreduce_secs(&self, bytes: u64) -> f64 {
        if self.tp <= 1 {
            return 0.0;
        }
        let wire = bytes as f64 * 2.0 * (self.tp as f64 - 1.0) / self.tp as f64;
        wire / self.nvlink_bps
    }

    /// FLOPs observed in `phase` so far.
    pub fn phase_flops(&self, phase: Phase) -> u64 {
        let t = self.totals.lock();
        match phase {
            Phase::Forward => t.forward.flops,
            Phase::Backward => t.backward.flops,
            Phase::Recompute => t.recompute.flops,
        }
    }

    /// GPU seconds spent in `phase` so far.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        let t = self.totals.lock();
        match phase {
            Phase::Forward => t.forward.secs,
            Phase::Backward => t.backward.secs,
            Phase::Recompute => t.recompute.secs,
        }
    }

    /// Kernel launches observed in `phase`.
    pub fn phase_ops(&self, phase: Phase) -> u64 {
        let t = self.totals.lock();
        match phase {
            Phase::Forward => t.forward.ops,
            Phase::Backward => t.backward.ops,
            Phase::Recompute => t.recompute.ops,
        }
    }

    /// Seconds spent in blocking collectives.
    pub fn comm_secs(&self) -> f64 {
        self.totals.lock().comm_secs
    }

    /// *Algorithmic* FLOPs of the step: forward + backward, excluding
    /// recomputation — the paper's model-throughput numerator
    /// (Section 4.3).
    pub fn model_flops(&self) -> u64 {
        let t = self.totals.lock();
        t.forward.flops + t.backward.flops
    }

    /// Clears accumulated totals (new measured step).
    pub fn reset(&self) {
        *self.totals.lock() = Totals::default();
    }
}

impl ExecObserver for GpuExecutor {
    fn on_op(&self, name: &str, cost: &OpCost, phase: Phase) {
        let secs = if name == "allreduce" {
            let t = self.allreduce_secs(cost.bytes_read);
            self.totals.lock().comm_secs += t;
            t
        } else if name == "checkpoint" {
            0.0 // segment ops report themselves
        } else {
            self.gpu
                .kernel_time(cost.flops, cost.bytes_moved(), is_matmul(name))
        };
        self.clock.advance_by(secs);
        let mut totals = self.totals.lock();
        let slot = match phase {
            Phase::Forward => &mut totals.forward,
            Phase::Backward => &mut totals.backward,
            Phase::Recompute => &mut totals.recompute,
        };
        slot.flops += cost.flops;
        slot.secs += secs;
        slot.ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(tp: usize) -> (SimClock, GpuExecutor) {
        let clock = SimClock::new();
        let e = GpuExecutor::new(clock.clone(), GpuSpec::a100_pcie_40gb(), 250e9, tp);
        (clock, e)
    }

    #[test]
    fn kernels_advance_the_clock() {
        let (clock, e) = exec(1);
        e.on_op(
            "matmul",
            &OpCost::new(1_000_000_000_000, 0, 0),
            Phase::Forward,
        );
        // 1 TFLOP at ~140 TFLOP/s ≈ 7 ms.
        let t = clock.now().as_secs();
        assert!(t > 0.005 && t < 0.01, "{t}");
        assert_eq!(e.phase_flops(Phase::Forward), 1_000_000_000_000);
    }

    #[test]
    fn allreduce_times_on_the_interconnect() {
        let (clock, e) = exec(2);
        // 250 GB payload over 250 GB/s with tp=2: wire = bytes, 1 s.
        e.on_op(
            "allreduce",
            &OpCost::new(0, 250_000_000_000, 250_000_000_000),
            Phase::Forward,
        );
        assert!((clock.now().as_secs() - 1.0).abs() < 1e-9);
        assert!((e.comm_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_is_free_without_tp() {
        let (clock, e) = exec(1);
        e.on_op(
            "allreduce",
            &OpCost::new(0, 1 << 30, 1 << 30),
            Phase::Forward,
        );
        assert_eq!(clock.now().as_secs(), 0.0);
    }

    #[test]
    fn model_flops_exclude_recompute() {
        let (_c, e) = exec(1);
        e.on_op("matmul", &OpCost::new(100, 0, 0), Phase::Forward);
        e.on_op("matmul", &OpCost::new(200, 0, 0), Phase::Backward);
        e.on_op("matmul", &OpCost::new(100, 0, 0), Phase::Recompute);
        assert_eq!(e.model_flops(), 300);
        assert_eq!(e.phase_flops(Phase::Recompute), 100);
    }

    #[test]
    fn reset_clears_totals() {
        let (_c, e) = exec(1);
        e.on_op("gelu", &OpCost::new(10, 10, 10), Phase::Forward);
        e.reset();
        assert_eq!(e.model_flops(), 0);
        assert_eq!(e.phase_ops(Phase::Forward), 0);
    }
}
