//! [`SessionBuilder`] — the validated way to construct a
//! [`SessionConfig`].
//!
//! Struct-literal construction cannot reject nonsense (a tensor-parallel
//! degree wider than the machine, a batch that does not divide into its
//! micro-batches, a fallback target without the policy that would ever
//! use it), so the builder funnels every configuration through
//! [`SessionBuilder::build`] and returns a typed [`ConfigError`] instead
//! of failing deep inside a step.

use crate::session::{OffloadBackend, OffloadClassSet, SessionConfig};
use ssdtrain::{OffloadClass, PlacementStrategy, RecoveryPolicy, TensorCacheConfig};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::{FaultPlan, SystemConfig};
use ssdtrain_trace::TraceSink;
use std::fmt;

/// A configuration the builder refused to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The model's tensor-parallel degree exceeds the machine's GPUs.
    TensorParallelMismatch {
        /// Requested tensor-parallel degree.
        tp: usize,
        /// GPUs the configured system actually has.
        gpus: usize,
    },
    /// The global batch size is zero.
    ZeroBatch,
    /// The micro-batch count is zero.
    ZeroMicroBatches,
    /// The global batch does not split evenly over the micro-batches.
    IndivisibleMicroBatches {
        /// Global batch size in sequences.
        batch_size: usize,
        /// Micro-batches per step.
        micro_batches: usize,
    },
    /// A fallback target was named, but the recovery policy is not
    /// [`RecoveryPolicy::FallbackTarget`], so it could never be used.
    FallbackWithoutPolicy,
    /// The pipeline was asked for zero stages.
    ZeroStages,
    /// More pipeline stages than the model has layers to split.
    StagesExceedLayers {
        /// Requested pipeline stages.
        pp: usize,
        /// Layers the model actually has.
        layers: usize,
    },
    /// The architecture is not supported by the requested execution
    /// mode (e.g. T5's cross-attention broadcasts the encoder output to
    /// every decoder stage, which the functional pipeline cannot split).
    UnsupportedArch {
        /// The rejected architecture.
        arch: Arch,
    },
    /// A tiered backend named a zero-byte front tier, which could never
    /// hold an activation and would silently behave like the plain SSD
    /// backend.
    ZeroTierCapacity,
    /// The spill-of-last-resort fallback must be a single device; the
    /// tiered backend is itself a spill chain and cannot back one.
    TieredFallback,
    /// The `OptimizerState` class was selected, but the optimizer is
    /// stateless (`momentum == 0`) — there would be nothing to offload,
    /// and the configuration almost certainly meant to set a momentum.
    StatelessOptimizerOffload,
    /// The `Activation` class was switched off while the placement
    /// strategy offloads activations — contradictory; pick a keep or
    /// recompute strategy instead.
    ActivationClassRequired,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TensorParallelMismatch { tp, gpus } => write!(
                f,
                "tensor-parallel degree {tp} exceeds the system's {gpus} GPU(s)"
            ),
            ConfigError::ZeroBatch => write!(f, "batch_size must be at least 1"),
            ConfigError::ZeroMicroBatches => write!(f, "micro_batches must be at least 1"),
            ConfigError::IndivisibleMicroBatches {
                batch_size,
                micro_batches,
            } => write!(
                f,
                "batch_size {batch_size} does not divide into {micro_batches} micro-batches"
            ),
            ConfigError::FallbackWithoutPolicy => write!(
                f,
                "a fallback target requires RecoveryPolicy::FallbackTarget"
            ),
            ConfigError::ZeroStages => write!(f, "the pipeline needs at least one stage"),
            ConfigError::StagesExceedLayers { pp, layers } => {
                write!(f, "more pipeline stages than layers ({pp} > {layers})")
            }
            ConfigError::ZeroTierCapacity => {
                write!(f, "a tiered backend needs a non-zero DRAM tier capacity")
            }
            ConfigError::TieredFallback => write!(
                f,
                "the fallback must be a single device (ssd or dram), not the tiered stack"
            ),
            ConfigError::StatelessOptimizerOffload => write!(
                f,
                "offloading optimizer state requires a stateful optimizer; set a \
                 non-zero momentum"
            ),
            ConfigError::ActivationClassRequired => write!(
                f,
                "the activation class cannot be disabled while the placement strategy \
                 offloads activations; use a keep or recompute strategy"
            ),
            ConfigError::UnsupportedArch { arch } => write!(
                f,
                "{arch:?} is not supported here: T5's cross-attention broadcasts the \
                 encoder output to every decoder stage; the functional pipeline trainer \
                 supports GPT and BERT"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validated construction of a [`SessionConfig`].
///
/// Defaults reproduce the paper's single-node testbed: Table 3's
/// machine, a tiny GPT, one micro-batch, the offload strategy over the
/// SSD target, no faults and tracing disabled.
///
/// ```
/// use ssdtrain_train::{SessionConfig, TrainSession};
///
/// let cfg = SessionConfig::builder()
///     .batch_size(2)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// let mut session = TrainSession::new(cfg).expect("session");
/// assert!(session.run_step().expect("healthy device").step_secs > 0.0);
/// ```
///
/// Invalid combinations surface as typed errors instead of panics:
///
/// ```
/// use ssdtrain_train::{ConfigError, SessionConfig};
///
/// let err = SessionConfig::builder()
///     .batch_size(3)
///     .micro_batches(2)
///     .build()
///     .unwrap_err();
/// assert_eq!(
///     err,
///     ConfigError::IndivisibleMicroBatches { batch_size: 3, micro_batches: 2 }
/// );
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the SessionConfig"]
pub struct SessionBuilder {
    system: SystemConfig,
    model: ModelConfig,
    batch_size: usize,
    micro_batches: usize,
    strategy: PlacementStrategy,
    cache: TensorCacheConfig,
    symbolic: bool,
    seed: u64,
    backend: OffloadBackend,
    offload: OffloadClassSet,
    overlap_optimizer: bool,
    momentum: f32,
    fault: Option<FaultPlan>,
    fallback: Option<OffloadBackend>,
    trace: TraceSink,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder {
            system: SystemConfig::dac_testbed(),
            model: ModelConfig::tiny_gpt(),
            batch_size: 1,
            micro_batches: 1,
            strategy: PlacementStrategy::Offload,
            cache: TensorCacheConfig::default(),
            symbolic: false,
            seed: 0,
            backend: OffloadBackend::default(),
            offload: OffloadClassSet::default(),
            overlap_optimizer: false,
            momentum: 0.0,
            fault: None,
            fallback: None,
            trace: TraceSink::disabled(),
        }
    }
}

impl SessionBuilder {
    /// Starts from the defaults described on the type.
    pub fn new() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The machine to simulate.
    pub fn system(mut self, system: SystemConfig) -> SessionBuilder {
        self.system = system;
        self
    }

    /// The model to train.
    pub fn model(mut self, model: ModelConfig) -> SessionBuilder {
        self.model = model;
        self
    }

    /// Global batch size in sequences.
    pub fn batch_size(mut self, batch_size: usize) -> SessionBuilder {
        self.batch_size = batch_size;
        self
    }

    /// Micro-batches per step (gradient accumulation).
    pub fn micro_batches(mut self, micro_batches: usize) -> SessionBuilder {
        self.micro_batches = micro_batches;
        self
    }

    /// Activation placement strategy (the ROK corner to run).
    pub fn strategy(mut self, strategy: PlacementStrategy) -> SessionBuilder {
        self.strategy = strategy;
        self
    }

    /// Tensor-cache tunables (used only by the offload strategy).
    pub fn cache(mut self, cache: TensorCacheConfig) -> SessionBuilder {
        self.cache = cache;
        self
    }

    /// Recovery policy shorthand: rewrites `cache.recovery` in place.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> SessionBuilder {
        self.cache.recovery = recovery;
        self
    }

    /// Write-coalescing segment size shorthand: rewrites
    /// `cache.coalesce_segment_bytes` in place. Zero (the default)
    /// keeps the per-tensor store path; a positive value batches
    /// forward-pass stores into sequential segments of roughly this
    /// many bytes before they hit the tier queues.
    pub fn coalesce_segment(mut self, bytes: u64) -> SessionBuilder {
        self.cache.coalesce_segment_bytes = bytes;
        self
    }

    /// Group-prefetch shorthand: rewrites
    /// `cache.prefetch_group_modules` in place. Zero (the default)
    /// keeps per-module prefetch; a positive value loads backward
    /// activations in groups of this many modules on the double
    /// buffer, `prefetch_depth` groups ahead of consumption.
    pub fn prefetch_group(mut self, modules: usize) -> SessionBuilder {
        self.cache.prefetch_group_modules = modules;
        self
    }

    /// Prefetch lookahead shorthand: rewrites `cache.prefetch_depth`
    /// in place (modules on the per-module path, groups on the
    /// grouped path).
    pub fn prefetch_depth(mut self, depth: usize) -> SessionBuilder {
        self.cache.prefetch_depth = depth;
        self
    }

    /// Per-store-job fixed cost shorthand: rewrites
    /// `system.store_job_overhead_secs` in place. This is the knob
    /// that makes coalescing pay off in simulated time — each queued
    /// store job charges this submission overhead on top of its
    /// bandwidth term.
    pub fn store_job_overhead(mut self, secs: f64) -> SessionBuilder {
        self.system.store_job_overhead_secs = secs;
        self
    }

    /// Per-write-op media overhead shorthand: rewrites
    /// `system.ssd_write_overhead_bytes` in place. Each store op
    /// charges this many extra media bytes on the wear meter (mapping
    /// granularity / page padding), so many small writes inflate the
    /// effective write-amplification factor relative to few large
    /// segments.
    pub fn ssd_write_overhead(mut self, bytes: u64) -> SessionBuilder {
        self.system.ssd_write_overhead_bytes = bytes;
        self
    }

    /// Shape-only execution (paper-scale runs).
    pub fn symbolic(mut self, symbolic: bool) -> SessionBuilder {
        self.symbolic = symbolic;
        self
    }

    /// Seed for weights, data and dropout.
    pub fn seed(mut self, seed: u64) -> SessionBuilder {
        self.seed = seed;
        self
    }

    /// The offload backend: one of the single-tier devices
    /// ([`OffloadBackend::Ssd`], [`OffloadBackend::Dram`]) or the tiered
    /// DRAM-then-SSD stack.
    pub fn backend(mut self, backend: OffloadBackend) -> SessionBuilder {
        self.backend = backend;
        self
    }

    /// Selects which tensor class rides the tier stack: activations (on
    /// by default), gradients, optimizer state. State classes work under
    /// any activation strategy; `OptimizerState` additionally needs a
    /// stateful optimizer (see [`momentum`]).
    ///
    /// ```
    /// use ssdtrain_train::prelude::*;
    ///
    /// let cfg = SessionConfig::builder()
    ///     .offload(OffloadClass::Gradient, true)
    ///     .offload(OffloadClass::OptimizerState, true)
    ///     .momentum(0.9)
    ///     .build()
    ///     .expect("valid config");
    /// assert!(cfg.offload.contains(OffloadClass::OptimizerState));
    /// ```
    ///
    /// [`momentum`]: SessionBuilder::momentum
    pub fn offload(mut self, class: OffloadClass, enabled: bool) -> SessionBuilder {
        self.offload = self.offload.with(class, enabled);
        self
    }

    /// Defers each step's optimizer update into the next step's forward
    /// window, as per-stage jobs racing the forecast layer arrivals (the
    /// GreedySnake overlap). Off by default: the per-stage jobs then run
    /// inline at the `OptimizerStep` stage when a state class is
    /// enabled, or the legacy whole-model update runs outside the
    /// measured window when none is.
    pub fn overlap_optimizer(mut self, overlap: bool) -> SessionBuilder {
        self.overlap_optimizer = overlap;
        self
    }

    /// SGD momentum. Zero (the default) keeps the paper's stateless
    /// optimizer; a positive value allocates per-parameter velocity —
    /// the state the `OptimizerState` class moves through the tiers.
    pub fn momentum(mut self, momentum: f32) -> SessionBuilder {
        self.momentum = momentum;
        self
    }

    /// Injects a deterministic fault schedule between the cache and the
    /// offload target.
    pub fn fault(mut self, plan: FaultPlan) -> SessionBuilder {
        self.fault = Some(plan);
        self
    }

    /// Names the spill-of-last-resort backend for
    /// [`RecoveryPolicy::FallbackTarget`]. Must be a single device
    /// (ssd or dram); rejected by [`build`] when the recovery policy
    /// would never consult it, or when handed the tiered stack.
    ///
    /// [`build`]: SessionBuilder::build
    pub fn fallback(mut self, backend: OffloadBackend) -> SessionBuilder {
        self.fallback = Some(backend);
        self
    }

    /// Routes the session's tensor-lifecycle events into `sink`.
    pub fn trace(mut self, sink: TraceSink) -> SessionBuilder {
        self.trace = sink;
        self
    }

    /// Validates the accumulated settings.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] the settings violate.
    pub fn build(self) -> Result<SessionConfig, ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if self.micro_batches == 0 {
            return Err(ConfigError::ZeroMicroBatches);
        }
        if !self.batch_size.is_multiple_of(self.micro_batches) {
            return Err(ConfigError::IndivisibleMicroBatches {
                batch_size: self.batch_size,
                micro_batches: self.micro_batches,
            });
        }
        if self.model.tp > self.system.gpus {
            return Err(ConfigError::TensorParallelMismatch {
                tp: self.model.tp,
                gpus: self.system.gpus,
            });
        }
        if self.fallback.is_some() && self.cache.recovery != RecoveryPolicy::FallbackTarget {
            return Err(ConfigError::FallbackWithoutPolicy);
        }
        if matches!(self.fallback, Some(OffloadBackend::Tiered { .. })) {
            return Err(ConfigError::TieredFallback);
        }
        if self.backend == (OffloadBackend::Tiered { dram_bytes: 0 }) {
            return Err(ConfigError::ZeroTierCapacity);
        }
        if self.offload.contains(OffloadClass::OptimizerState) && self.momentum <= 0.0 {
            return Err(ConfigError::StatelessOptimizerOffload);
        }
        if !self.offload.contains(OffloadClass::Activation) && self.strategy.uses_cache() {
            return Err(ConfigError::ActivationClassRequired);
        }
        Ok(SessionConfig {
            system: self.system,
            model: self.model,
            batch_size: self.batch_size,
            micro_batches: self.micro_batches,
            strategy: self.strategy,
            cache: self.cache,
            symbolic: self.symbolic,
            seed: self.seed,
            backend: self.backend,
            offload: self.offload,
            overlap_optimizer: self.overlap_optimizer,
            momentum: self.momentum,
            fault: self.fault,
            fallback: self.fallback,
            trace: self.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_cleanly() {
        let cfg = SessionConfig::builder().build().expect("defaults valid");
        assert_eq!(cfg.batch_size, 1);
        assert_eq!(cfg.micro_batches, 1);
        assert_eq!(cfg.backend, OffloadBackend::Ssd);
        assert!(cfg.fault.is_none());
        assert!(!cfg.trace.is_enabled());
    }

    #[test]
    fn offload_classes_accumulate_fluently() {
        let cfg = SessionConfig::builder()
            .offload(OffloadClass::Gradient, true)
            .offload(OffloadClass::OptimizerState, true)
            .momentum(0.9)
            .overlap_optimizer(true)
            .build()
            .expect("valid");
        assert_eq!(cfg.offload, OffloadClassSet::all());
        assert!(cfg.overlap_optimizer);
        assert_eq!(cfg.momentum, 0.9);
        // Default: activations only, no overlap, stateless SGD.
        let cfg = SessionConfig::builder().build().expect("valid");
        assert_eq!(cfg.offload, OffloadClassSet::activation_only());
        assert!(!cfg.overlap_optimizer);
        assert_eq!(cfg.momentum, 0.0);
    }

    #[test]
    fn io_pipeline_knobs_flow_into_the_config() {
        let cfg = SessionConfig::builder()
            .coalesce_segment(64 << 20)
            .prefetch_group(2)
            .prefetch_depth(3)
            .store_job_overhead(1e-3)
            .ssd_write_overhead(512 << 10)
            .build()
            .expect("valid");
        assert_eq!(cfg.cache.coalesce_segment_bytes, 64 << 20);
        assert_eq!(cfg.cache.prefetch_group_modules, 2);
        assert_eq!(cfg.cache.prefetch_depth, 3);
        assert_eq!(cfg.system.store_job_overhead_secs, 1e-3);
        assert_eq!(cfg.system.ssd_write_overhead_bytes, 512 << 10);
        // Defaults keep the legacy per-tensor path.
        let cfg = SessionConfig::builder().build().expect("valid");
        assert_eq!(cfg.cache.coalesce_segment_bytes, 0);
        assert_eq!(cfg.cache.prefetch_group_modules, 0);
        assert_eq!(cfg.system.store_job_overhead_secs, 0.0);
        assert_eq!(cfg.system.ssd_write_overhead_bytes, 0);
    }

    #[test]
    fn optimizer_state_offload_needs_a_stateful_optimizer() {
        let err = SessionConfig::builder()
            .offload(OffloadClass::OptimizerState, true)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::StatelessOptimizerOffload);
        assert!(err.to_string().contains("momentum"), "{err}");
        SessionConfig::builder()
            .offload(OffloadClass::OptimizerState, true)
            .momentum(0.5)
            .build()
            .expect("momentum makes it stateful");
    }

    #[test]
    fn disabling_activations_under_an_offload_strategy_is_rejected() {
        let err = SessionConfig::builder()
            .offload(OffloadClass::Activation, false)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ActivationClassRequired);
        // The GreedySnake corner: keep activations on GPU, move only
        // the gradients through the tiers.
        let cfg = SessionConfig::builder()
            .strategy(PlacementStrategy::Keep)
            .offload(OffloadClass::Activation, false)
            .offload(OffloadClass::Gradient, true)
            .build()
            .expect("state-only offload is a valid configuration");
        assert!(cfg.offload.any_state());
        assert!(!cfg.offload.contains(OffloadClass::Activation));
    }

    #[test]
    fn zero_capacity_front_tier_is_rejected() {
        let err = SessionConfig::builder()
            .backend(OffloadBackend::Tiered { dram_bytes: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTierCapacity);
        assert!(err.to_string().contains("DRAM"), "{err}");

        SessionConfig::builder()
            .backend(OffloadBackend::Tiered {
                dram_bytes: 1 << 20,
            })
            .build()
            .expect("non-zero capacity builds");
    }

    #[test]
    fn zero_sizes_are_rejected() {
        assert_eq!(
            SessionConfig::builder().batch_size(0).build().unwrap_err(),
            ConfigError::ZeroBatch
        );
        assert_eq!(
            SessionConfig::builder()
                .batch_size(2)
                .micro_batches(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMicroBatches
        );
    }

    #[test]
    fn indivisible_micro_batches_are_rejected() {
        let err = SessionConfig::builder()
            .batch_size(5)
            .micro_batches(2)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::IndivisibleMicroBatches {
                batch_size: 5,
                micro_batches: 2
            }
        );
        assert!(err.to_string().contains("5"), "{err}");
    }

    #[test]
    fn tensor_parallel_wider_than_the_machine_is_rejected() {
        let gpus = SystemConfig::dac_testbed().gpus;
        // Set the degree directly: `with_tp` would reject the odd width
        // for its own (orthogonal) divisibility reasons.
        let mut model = ModelConfig::tiny_gpt();
        model.tp = gpus + 1;
        let err = SessionConfig::builder().model(model).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::TensorParallelMismatch { tp: gpus + 1, gpus }
        );
    }

    #[test]
    fn fallback_requires_the_matching_recovery_policy() {
        let err = SessionConfig::builder()
            .fallback(OffloadBackend::Dram)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::FallbackWithoutPolicy);

        let cfg = SessionConfig::builder()
            .recovery(RecoveryPolicy::FallbackTarget)
            .fallback(OffloadBackend::Dram)
            .build()
            .expect("policy matches");
        assert_eq!(cfg.fallback, Some(OffloadBackend::Dram));
    }

    #[test]
    fn a_tiered_fallback_is_rejected() {
        let err = SessionConfig::builder()
            .recovery(RecoveryPolicy::FallbackTarget)
            .fallback(OffloadBackend::Tiered {
                dram_bytes: 1 << 20,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::TieredFallback);
        assert!(err.to_string().contains("single device"), "{err}");
    }
}
