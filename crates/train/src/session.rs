//! A training session: model + simulated hardware + placement strategy.

use crate::error::StepError;
use crate::executor::GpuExecutor;
use crate::metrics::StepMetrics;
use crate::opt_engine::{OptEngine, OptReport};
use crate::schedule::{single_gpu_schedule, with_lookahead, StepCmd};
use ssdtrain::{
    AdaptivePlan, ArgValue, CpuTarget, FaultyTarget, IoEngine, MemoryTraceBridge, MetricsRegistry,
    OffloadClass, OffloadTarget, PlacementStrategy, RecoveryPolicy, SsdTarget, StageHint,
    StepProfile, TensorCache, TensorCacheConfig, Tier, TierLink, TierStack, TraceCategory,
    TraceSink,
};
use ssdtrain_autograd::optim::Sgd;
use ssdtrain_autograd::{Graph, Phase};
use ssdtrain_models::{Batch, Model, ModelConfig, Recompute};
use ssdtrain_simhw::system::GpuRuntime;
use ssdtrain_simhw::{FaultLog, FaultPlan, SimTime, SystemConfig};
use ssdtrain_tensor::Device;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which [`OffloadClass`]es the session moves through the tier stack.
///
/// Activations follow the placement strategy as before; the gradient
/// and optimizer-state lanes are what turn the session into the
/// GreedySnake-style configuration — state lives off-GPU between steps
/// and the weight update becomes per-stage jobs (see
/// [`crate::opt_engine::OptEngine`]). Built fluently through
/// [`SessionBuilder::offload`](crate::builder::SessionBuilder::offload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffloadClassSet {
    enabled: [bool; 3],
}

impl Default for OffloadClassSet {
    /// Activations only — the paper's original configuration.
    fn default() -> OffloadClassSet {
        OffloadClassSet::activation_only()
    }
}

impl OffloadClassSet {
    /// Activations only (the pre-class default).
    pub fn activation_only() -> OffloadClassSet {
        OffloadClassSet {
            enabled: [true, false, false],
        }
    }

    /// Every class: activations, gradients and optimizer state.
    pub fn all() -> OffloadClassSet {
        OffloadClassSet {
            enabled: [true, true, true],
        }
    }

    /// No class at all (everything stays resident).
    pub fn none() -> OffloadClassSet {
        OffloadClassSet {
            enabled: [false; 3],
        }
    }

    /// Returns the set with `class` switched to `enabled`.
    pub fn with(mut self, class: OffloadClass, enabled: bool) -> OffloadClassSet {
        self.enabled[class.index()] = enabled;
        self
    }

    /// Whether `class` is selected for offloading.
    pub fn contains(&self, class: OffloadClass) -> bool {
        self.enabled[class.index()]
    }

    /// Whether any *state* class (gradient or optimizer state) is
    /// selected — these are what require the cache even when the
    /// activation strategy is keep/recompute.
    pub fn any_state(&self) -> bool {
        self.contains(OffloadClass::Gradient) || self.contains(OffloadClass::OptimizerState)
    }

    /// The selected classes, in [`OffloadClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = OffloadClass> + '_ {
        OffloadClass::ALL.into_iter().filter(|c| self.contains(*c))
    }
}

/// The tier stack the session's cache offloads into. The single-tier
/// backends reproduce the flat designs exactly; `Tiered` is the regime
/// 10Cache/MemAscend identify — a bounded DRAM front tier spilling into
/// the high-endurance SSD array, each priced on its own simulated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffloadBackend {
    /// One unbounded SSD-array tier (the paper's configuration).
    #[default]
    Ssd,
    /// One host-DRAM tier bounded by `SystemConfig::host_mem_bytes`,
    /// priced on the raw PCIe link.
    Dram,
    /// DRAM front tier of `dram_bytes` capacity spilling to the SSD
    /// array when full.
    Tiered {
        /// Admission capacity of the DRAM front tier in bytes.
        dram_bytes: u64,
    },
}

/// Configuration of a [`TrainSession`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The machine (Table 3 by default).
    pub system: SystemConfig,
    /// The model (its `tp` should match the machine's GPU count for the
    /// paper's tensor-parallel setup).
    pub model: ModelConfig,
    /// Global batch size in sequences.
    pub batch_size: usize,
    /// Micro-batches per step (gradient accumulation; the paper's
    /// single-node experiments use 1).
    pub micro_batches: usize,
    /// Activation placement strategy (the ROK corner to run).
    pub strategy: PlacementStrategy,
    /// Tensor-cache tunables (used only for `Offload`).
    pub cache: TensorCacheConfig,
    /// Shape-only execution (paper-scale runs).
    pub symbolic: bool,
    /// Seed for weights, data and dropout.
    pub seed: u64,
    /// The offload backend: tier stack plus the links its transfers are
    /// priced on (single SSD tier by default).
    pub backend: OffloadBackend,
    /// Which tensor classes ride the tier stack (activations only by
    /// default). State classes work under any activation strategy: the
    /// cache is built for them even when activations stay resident.
    pub offload: OffloadClassSet,
    /// Defer each step's optimizer update into the next step's forward
    /// window (the GreedySnake overlap); `false` runs the per-stage
    /// update jobs inline at the `OptimizerStep` stage.
    pub overlap_optimizer: bool,
    /// SGD momentum (0 keeps the paper's stateless configuration; a
    /// positive value allocates per-parameter velocity, the optimizer
    /// state the `OptimizerState` class moves off-GPU).
    pub momentum: f32,
    /// Deterministic fault schedule injected between the cache and the
    /// offload target (`None` for a healthy device). Recovery follows
    /// `cache.recovery`.
    pub fault: Option<FaultPlan>,
    /// Spill-of-last-resort backend for
    /// [`RecoveryPolicy::FallbackTarget`] (`None` defaults to the host
    /// pinned pool; the tiered backend is rejected at build time — a
    /// fallback must be a single device).
    pub fallback: Option<OffloadBackend>,
    /// Trace sink receiving the session's tensor-lifecycle events
    /// (disabled by default; see [`TraceSink::enabled`]).
    pub trace: TraceSink,
}

impl SessionConfig {
    /// Starts a validated, fluent [`SessionBuilder`](crate::SessionBuilder).
    pub fn builder() -> crate::builder::SessionBuilder {
        crate::builder::SessionBuilder::new()
    }
}

/// A live training session on one simulated GPU.
pub struct TrainSession {
    cfg: SessionConfig,
    device: Device,
    runtime: GpuRuntime,
    executor: Arc<GpuExecutor>,
    model: Model,
    cache: Option<Arc<TensorCache>>,
    faulty: Option<Arc<FaultyTarget>>,
    optimizer: Sgd,
    opt_engine: Option<OptEngine>,
    spill_dirs: Vec<PathBuf>,
    trace: TraceSink,
    metrics: MetricsRegistry,
    step_idx: u64,
}

fn stage_hint(cmd: StepCmd) -> StageHint {
    match cmd {
        StepCmd::LoadMicroBatch { mb } => StageHint::MicroBatchLoad(mb),
        StepCmd::ForwardPass { .. } => StageHint::Forward,
        StepCmd::StageBoundary => StageHint::Communication,
        StepCmd::BackwardPass { .. } => StageHint::Backward,
        StepCmd::ReduceGrads => StageHint::Communication,
        StepCmd::OptimizerStep => StageHint::Optimizer,
    }
}

fn unique_spill_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ssdtrain-spill-{}-{}-{n}",
        std::process::id(),
        tag.replace('/', "_")
    ))
}

impl TrainSession {
    /// Builds the session: instantiates runtime, model, optimizer and —
    /// for the offload strategy — the tensor cache over an SSD spill
    /// directory.
    ///
    /// # Errors
    /// Returns an error if the spill directory cannot be created.
    pub fn new(cfg: SessionConfig) -> std::io::Result<TrainSession> {
        let device = if cfg.symbolic {
            Device::symbolic()
        } else {
            Device::cpu()
        };
        let runtime = cfg.system.instantiate();
        device.set_tracker(runtime.memory.clone());
        let model = Model::build(&cfg.model, &device, cfg.seed);
        let executor = Arc::new(GpuExecutor::new(
            runtime.clock.clone(),
            cfg.system.gpu.clone(),
            cfg.system.nvlink_bps,
            cfg.model.tp,
        ));
        let mut spill_dirs = Vec::new();
        // State classes (gradients, optimizer state) need the tier stack
        // even when the activation strategy keeps or recomputes — the
        // GreedySnake configuration offloads *only* state.
        let wants_cache = cfg.strategy.uses_cache() || cfg.offload.any_state();
        let (cache, faulty) = if wants_cache {
            let mut new_ssd = |tag: &str| -> std::io::Result<Arc<dyn OffloadTarget>> {
                let dir = unique_spill_dir(tag);
                let wear = cfg
                    .system
                    .ssd_array
                    .wear_meter(1.0)
                    .with_write_overhead(cfg.system.ssd_write_overhead_bytes);
                let t = Arc::new(SsdTarget::new(&dir, wear)?);
                spill_dirs.push(dir);
                Ok(t)
            };
            // One tier to build: its device plus an optional pack-time
            // admission capacity (links stay per-index alongside).
            struct TierSpec {
                name: &'static str,
                device: Arc<dyn OffloadTarget>,
                capacity: Option<u64>,
            }
            // Build the tier stack and the simulated link each tier's
            // transfers are priced on. Single-tier backends keep the
            // flat link name ("offload"), so traces and numerics stay
            // identical to the pre-tier design; host memory offers
            // symmetric bandwidth over the raw PCIe link while the SSD
            // path is capped by the array.
            let (mut specs, links) = match cfg.backend {
                OffloadBackend::Ssd => (
                    vec![TierSpec {
                        name: "ssd",
                        device: new_ssd(&cfg.model.tag())?,
                        capacity: None,
                    }],
                    vec![TierLink::new(
                        "offload",
                        cfg.system.offload_write_bps(),
                        cfg.system.offload_read_bps(),
                    )],
                ),
                OffloadBackend::Dram => (
                    // The paper sizes the pinned pool by profiling;
                    // we grant the whole host memory (Figure 2).
                    vec![TierSpec {
                        name: "cpu",
                        device: Arc::new(CpuTarget::new(cfg.system.host_mem_bytes)),
                        capacity: None,
                    }],
                    vec![TierLink::new(
                        "offload",
                        cfg.system.host_offload_bps(),
                        cfg.system.host_offload_bps(),
                    )],
                ),
                OffloadBackend::Tiered { dram_bytes } => (
                    vec![
                        TierSpec {
                            name: "dram",
                            device: Arc::new(CpuTarget::new(dram_bytes)),
                            capacity: Some(dram_bytes),
                        },
                        TierSpec {
                            name: "ssd",
                            device: new_ssd(&cfg.model.tag())?,
                            capacity: None,
                        },
                    ],
                    vec![
                        TierLink::new(
                            "dram",
                            cfg.system.host_offload_bps(),
                            cfg.system.host_offload_bps(),
                        ),
                        TierLink::new(
                            "ssd",
                            cfg.system.offload_write_bps(),
                            cfg.system.offload_read_bps(),
                        ),
                    ],
                ),
            };
            // An injected fault plan sits between the cache and the
            // *front* tier's device (the one placement hits first).
            let faulty: Option<Arc<FaultyTarget>> = match cfg.fault.clone() {
                Some(plan) => {
                    let front = &mut specs[0].device;
                    let ft = FaultyTarget::new(front.clone(), plan);
                    *front = ft.clone();
                    Some(ft)
                }
                None => None,
            };
            // Every offload byte crosses the one physical PCIe bus
            // regardless of which tier absorbs it, so store jobs
            // serialise across links instead of draining in parallel —
            // this is what makes the tiered backend's drain land between
            // dram's and ssd's on the step critical path. Single-link
            // backends are byte-identical with or without the bus.
            let io = IoEngine::tiered_with_bus(runtime.clock.clone(), links, cfg.system.pcie_bps);
            io.set_store_job_overhead(cfg.system.store_job_overhead_secs);
            if let Some(ft) = &faulty {
                ft.attach_io(io.clone());
                ft.set_trace(cfg.trace.clone());
            }
            let tiers: Vec<Tier> = specs
                .into_iter()
                .enumerate()
                .map(|(link, spec)| {
                    let tier = Tier::new(spec.name, spec.device, link);
                    match spec.capacity {
                        Some(bytes) => tier.with_capacity(bytes),
                        None => tier,
                    }
                })
                .collect();
            let cache = TensorCache::with_tiers(
                cfg.cache.clone(),
                Arc::new(TierStack::new(tiers)),
                io,
                runtime.memory.clone(),
            );
            cache.set_trace(cfg.trace.clone());
            if cfg.cache.recovery == RecoveryPolicy::FallbackTarget {
                // Spill of last resort (host pinned pool by default).
                // `Tiered` is rejected by the builder, so any other
                // value maps to the pinned pool here.
                let fallback: Arc<dyn OffloadTarget> =
                    match cfg.fallback.unwrap_or(OffloadBackend::Dram) {
                        OffloadBackend::Ssd => {
                            let dir = unique_spill_dir(&format!("{}-fb", cfg.model.tag()));
                            let wear = cfg
                                .system
                                .ssd_array
                                .wear_meter(1.0)
                                .with_write_overhead(cfg.system.ssd_write_overhead_bytes);
                            let t = Arc::new(SsdTarget::new(&dir, wear)?);
                            spill_dirs.push(dir);
                            t
                        }
                        _ => Arc::new(CpuTarget::new(cfg.system.host_mem_bytes)),
                    };
                cache.set_fallback_target(fallback);
            }
            for p in model.parameters() {
                cache.register_parameter(&p.tensor());
            }
            (Some(cache), faulty)
        } else {
            (None, None)
        };
        if cfg.trace.is_enabled() {
            runtime
                .memory
                .set_peak_observer(MemoryTraceBridge::new(cfg.trace.clone()));
        }
        let optimizer = Sgd::with_momentum(model.parameters(), 0.05, cfg.momentum);
        // The per-stage scheduling engine exists whenever the session
        // moves state classes or overlaps the update; the legacy
        // outside-the-window optimizer is kept byte-identical otherwise.
        let opt_engine = (cfg.offload.any_state() || cfg.overlap_optimizer).then(|| {
            OptEngine::new(
                cfg.offload,
                cfg.overlap_optimizer,
                optimizer.len(),
                cfg.model.layers.max(1),
            )
        });
        let trace = cfg.trace.clone();
        Ok(TrainSession {
            cfg,
            device,
            runtime,
            executor,
            model,
            cache,
            faulty,
            optimizer,
            opt_engine,
            spill_dirs,
            trace,
            metrics: MetricsRegistry::new(),
            step_idx: 0,
        })
    }

    /// The model under training.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The tensor cache, when the strategy is `Offload`.
    pub fn cache(&self) -> Option<&Arc<TensorCache>> {
        self.cache.as_ref()
    }

    /// Firing counters of the injected fault plan (`None` when the
    /// session runs without one).
    pub fn fault_log(&self) -> Option<FaultLog> {
        self.faulty.as_ref().map(|f| f.fault_log())
    }

    /// The trace sink this session emits into (disabled unless the
    /// config carried an enabled one).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Named counters/gauges/histograms accumulated over the session's
    /// steps (offload statistics land here after every step).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn fresh_graph(&self) -> Graph {
        let g = Graph::new(&self.device, self.cfg.seed ^ (self.step_idx << 17));
        g.set_observer(self.executor.clone());
        if let Some(cache) = &self.cache {
            // The activation lane hooks the graph only when the strategy
            // offloads activations; a state-only session still owns the
            // cache for its gradient/optimizer-state slots.
            if self.cfg.strategy.uses_cache() {
                cache.install(&g);
            }
        }
        g
    }

    /// Runs one profiling step (offload strategy only) and applies the
    /// resulting adaptive plan to subsequent steps (Section 3.3.3).
    ///
    /// # Errors
    /// Returns a [`StepError`] if the offload stack reported a failure
    /// recovery could not absorb.
    ///
    /// # Panics
    /// Panics if the strategy is not `Offload`.
    pub fn profile_step(&mut self) -> Result<(StepProfile, AdaptivePlan), StepError> {
        let cache = self
            .cache
            .clone()
            .expect("profile_step requires the offload strategy");
        if let Some(engine) = self.opt_engine.as_mut() {
            // A profiling step never updates weights; drop any deferred
            // update so its gradients are not half-consumed.
            engine.abort(self.cache.as_deref());
        }
        self.runtime.reset();
        self.executor.reset();
        self.trace.next_step();
        self.trace.instant(
            TraceCategory::Session,
            "step.begin",
            self.runtime.clock.now(),
        );
        cache.begin_profile_step();
        let g = self.fresh_graph();
        g.set_phase(Phase::Forward);
        let batch = self.next_batch(0);
        let loss = self.model.forward_loss(&g, &batch, self.recompute_policy());
        let result = cache.end_profile_step();
        cache.prefetch_last_module();
        g.backward(&loss);
        cache.wait_io();
        cache.drain_stores();
        g.reset_tape();
        cache.flush();
        cache.stats().export_to(&self.metrics);
        self.trace
            .instant(TraceCategory::Session, "step.end", self.runtime.clock.now());
        self.optimizer.zero_grad();
        self.step_idx += 1;
        match cache.take_error() {
            Some(error) => Err(StepError {
                error,
                metrics: None,
            }),
            None => {
                // The profile's per-module forward times sharpen the
                // overlapped optimizer's stage-arrival forecast (the
                // forward is not uniform across modules).
                if let Some(engine) = self.opt_engine.as_mut() {
                    engine.note_profile(&result.0);
                }
                Ok(result)
            }
        }
    }

    /// Maps a scheduler command to the hint the cache understands.
    fn recompute_policy(&self) -> Recompute {
        match self.cfg.strategy {
            PlacementStrategy::Recompute => Recompute::All,
            PlacementStrategy::Hybrid { recompute_layers } => {
                Recompute::FirstLayers(recompute_layers)
            }
            _ => Recompute::None,
        }
    }

    fn next_batch(&self, micro_batch: usize) -> Batch {
        let per_mb = self.cfg.batch_size / self.cfg.micro_batches.max(1);
        Batch::synthetic(
            &self.cfg.model,
            per_mb.max(1),
            self.cfg
                .seed
                .wrapping_mul(1000)
                .wrapping_add(self.step_idx * 64 + micro_batch as u64),
            &self.device,
        )
    }

    /// Runs one measured training step under the configured strategy and
    /// returns its metrics.
    ///
    /// # Errors
    /// Returns a [`StepError`] when the offload stack reported a
    /// failure recovery could not absorb — a store failure under
    /// [`RecoveryPolicy::FailStep`], or a permanently failed load under
    /// any policy. The degraded step's metrics travel inside the error;
    /// the optimizer update is skipped (gradients are cleared), so the
    /// training loop can checkpoint, re-plan or retry the step.
    pub fn run_step(&mut self) -> Result<StepMetrics, StepError> {
        self.runtime.reset();
        self.executor.reset();
        self.trace.next_step();
        self.trace.instant(
            TraceCategory::Session,
            "step.begin",
            self.runtime.clock.now(),
        );
        // The whole measured step as one manually closed span: the end
        // timestamp is simulated time, so RAII cannot close it — the
        // span-balance lint proves both exits below end it.
        let step_span =
            self.trace
                .begin_span(TraceCategory::Session, "step", self.runtime.clock.now());
        if let Some(cache) = &self.cache {
            cache.begin_step();
        }
        // Overlapped optimizer: the previous step's deferred update runs
        // now, at t = 0, its state loads racing the forecast forward
        // arrivals (GreedySnake). Only the delay the forward window
        // cannot hide lands on the clock.
        let mut opt_report = OptReport::default();
        if let Some(engine) = self.opt_engine.as_mut() {
            opt_report = engine.begin_step(
                self.cache.as_deref(),
                &mut self.optimizer,
                &self.runtime.clock,
                &self.trace,
            );
        }
        let g = self.fresh_graph();
        let recompute = self.recompute_policy();
        let mut losses = Vec::new();
        let mut fwd_end = SimTime::ZERO;
        let mut pending_loss = None;

        // Algorithm 1's `deepspeed_exec_schedule`: walk the command
        // stream with one-command lookahead, entering a stage scope
        // around each execution (line 9; the guard's drop is line 15).
        let cmds = single_gpu_schedule(self.cfg.micro_batches.max(1));
        for (cmd, next) in with_lookahead(&cmds) {
            let stage = stage_hint(cmd);
            let stage_start = self.runtime.clock.now();
            let scope = self.cache.as_ref().map(|cache| cache.stage_scope(stage));
            if let (Some(scope), Some(next)) = (&scope, next) {
                if cmd.is_boundary() {
                    scope.announce_next(stage_hint(next)); // lines 10-13
                }
            }
            match cmd {
                StepCmd::LoadMicroBatch { mb } => {
                    g.set_micro_batch(mb);
                }
                StepCmd::ForwardPass { mb } => {
                    g.set_phase(Phase::Forward);
                    let batch = self.next_batch(mb);
                    let loss = self.model.forward_loss(&g, &batch, recompute);
                    fwd_end = self.runtime.clock.now();
                    if loss.tensor().has_data() {
                        losses.push(loss.tensor().item());
                    }
                    pending_loss = Some(loss);
                }
                StepCmd::BackwardPass { .. } => {
                    let loss = pending_loss.take().expect("forward precedes backward");
                    g.backward(&loss);
                    g.reset_tape();
                }
                StepCmd::StageBoundary => {}
                StepCmd::ReduceGrads => {
                    // Data parallelism degree 1: nothing to reduce, but
                    // this is where the gradient class leaves the GPU —
                    // the stores drain at this stage scope's exit, on
                    // the step that produced the gradients.
                    if let Some(engine) = self.opt_engine.as_mut() {
                        engine.stash_grads(self.cache.as_deref(), &self.optimizer);
                    }
                }
                StepCmd::OptimizerStep => {
                    // With the engine, the update joins the measured
                    // window (inline per-stage jobs) or is deferred to
                    // the next step's begin (overlap). Without it, the
                    // legacy optimizer runs outside the window (below).
                    if let Some(engine) = self.opt_engine.as_mut() {
                        let r = engine.end_of_step(
                            self.cache.as_deref(),
                            &mut self.optimizer,
                            &self.runtime.clock,
                            &self.trace,
                        );
                        opt_report.inline_secs += r.inline_secs;
                        opt_report.exposed_secs += r.exposed_secs;
                    }
                }
            }
            match scope {
                Some(scope) => drop(scope), // line 15 + stage span
                None => self.trace.span(
                    TraceCategory::Stage,
                    stage.trace_label(),
                    stage_start,
                    self.runtime.clock.now(),
                ),
            }
        }

        if let Some(cache) = &self.cache {
            cache.flush();
        }
        if let Some(engine) = self.opt_engine.as_mut() {
            engine.note_forward_secs(self.executor.phase_secs(Phase::Forward));
        }
        let step_secs = self.runtime.clock.now().as_secs();
        let timeline = self.runtime.memory.timeline();
        // Strictly-before: the first backward node's frees are stamped at
        // exactly the forward-end instant (the clock advances only after
        // its kernel) and must not be counted into the forward level.
        let act_at_bwd_start = timeline
            .iter()
            .take_while(|p| p.time < fwd_end)
            .last()
            .map(|p| p.activations)
            .unwrap_or(0);
        let offload = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        let ssd_host_writes = self
            .cache
            .as_ref()
            .map(|c| c.io().bytes_written())
            .unwrap_or(0);
        let metrics = StepMetrics {
            strategy: self.cfg.strategy.label().to_owned(),
            model: self.cfg.model.tag(),
            batch: self.cfg.batch_size,
            step_secs,
            fwd_secs: self.executor.phase_secs(Phase::Forward),
            act_peak_bytes: self.runtime.memory.peak_activations(),
            total_peak_bytes: self.runtime.memory.peak_total(),
            act_at_bwd_start,
            timeline,
            offload,
            model_flops: self.executor.model_flops(),
            comm_secs: self.executor.comm_secs(),
            ssd_host_writes,
            alloc: self.runtime.memory.allocator_stats(),
            oom: self.runtime.memory.oom(),
            loss: losses.iter().copied().sum::<f32>() / losses.len().max(1) as f32,
            opt_secs: opt_report.inline_secs,
            opt_exposed_secs: opt_report.exposed_secs,
        };
        metrics.offload.export_to(&self.metrics);
        self.metrics.inc_counter("session.steps", 1);
        self.metrics.observe("session.step_secs", step_secs);
        if self.opt_engine.is_some() {
            self.metrics
                .observe("session.opt_secs", opt_report.inline_secs);
            self.metrics
                .observe("session.opt_exposed_secs", opt_report.exposed_secs);
        }
        self.trace.instant_with(
            TraceCategory::Session,
            "step.end",
            self.runtime.clock.now(),
            vec![("secs", ArgValue::F64(step_secs))],
        );
        if let Some(error) = self.cache.as_ref().and_then(|c| c.take_error()) {
            // The step is tainted: skip the weight update (dropping any
            // deferred one with it), clear the accumulated gradients and
            // hand the degraded metrics to the caller inside the error.
            if let Some(engine) = self.opt_engine.as_mut() {
                engine.abort(self.cache.as_deref());
            }
            self.optimizer.zero_grad();
            self.step_idx += 1;
            step_span.end(self.runtime.clock.now());
            return Err(StepError {
                error,
                metrics: Some(Box::new(metrics)),
            });
        }
        // Without the engine, the optimizer runs outside the measured
        // window (constant offset in the paper's comparison, Section
        // 4.1). The engine paths already updated inline — or deferred
        // the update (and its still-needed gradients) to the next step.
        if self.opt_engine.is_none() {
            self.optimizer.step();
            self.optimizer.zero_grad();
        }
        self.step_idx += 1;
        step_span.end(self.runtime.clock.now());
        Ok(metrics)
    }
}

impl Drop for TrainSession {
    fn drop(&mut self) {
        for dir in &self.spill_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl std::fmt::Debug for TrainSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainSession")
            .field("model", &self.cfg.model.tag())
            .field("strategy", &self.cfg.strategy)
            .field("symbolic", &self.cfg.symbolic)
            .field("steps_run", &self.step_idx)
            .finish()
    }
}
