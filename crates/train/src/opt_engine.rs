//! The per-stage optimizer scheduling engine — gradients and optimizer
//! state ride the placement → tier → I/O stack, and the weight update
//! itself becomes per-stage jobs that can overlap the *next* step's
//! forward pass (the GreedySnake trick: while layer N's state is still
//! loading, layers 1..N−1 of the next forward already run).
//!
//! Two execution modes, selected by [`SessionBuilder::overlap_optimizer`]:
//!
//! * **Inline** (`overlap = false`): the update runs inside the measured
//!   window at the `OptimizerStep` stage. Each stage job loads its
//!   gradient and state slots back (stalling the simulated clock to the
//!   load's completion), applies [`Sgd::step_range`], and re-offloads
//!   the fresh state. Every second of state I/O is exposed.
//! * **Overlapped** (`overlap = true`): the update of step *k* is
//!   deferred to the start of step *k+1*. Stage *j*'s loads are
//!   submitted at `t = 0` and compared against the forecast arrival of
//!   the forward pass at stage *j* — `fwd_secs · frac(j)`, where
//!   `fwd_secs` is the previous step's measured forward time and
//!   `frac(j)` is the cumulative per-stage forward fraction observed by
//!   a profiling step ([`OptEngine::note_profile`]), falling back to
//!   the uniform `j / S` when no profile ran; only the delay that
//!   exceeds that window is exposed on the clock. The re-offloaded state's store jobs occupy the tier
//!   links and the shared write bus while the forward runs, so the
//!   overlap's contention with activation offloading is priced rather
//!   than assumed free. Numerics are unchanged: the deferred update
//!   still lands before the next forward touches the weights.
//!
//! [`SessionBuilder::overlap_optimizer`]: crate::builder::SessionBuilder::overlap_optimizer
//! [`Sgd::step_range`]: ssdtrain_autograd::optim::Sgd::step_range

use crate::schedule::stage_ranges;
use crate::session::OffloadClassSet;
use ssdtrain::{
    ArgValue, OffloadClass, StateSlot, StepProfile, TensorCache, TraceCategory, TraceSink,
};
use ssdtrain_autograd::optim::Sgd;
use ssdtrain_simhw::{SimClock, SimTime};
use std::ops::Range;

/// What one engine hook cost the step, in simulated seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptReport {
    /// Seconds the update spent inside the measured window (inline mode:
    /// load stalls; zero in overlapped mode).
    pub inline_secs: f64,
    /// Seconds of exposed delay the overlapped schedule could not hide
    /// behind the forecast forward window (zero in inline mode).
    pub exposed_secs: f64,
}

impl OptReport {
    /// Total simulated seconds the optimizer added to the step.
    pub fn total_secs(&self) -> f64 {
        self.inline_secs + self.exposed_secs
    }
}

/// Per-stage optimizer scheduling over the session's tensor cache.
pub struct OptEngine {
    classes: OffloadClassSet,
    overlap: bool,
    ranges: Vec<Range<usize>>,
    grad_slots: Vec<Vec<StateSlot>>,
    state_slots: Vec<Vec<StateSlot>>,
    pending: bool,
    fwd_estimate: f64,
    /// Cumulative forward-time fraction elapsed when the forward pass
    /// reaches each stage's parameters (`fracs[0] == 0.0`), measured by
    /// a profiling step. `None` falls back to the uniform `j / S`.
    arrival_fracs: Option<Vec<f64>>,
}

impl OptEngine {
    /// Builds the engine: `n_params` parameters partitioned into
    /// `n_stages` contiguous per-stage update jobs.
    pub fn new(
        classes: OffloadClassSet,
        overlap: bool,
        n_params: usize,
        n_stages: usize,
    ) -> OptEngine {
        let ranges = stage_ranges(n_params, n_stages);
        let stages = ranges.len();
        OptEngine {
            classes,
            overlap,
            ranges,
            grad_slots: vec![Vec::new(); stages],
            state_slots: vec![Vec::new(); stages],
            pending: false,
            fwd_estimate: 0.0,
            arrival_fracs: None,
        }
    }

    /// Whether the update is deferred into the next step's forward.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Whether a deferred update is waiting for the next step.
    pub fn pending(&self) -> bool {
        self.pending
    }

    /// The per-stage parameter ranges the update is partitioned into.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Records the measured forward time of the step that just ran; the
    /// overlapped schedule forecasts stage arrivals from it.
    pub fn note_forward_secs(&mut self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.fwd_estimate = secs;
        }
    }

    /// Records a profiling step's per-module forward times: the forward
    /// pass is not uniform (embeddings, heads and attention blocks cost
    /// different amounts), so the stage-`j` arrival forecast becomes the
    /// observed cumulative fraction of forward time instead of `j / S`.
    /// Modules are mapped onto stages by the same contiguous partition
    /// the parameters use. A degenerate profile (no modules, or no
    /// positive forward time) leaves the uniform fallback in place.
    pub fn note_profile(&mut self, profile: &StepProfile) {
        let stages = self.ranges.len();
        let total: f64 = profile.modules.iter().map(|m| m.fwd_secs.max(0.0)).sum();
        if stages == 0 || profile.modules.is_empty() || !total.is_finite() || total <= 0.0 {
            return;
        }
        let groups = stage_ranges(profile.modules.len(), stages);
        let mut fracs = Vec::with_capacity(stages);
        let mut elapsed = 0.0;
        for g in &groups {
            fracs.push(elapsed / total);
            elapsed += g
                .clone()
                .map(|m| profile.modules[m].fwd_secs.max(0.0))
                .sum::<f64>();
        }
        // More stages than modules: the forward has fully passed the
        // last module before these stages' parameters are touched.
        fracs.resize(stages, 1.0);
        self.arrival_fracs = Some(fracs);
    }

    /// The forecast fraction of the forward window elapsed when stage
    /// `j`'s parameters arrive: measured when a profile was noted,
    /// uniform otherwise.
    fn arrival_frac(&self, j: usize) -> f64 {
        match &self.arrival_fracs {
            Some(fracs) if j < fracs.len() => fracs[j],
            _ => j as f64 / self.ranges.len().max(1) as f64,
        }
    }

    /// Start-of-step hook: applies the previous step's deferred update,
    /// overlapped against the forecast forward. Returns the exposed
    /// delay (already advanced on `clock`). No-op unless overlapping
    /// with a pending update.
    pub fn begin_step(
        &mut self,
        cache: Option<&TensorCache>,
        opt: &mut Sgd,
        clock: &SimClock,
        trace: &TraceSink,
    ) -> OptReport {
        if !self.overlap || !self.pending {
            return OptReport::default();
        }
        self.pending = false;
        let mut delay = 0.0;
        for j in 0..self.ranges.len() {
            let range = self.ranges[j].clone();
            // Load this stage's gradient and state slots; the ready time
            // is the latest completion (each clamped to its own store's
            // drain by the cache).
            let mut ready = SimTime::ZERO;
            if let Some(cache) = cache {
                for slot in self.grad_slots[j].iter().chain(self.state_slots[j].iter()) {
                    // ssdtrain-lint: allow(no-alloc-hot-loop): reloading state
                    // materialises its payload — the buffer is the reload
                    if let Some(t) = cache.load_state(*slot) {
                        ready = ready.max(t);
                    }
                }
            }
            // GreedySnake: stage j's update must land before the next
            // forward reaches stage j. Whatever the window cannot hide
            // accumulates as exposed delay.
            let arrival = self.fwd_estimate * self.arrival_frac(j) + delay;
            let late = (ready.as_secs() - arrival).max(0.0);
            delay += late;
            // ssdtrain-lint: allow(no-alloc-hot-loop): the stage update's
            // kernel math produces fresh tensors by design, once per stage
            self.apply_stage(cache, opt, j, range);
            trace.instant_with(
                TraceCategory::Stage,
                // ssdtrain-lint: allow(no-alloc-hot-loop): one overlap event
                // per stage per step; the stage loop is bounded and small
                format!("opt.overlap.s{j}"),
                clock.now(),
                // ssdtrain-lint: allow(no-alloc-hot-loop): one overlap event
                // per stage per step; the stage loop is bounded and small
                vec![
                    ("ready_secs", ArgValue::F64(ready.as_secs())),
                    ("arrival_secs", ArgValue::F64(arrival)),
                    ("exposed_secs", ArgValue::F64(late)),
                    ("fwd_estimate_secs", ArgValue::F64(self.fwd_estimate)),
                ],
            );
        }
        if delay > 0.0 {
            clock.advance_to(SimTime::from_secs(clock.now().as_secs() + delay));
        }
        OptReport {
            inline_secs: 0.0,
            exposed_secs: delay,
        }
    }

    /// `ReduceGrads` hook: stashes the accumulated gradients through the
    /// tier stack (when the gradient class is enabled). The store jobs
    /// drain at the enclosing stage scope's exit, so their cost lands on
    /// the step that produced the gradients.
    pub fn stash_grads(&mut self, cache: Option<&TensorCache>, opt: &Sgd) {
        let Some(cache) = cache else { return };
        if !self.classes.contains(OffloadClass::Gradient) {
            return;
        }
        for (j, range) in self.ranges.iter().enumerate() {
            for i in range.clone() {
                let Some(p) = opt.params().get(i) else {
                    continue;
                };
                let Some(grad) = p.grad() else { continue };
                // ssdtrain-lint: allow(no-alloc-hot-loop): offloading the
                // gradient serialises its payload — the buffer is the store
                if let Some(slot) = cache.offload_state(&grad, OffloadClass::Gradient) {
                    self.grad_slots[j].push(slot);
                }
            }
        }
    }

    /// `OptimizerStep` hook. Inline mode runs the per-stage update jobs
    /// now, inside the measured window; overlapped mode offloads the
    /// bootstrap state (first step only) and defers the update to the
    /// next step's [`OptEngine::begin_step`].
    pub fn end_of_step(
        &mut self,
        cache: Option<&TensorCache>,
        opt: &mut Sgd,
        clock: &SimClock,
        trace: &TraceSink,
    ) -> OptReport {
        if self.overlap {
            // Bootstrap: the very first deferral has no offloaded state
            // yet (later steps re-offload at begin_step). Materialise
            // velocity ahead of the first update — numerically identical
            // to the lazy allocation — and push it through the tiers.
            if self.classes.contains(OffloadClass::OptimizerState) {
                for j in 0..self.ranges.len() {
                    if !self.state_slots[j].is_empty() {
                        continue;
                    }
                    let range = self.ranges[j].clone();
                    for i in range {
                        if opt.ensure_velocity(i).is_none() {
                            continue;
                        }
                        // ssdtrain-lint: allow(no-alloc-hot-loop): offloading
                        // velocity serialises its payload — the store itself
                        self.offload_state_of(cache, opt, j, i);
                    }
                }
            }
            self.pending = true;
            return OptReport::default();
        }
        let t0 = clock.now();
        for j in 0..self.ranges.len() {
            let range = self.ranges[j].clone();
            let stage_start = clock.now();
            let mut ready = stage_start;
            if let Some(cache) = cache {
                for slot in self.grad_slots[j].iter().chain(self.state_slots[j].iter()) {
                    // ssdtrain-lint: allow(no-alloc-hot-loop): reloading state
                    // materialises its payload — the buffer is the reload
                    if let Some(t) = cache.load_state(*slot) {
                        ready = ready.max(t);
                    }
                }
            }
            // Inline: the GPU sits idle until the stage's state landed.
            clock.advance_to(ready);
            for i in range.clone() {
                opt.ensure_velocity(i);
            }
            // ssdtrain-lint: allow(no-alloc-hot-loop): the stage update's
            // kernel math produces fresh tensors by design, once per stage
            self.apply_stage(cache, opt, j, range);
            trace.span(
                TraceCategory::Stage,
                // ssdtrain-lint: allow(no-alloc-hot-loop): one span label per
                // stage per step; the stage loop is bounded and small
                format!("opt.stage{j}"),
                stage_start,
                clock.now(),
            );
        }
        OptReport {
            inline_secs: clock.now().since(t0),
            exposed_secs: 0.0,
        }
    }

    /// Applies stage `j`'s update math and rotates its slots: consumed
    /// gradient slots are released, stale state slots replaced by the
    /// freshly-written velocity tensors.
    fn apply_stage(
        &mut self,
        cache: Option<&TensorCache>,
        opt: &mut Sgd,
        j: usize,
        range: Range<usize>,
    ) {
        // ssdtrain-lint: allow(panic-free-hot-path): `step_range` skips any
        // parameter without materialised data before touching values, so the
        // `to_vec` expect along `step_range → scale → to_vec` cannot fire
        opt.step_range(range.clone());
        for i in range.clone() {
            if let Some(p) = opt.params().get(i) {
                p.zero_grad();
            }
        }
        if let Some(cache) = cache {
            for slot in self.grad_slots[j].drain(..) {
                cache.release_state(slot);
            }
            for slot in self.state_slots[j].drain(..) {
                cache.release_state(slot);
            }
        } else {
            self.grad_slots[j].clear();
            self.state_slots[j].clear();
        }
        if self.classes.contains(OffloadClass::OptimizerState) {
            for i in range {
                // ssdtrain-lint: allow(no-alloc-hot-loop): offloading
                // velocity serialises its payload — the store itself
                self.offload_state_of(cache, opt, j, i);
            }
        }
    }

    /// Offloads parameter `i`'s velocity tensor into stage `j`'s slot
    /// list, when one exists and placement admits it.
    fn offload_state_of(&mut self, cache: Option<&TensorCache>, opt: &Sgd, j: usize, i: usize) {
        let Some(cache) = cache else { return };
        let Some(v) = opt.velocity(i) else { return };
        if let Some(slot) = cache.offload_state(v, OffloadClass::OptimizerState) {
            self.state_slots[j].push(slot);
        }
    }

    /// Error-path hook: a tainted step skips its weight update, so the
    /// stashed slots are released and any deferred update dropped (its
    /// gradients are being cleared by the caller).
    pub fn abort(&mut self, cache: Option<&TensorCache>) {
        self.pending = false;
        for slots in self
            .grad_slots
            .iter_mut()
            .chain(self.state_slots.iter_mut())
        {
            for slot in slots.drain(..) {
                if let Some(cache) = cache {
                    cache.release_state(slot);
                }
            }
        }
    }
}

impl std::fmt::Debug for OptEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptEngine")
            .field("classes", &self.classes)
            .field("overlap", &self.overlap)
            .field("stages", &self.ranges.len())
            .field("pending", &self.pending)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_autograd::var::Var;
    use ssdtrain_tensor::{Device, Tensor};

    fn opt_with(n: usize, momentum: f32) -> Sgd {
        let d = Device::cpu();
        let params: Vec<Var> = (0..n)
            .map(|i| Var::new(format!("p{i}"), Tensor::from_vec(vec![1.0], [1], &d)))
            .collect();
        for p in &params {
            p.accumulate_grad(&Tensor::ones([1], &d));
        }
        Sgd::with_momentum(params, 0.5, momentum)
    }

    #[test]
    fn inline_update_without_cache_matches_a_plain_step() {
        let clock = SimClock::new();
        let trace = TraceSink::disabled();
        let mut a = opt_with(4, 0.0);
        let mut b = opt_with(4, 0.0);
        let mut engine = OptEngine::new(OffloadClassSet::default(), false, 4, 2);
        let report = engine.end_of_step(None, &mut a, &clock, &trace);
        b.step();
        b.zero_grad();
        for (x, y) in a.params().iter().zip(b.params()) {
            assert_eq!(x.tensor().to_vec(), y.tensor().to_vec());
            assert!(x.grad().is_none(), "engine zeroes consumed gradients");
        }
        assert_eq!(report.total_secs(), 0.0, "no I/O, no stall");
    }

    #[test]
    fn overlap_defers_the_update_to_the_next_begin() {
        let clock = SimClock::new();
        let trace = TraceSink::disabled();
        let mut opt = opt_with(2, 0.0);
        let mut engine = OptEngine::new(OffloadClassSet::default(), true, 2, 2);
        engine.end_of_step(None, &mut opt, &clock, &trace);
        assert!(engine.pending());
        // The weights are untouched until the deferred update lands.
        assert_eq!(opt.params()[0].tensor().to_vec(), vec![1.0]);
        let report = engine.begin_step(None, &mut opt, &clock, &trace);
        assert!(!engine.pending());
        assert_eq!(opt.params()[0].tensor().to_vec(), vec![0.5]);
        assert_eq!(report.exposed_secs, 0.0);
    }

    fn profile_of(fwd: &[f64]) -> StepProfile {
        StepProfile {
            modules: fwd
                .iter()
                .enumerate()
                .map(|(i, &fwd_secs)| ssdtrain::ModuleProfile {
                    path: format!("m{i}"),
                    offload_bytes: 0,
                    fwd_secs,
                    store_secs: 0.0,
                    load_secs: 0.0,
                })
                .collect(),
            fwd_total_secs: fwd.iter().sum(),
            fwd_io_bytes: 0,
            fwd_io_secs: 0.0,
        }
    }

    #[test]
    fn profiled_arrivals_follow_observed_forward_fractions() {
        let mut engine = OptEngine::new(OffloadClassSet::default(), true, 4, 2);
        // Front-loaded forward: stage 1's parameters are reached after
        // 3 of the 4 forward seconds, not at the uniform halfway mark.
        engine.note_profile(&profile_of(&[3.0, 1.0]));
        engine.note_forward_secs(4.0);
        assert_eq!(engine.arrival_frac(0), 0.0);
        assert_eq!(engine.arrival_frac(1), 0.75);
        let clock = SimClock::new();
        let trace = TraceSink::enabled();
        let mut opt = opt_with(4, 0.0);
        engine.end_of_step(None, &mut opt, &clock, &trace);
        engine.begin_step(None, &mut opt, &clock, &trace);
        let arrivals: Vec<f64> = trace
            .events()
            .iter()
            .filter(|e| e.name.starts_with("opt.overlap.s"))
            .map(
                |e| match e.args.iter().find(|(k, _)| *k == "arrival_secs") {
                    Some((_, ArgValue::F64(v))) => *v,
                    other => panic!("arrival arg missing: {other:?}"),
                },
            )
            .collect();
        assert_eq!(arrivals, vec![0.0, 3.0]);
    }

    #[test]
    fn degenerate_profiles_keep_the_uniform_fallback() {
        let mut engine = OptEngine::new(OffloadClassSet::default(), true, 4, 2);
        assert_eq!(engine.arrival_frac(1), 0.5, "uniform before any profile");
        engine.note_profile(&profile_of(&[]));
        engine.note_profile(&profile_of(&[0.0, 0.0]));
        engine.note_profile(&profile_of(&[f64::NAN]));
        assert_eq!(engine.arrival_frac(1), 0.5, "degenerate profiles ignored");
        // A single-module profile maps onto both stages: stage 0 at the
        // start, stage 1 only after the whole forward has passed it.
        engine.note_profile(&profile_of(&[2.0]));
        assert_eq!(engine.arrival_frac(0), 0.0);
        assert_eq!(engine.arrival_frac(1), 1.0);
    }

    #[test]
    fn abort_drops_a_pending_update() {
        let clock = SimClock::new();
        let trace = TraceSink::disabled();
        let mut opt = opt_with(2, 0.0);
        let mut engine = OptEngine::new(OffloadClassSet::default(), true, 2, 1);
        engine.end_of_step(None, &mut opt, &clock, &trace);
        engine.abort(None);
        assert!(!engine.pending());
        engine.begin_step(None, &mut opt, &clock, &trace);
        assert_eq!(opt.params()[0].tensor().to_vec(), vec![1.0]);
    }
}
