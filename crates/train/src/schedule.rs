//! The hinted step schedule — a direct transcription of the paper's
//! Algorithm 1 (`deepspeed_exec_schedule`).
//!
//! A step is a list of [`StepCmd`]s. The runner executes each command
//! inside an [`ssdtrain::TensorCache::stage_scope`] guard; when the
//! *current* command is a communication/boundary command and the *next*
//! is a backward pass, [`ssdtrain::StageScope::announce_next`] prefetches
//! the last module (Algorithm 1 lines 11–13), and dropping a backward
//! scope waits for outstanding I/O (line 15).

use serde::{Deserialize, Serialize};

/// One scheduler command (the subset of DeepSpeed's pipeline
/// instructions that matters on a single GPU with gradient
/// accumulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepCmd {
    /// Load micro-batch `mb` (the boundary command before its forward).
    LoadMicroBatch {
        /// Micro-batch index.
        mb: usize,
    },
    /// Forward pass of micro-batch `mb`.
    ForwardPass {
        /// Micro-batch index.
        mb: usize,
    },
    /// The stage switch between a micro-batch's forward and backward —
    /// the slot DeepSpeed's pipeline schedule fills with activation
    /// sends; Algorithm 1's prefetch hint fires here because the *next*
    /// command is a backward pass.
    StageBoundary,
    /// Backward pass of micro-batch `mb`.
    BackwardPass {
        /// Micro-batch index.
        mb: usize,
    },
    /// Gradient reduction across data-parallel ranks.
    ReduceGrads,
    /// Optimizer update.
    OptimizerStep,
}

impl StepCmd {
    /// Whether this command is a backward pass (Algorithm 1's test).
    pub fn is_backward(self) -> bool {
        matches!(self, StepCmd::BackwardPass { .. })
    }

    /// Whether this is a boundary/communication command after which the
    /// scheduler peeks at the next command (Algorithm 1 line 12 checks
    /// `cmd is communication`).
    pub fn is_boundary(self) -> bool {
        matches!(
            self,
            StepCmd::LoadMicroBatch { .. } | StepCmd::StageBoundary | StepCmd::ReduceGrads
        )
    }
}

/// Builds the single-GPU gradient-accumulation schedule for `m`
/// micro-batches: `load, forward, boundary, backward` per micro-batch,
/// then reduce + optimizer — the command stream the paper's Figure 4
/// walks through for `m = 2`.
pub fn single_gpu_schedule(m: usize) -> Vec<StepCmd> {
    let mut cmds = Vec::with_capacity(4 * m + 2);
    for mb in 0..m.max(1) {
        cmds.push(StepCmd::LoadMicroBatch { mb });
        cmds.push(StepCmd::ForwardPass { mb });
        cmds.push(StepCmd::StageBoundary);
        cmds.push(StepCmd::BackwardPass { mb });
    }
    cmds.push(StepCmd::ReduceGrads);
    cmds.push(StepCmd::OptimizerStep);
    cmds
}

/// Iterates `(cmd, next_cmd)` pairs the way Algorithm 1's loop does.
pub fn with_lookahead(cmds: &[StepCmd]) -> impl Iterator<Item = (StepCmd, Option<StepCmd>)> + '_ {
    cmds.iter()
        .enumerate()
        .map(|(i, c)| (*c, cmds.get(i + 1).copied()))
}

/// Partitions `n` optimizer parameters into `stages` contiguous,
/// disjoint ranges covering `0..n` (the remainder goes to the early
/// stages, mirroring the pipeline's layer split). This is the unit of
/// work of the per-stage optimizer jobs: stage *j* updates exactly
/// `stage_ranges(n, s)[j]`, whether the jobs run inline at the
/// `OptimizerStep` command or overlapped into the next step's forward.
pub fn stage_ranges(n: usize, stages: usize) -> Vec<std::ops::Range<usize>> {
    let stages = stages.clamp(1, n.max(1));
    let per = n / stages;
    let extra = n % stages;
    let mut start = 0;
    (0..stages)
        .map(|s| {
            let len = per + usize::from(s < extra);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shape_matches_figure4() {
        let cmds = single_gpu_schedule(2);
        assert_eq!(
            cmds,
            vec![
                StepCmd::LoadMicroBatch { mb: 0 },
                StepCmd::ForwardPass { mb: 0 },
                StepCmd::StageBoundary,
                StepCmd::BackwardPass { mb: 0 },
                StepCmd::LoadMicroBatch { mb: 1 },
                StepCmd::ForwardPass { mb: 1 },
                StepCmd::StageBoundary,
                StepCmd::BackwardPass { mb: 1 },
                StepCmd::ReduceGrads,
                StepCmd::OptimizerStep,
            ]
        );
    }

    #[test]
    fn lookahead_flags_the_forward_backward_boundary() {
        // Algorithm 1: prefetch fires when a boundary command is followed
        // by a backward pass.
        let cmds = single_gpu_schedule(2);
        let firing: Vec<usize> = with_lookahead(&cmds)
            .enumerate()
            .filter(|(_, (cmd, next))| {
                cmd.is_boundary() && next.map(|n| n.is_backward()).unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        // Exactly once per micro-batch, right after its forward.
        assert_eq!(firing, vec![2, 6]);
    }

    #[test]
    fn zero_micro_batches_still_builds_one() {
        let cmds = single_gpu_schedule(0);
        assert!(cmds.iter().any(|c| c.is_backward()));
    }

    #[test]
    fn stage_ranges_cover_all_params_disjointly() {
        for (n, s) in [(10, 3), (4, 4), (7, 2), (5, 1), (3, 8)] {
            let ranges = stage_ranges(n, s);
            assert_eq!(ranges.len(), s.clamp(1, n));
            let mut covered = Vec::new();
            for r in &ranges {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} s={s}");
        }
    }

    #[test]
    fn stage_ranges_tolerate_degenerate_shapes() {
        assert_eq!(stage_ranges(0, 4), vec![0..0]);
        assert_eq!(stage_ranges(6, 0), vec![0..6]);
    }
}
