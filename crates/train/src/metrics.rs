//! Per-step measurements — the quantities the paper's figures plot.

use serde::{Deserialize, Serialize};
use ssdtrain::OffloadStats;
use ssdtrain_simhw::{AllocatorStats, FootprintPoint};

/// Everything measured during one training step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Strategy label (`keep` / `offload` / `recompute`).
    pub strategy: String,
    /// Model tag, e.g. `"bert-h8192-l4"`.
    pub model: String,
    /// Global batch size (sequences).
    pub batch: usize,
    /// Simulated step time. Forward + backward in the legacy
    /// configuration (the optimizer adds a constant offset in the
    /// paper's setup and is excluded, Section 4.1); once a state class
    /// or the overlapped schedule is enabled, the optimizer's exposed
    /// seconds join the window (see [`StepMetrics::opt_secs`]).
    pub step_secs: f64,
    /// Simulated forward-propagation time.
    pub fwd_secs: f64,
    /// Peak resident activation bytes (Figures 10/11's y-metric).
    pub act_peak_bytes: u64,
    /// Peak total resident bytes (Figure 7).
    pub total_peak_bytes: u64,
    /// Resident activation bytes at the start of backward propagation
    /// (the Figure 7 "beginning of backward" point).
    pub act_at_bwd_start: u64,
    /// The full memory-footprint timeline (Figure 7's curve).
    pub timeline: Vec<FootprintPoint>,
    /// Tensor-cache statistics (zeroed for keep/recompute).
    pub offload: OffloadStats,
    /// Algorithmic FLOPs (forward + backward, recompute excluded).
    pub model_flops: u64,
    /// Seconds spent in blocking tensor-parallel collectives.
    pub comm_secs: f64,
    /// Host bytes written to the offload target this step (SSD wear).
    pub ssd_host_writes: u64,
    /// Caching-allocator model statistics (reserved vs allocated).
    pub alloc: AllocatorStats,
    /// Whether the peak exceeded device memory (a real run would OOM).
    pub oom: bool,
    /// Training loss (`NaN` in symbolic runs).
    pub loss: f32,
    /// Simulated seconds the per-stage optimizer update spent inside the
    /// measured window (inline state loads and stalls; 0 for the legacy
    /// outside-the-window optimizer and for the overlapped schedule).
    #[serde(default)]
    pub opt_secs: f64,
    /// Simulated seconds of the *overlapped* update the forecast forward
    /// window could not hide (the GreedySnake exposure; 0 when every
    /// state load lands before its stage's forward arrival).
    #[serde(default)]
    pub opt_exposed_secs: f64,
}

impl StepMetrics {
    /// The paper's *model throughput* in TFLOP/s: algorithmic FLOPs per
    /// step second (Section 4.3).
    pub fn model_tflops(&self) -> f64 {
        if self.step_secs > 0.0 {
            self.model_flops as f64 / self.step_secs / 1e12
        } else {
            0.0
        }
    }

    /// Activation peak in GiB (convenience for reports).
    pub fn act_peak_gib(&self) -> f64 {
        self.act_peak_bytes as f64 / (1u64 << 30) as f64
    }

    /// Whether offload-path recovery engaged during this step (failed
    /// stores kept resident, retried loads, fallback writes). The
    /// detailed counters live in [`StepMetrics::offload`].
    pub fn degraded(&self) -> bool {
        self.offload.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> StepMetrics {
        StepMetrics {
            strategy: "keep".into(),
            model: "test".into(),
            batch: 1,
            step_secs: 2.0,
            fwd_secs: 0.7,
            act_peak_bytes: 3 << 30,
            total_peak_bytes: 4 << 30,
            act_at_bwd_start: 2 << 30,
            timeline: Vec::new(),
            offload: OffloadStats::default(),
            model_flops: 4_000_000_000_000,
            comm_secs: 0.0,
            ssd_host_writes: 0,
            alloc: AllocatorStats::default(),
            oom: false,
            loss: 1.0,
            opt_secs: 0.0,
            opt_exposed_secs: 0.0,
        }
    }

    #[test]
    fn throughput_is_flops_over_time() {
        assert!((metrics().model_tflops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gib_conversion() {
        assert!((metrics().act_peak_gib() - 3.0).abs() < 1e-9);
    }
}
