//! A *functional* pipeline-parallel trainer: the model's layers are
//! partitioned over `pp` simulated GPUs, micro-batches flow through the
//! non-interleaved 1F1B schedule with real tensors crossing stage
//! boundaries, and gradients flow back stage to stage — so pipelined
//! training can be checked **bit-identical** against single-GPU
//! training, with or without per-stage activation offloading.
//!
//! Each stage owns its own simulated clock, GPU executor and (optional)
//! tensor cache; cross-stage sends synchronise the clocks, so the step's
//! makespan and bubble structure emerge from real execution rather than
//! the closed-form model in [`crate::pipeline`].

use crate::builder::ConfigError;
use crate::error::{PipelineError, StepError};
use crate::executor::GpuExecutor;
use crate::pipeline::{one_f1b_commands, StageCmd};
use crate::schedule::stage_ranges;
use ssdtrain::{CpuTarget, IoEngine, TensorCache, TensorCacheConfig, TraceCategory, TraceSink};
use ssdtrain_autograd::{Graph, Phase, Value};
use ssdtrain_models::{Arch, Batch, BertModel, GptModel, ModelConfig, Recompute, StagedModel};
use ssdtrain_simhw::{GpuSpec, SimClock, SimTime};
use ssdtrain_tensor::{Device, MemClass, Tensor};
use std::sync::Arc;

/// Configuration of the functional pipeline trainer.
#[derive(Debug, Clone)]
pub struct PipelineExecConfig {
    /// The GPT model configuration (layers are split evenly over
    /// stages; the remainder goes to the early stages).
    pub model: ModelConfig,
    /// Pipeline stages.
    pub pp: usize,
    /// Micro-batches per step.
    pub micro_batches: usize,
    /// Sequences per micro-batch.
    pub micro_batch_size: usize,
    /// Per-stage activation offloading (CPU-pool target, so the run
    /// stays self-contained).
    pub offload: bool,
    /// Seconds to move one stage boundary activation between GPUs.
    pub send_secs: f64,
    /// Seed for weights and data.
    pub seed: u64,
}

struct Stage {
    graph: Graph,
    clock: SimClock,
    cache: Option<Arc<TensorCache>>,
    layer_range: std::ops::Range<usize>,
    first: bool,
    last: bool,
}

/// One step's measurements from the functional pipeline.
#[derive(Debug, Clone)]
pub struct PipelineStepReport {
    /// Mean loss over the step's micro-batches.
    pub loss: f32,
    /// Step makespan: the latest stage-0 backward completion.
    pub step_secs: f64,
    /// Idle fraction versus the bubble-free ideal on one stage.
    pub bubble_fraction: f64,
}

/// The functional pipeline trainer.
pub struct PipelineExec {
    cfg: PipelineExecConfig,
    model: Box<dyn StagedModel>,
    device: Device,
    stages: Vec<Stage>,
    optimizer: ssdtrain_autograd::optim::Sgd,
    trace: TraceSink,
    step_idx: u64,
}

impl PipelineExec {
    /// Builds the trainer: one shared model, `pp` stages with disjoint
    /// layer slices.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when `pp` is zero or exceeds the layer
    /// count, or when the architecture cannot be pipelined (T5's
    /// cross-attention broadcasts the encoder output to every decoder
    /// stage, so only GPT and BERT are supported).
    pub fn new(cfg: PipelineExecConfig) -> Result<PipelineExec, ConfigError> {
        if cfg.pp < 1 {
            return Err(ConfigError::ZeroStages);
        }
        if cfg.pp > cfg.model.layers {
            return Err(ConfigError::StagesExceedLayers {
                pp: cfg.pp,
                layers: cfg.model.layers,
            });
        }
        let device = Device::cpu();
        let model: Box<dyn StagedModel> = match cfg.model.arch {
            Arch::Gpt => Box::new(GptModel::new(&cfg.model, &device, cfg.seed)),
            Arch::Bert => Box::new(BertModel::new(&cfg.model, &device, cfg.seed)),
            Arch::T5 => return Err(ConfigError::UnsupportedArch { arch: Arch::T5 }),
        };
        let per = cfg.model.layers / cfg.pp;
        let extra = cfg.model.layers % cfg.pp;
        let mut start = 0;
        let stages = (0..cfg.pp)
            .map(|s| {
                let len = per + usize::from(s < extra);
                let range = start..start + len;
                start += len;
                let clock = SimClock::new();
                let graph = Graph::new(&device, cfg.seed ^ (s as u64) << 8);
                graph.set_observer(Arc::new(GpuExecutor::new(
                    clock.clone(),
                    GpuSpec::a100_pcie_40gb(),
                    250e9,
                    1,
                )));
                let cache = cfg.offload.then(|| {
                    let io = IoEngine::new(clock.clone(), 25e9, 25e9);
                    let mem = Arc::new(ssdtrain_simhw::GpuMemory::new(clock.clone(), 1 << 40));
                    let cache = TensorCache::new(
                        TensorCacheConfig {
                            min_offload_numel: 0,
                            adaptive: false,
                            ..TensorCacheConfig::default()
                        },
                        Arc::new(CpuTarget::new(1 << 40)),
                        io,
                        mem,
                    );
                    cache.install(&graph);
                    for p in model.stage_parameters() {
                        cache.register_parameter(&p.tensor());
                    }
                    cache
                });
                Stage {
                    graph,
                    clock,
                    cache,
                    layer_range: range,
                    first: s == 0,
                    last: s == cfg.pp - 1,
                }
            })
            .collect();
        let optimizer = ssdtrain_autograd::optim::Sgd::new(model.stage_parameters(), 0.05);
        Ok(PipelineExec {
            cfg,
            model,
            device,
            stages,
            optimizer,
            trace: TraceSink::disabled(),
            step_idx: 0,
        })
    }

    /// Routes the trainer's events into `sink`: per-stage forward and
    /// backward spans (named `s{stage}.forward.mb{mb}` etc.) plus the
    /// tensor-lifecycle events of every stage's offload cache.
    pub fn set_trace(&mut self, sink: TraceSink) {
        for stage in &self.stages {
            if let Some(cache) = &stage.cache {
                cache.set_trace(sink.clone());
            }
        }
        self.trace = sink;
    }

    /// Runs one pipelined training step (forwards + backwards of every
    /// micro-batch under 1F1B, then one optimizer update).
    ///
    /// # Errors
    /// Returns [`PipelineError::Offload`] when any stage's offload
    /// cache reported a failure recovery could not absorb (the
    /// optimizer update is skipped and gradients are cleared), and
    /// [`PipelineError::Schedule`] when the 1F1B schedule handed a
    /// stage a micro-batch whose inputs were never produced.
    pub fn run_step(&mut self) -> Result<PipelineStepReport, PipelineError> {
        let pp = self.cfg.pp;
        let m = self.cfg.micro_batches.max(1);
        self.trace.next_step();
        self.trace
            .instant(TraceCategory::Session, "step.begin", SimTime::ZERO);
        for stage in &self.stages {
            stage.clock.reset();
            if let Some(c) = &stage.cache {
                c.begin_step();
            }
            stage.graph.reset_tape();
            stage.graph.set_phase(Phase::Forward);
        }

        let batches: Vec<Batch> = (0..m)
            .map(|mb| {
                Batch::synthetic(
                    &self.cfg.model,
                    self.cfg.micro_batch_size,
                    self.cfg
                        .seed
                        .wrapping_mul(7919)
                        .wrapping_add(self.step_idx * 64 + mb as u64),
                    &self.device,
                )
            })
            .collect();

        // Per-(stage, mb) completion times, boundary tensors, and output
        // values for backward.
        let nan = f64::NAN;
        let mut f_done = vec![vec![nan; m]; pp];
        let mut b_done = vec![vec![nan; m]; pp];
        let mut boundary: Vec<Vec<Option<Tensor>>> = vec![vec![None; m]; pp];
        let mut out_vals: Vec<Vec<Option<Value>>> = vec![vec![None; m]; pp];
        let mut in_vals: Vec<Vec<Option<Value>>> = vec![vec![None; m]; pp];
        let mut grads_back: Vec<Vec<Option<Tensor>>> = vec![vec![None; m]; pp];
        let mut losses = Vec::new();

        let cmds: Vec<Vec<StageCmd>> = (0..pp).map(|s| one_f1b_commands(pp, s, m)).collect();
        let mut cursor = vec![0usize; pp];
        let total: usize = cmds.iter().map(|c| c.len()).sum();
        let mut done = 0;
        while done < total {
            let mut progressed = false;
            for s in 0..pp {
                while cursor[s] < cmds[s].len() {
                    let cmd = cmds[s][cursor[s]];
                    match cmd {
                        StageCmd::Forward { mb } => {
                            let ready = if s == 0 {
                                Some(0.0)
                            } else if f_done[s - 1][mb].is_nan() {
                                None
                            } else {
                                Some(f_done[s - 1][mb] + self.cfg.send_secs)
                            };
                            let Some(ready) = ready else { break };
                            self.exec_forward(
                                s,
                                mb,
                                ready,
                                &batches,
                                &mut boundary,
                                &mut out_vals,
                                &mut in_vals,
                                &mut losses,
                            )?;
                            f_done[s][mb] = self.stages[s].clock.now().as_secs();
                        }
                        StageCmd::Backward { mb } => {
                            let ready = if s == pp - 1 {
                                if f_done[s][mb].is_nan() {
                                    None
                                } else {
                                    Some(f_done[s][mb])
                                }
                            } else if b_done[s + 1][mb].is_nan() {
                                None
                            } else {
                                Some(b_done[s + 1][mb] + self.cfg.send_secs)
                            };
                            let Some(ready) = ready else { break };
                            self.exec_backward(
                                s,
                                mb,
                                ready,
                                &mut out_vals,
                                &mut in_vals,
                                &mut grads_back,
                            )?;
                            b_done[s][mb] = self.stages[s].clock.now().as_secs();
                        }
                    }
                    cursor[s] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            assert!(progressed, "functional 1F1B deadlocked (bug)");
        }

        let mut step_error = None;
        for stage in &self.stages {
            if let Some(c) = &stage.cache {
                c.wait_io();
                // The stage's store queue must land before its step can
                // end; whatever the backward passes did not hide
                // surfaces on this stage's clock (and so in the
                // makespan below).
                c.drain_stores();
                c.flush();
                if step_error.is_none() {
                    step_error = c.take_error();
                }
            }
            stage.graph.reset_tape();
        }
        if let Some(error) = step_error {
            self.optimizer.zero_grad();
            self.step_idx += 1;
            return Err(StepError {
                error,
                metrics: None,
            }
            .into());
        }
        // The update runs as one per-stage job per pipeline stage, in
        // 1F1B completion order (the last stage's backward drains
        // first). The ranges are disjoint and cover every parameter, so
        // the numerics match a monolithic `step()` exactly — this is
        // the same job shape the overlapped single-GPU engine schedules.
        for range in stage_ranges(self.optimizer.len(), pp).into_iter().rev() {
            self.optimizer.step_range(range);
        }
        self.optimizer.zero_grad();
        self.step_idx += 1;

        // Makespan: latest stage-0 backward completion, pushed out by
        // any stage whose store drain outlived its compute.
        let step_secs = self
            .stages
            .iter()
            .map(|s| s.clock.now().as_secs())
            .fold(b_done[0].iter().fold(0.0f64, |a, b| a.max(*b)), f64::max);
        self.trace.instant(
            TraceCategory::Session,
            "step.end",
            SimTime::from_secs(step_secs),
        );
        // Ideal: one stage's compute for all micro-batches back to back.
        let stage0_busy: f64 = {
            // Approximate with measured makespan of pp=1 equivalence:
            // sum of per-mb stage-0 forward+backward durations is not
            // tracked per op; use the bubble-free bound m/(m+pp-1).
            step_secs * m as f64 / (m + pp - 1) as f64
        };
        Ok(PipelineStepReport {
            loss: losses.iter().copied().sum::<f32>() / losses.len().max(1) as f32,
            step_secs,
            bubble_fraction: 1.0 - stage0_busy / step_secs.max(f64::MIN_POSITIVE),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_forward(
        &self,
        s: usize,
        mb: usize,
        ready: f64,
        batches: &[Batch],
        boundary: &mut [Vec<Option<Tensor>>],
        out_vals: &mut [Vec<Option<Value>>],
        in_vals: &mut [Vec<Option<Value>>],
        losses: &mut Vec<f32>,
    ) -> Result<(), PipelineError> {
        let stage = &self.stages[s];
        stage.clock.advance_to(SimTime::from_secs(ready));
        stage.graph.set_micro_batch(mb);
        stage.graph.set_phase(Phase::Forward);
        if let Some(c) = &stage.cache {
            c.set_micro_batch(mb);
        }
        let input = if stage.first {
            self.model.forward_embed(&stage.graph, &batches[mb])
        } else {
            let t = boundary[s - 1][mb].take().ok_or(PipelineError::Schedule {
                stage: s,
                micro_batch: mb,
                what: "the previous stage's activation",
            })?;
            let v = stage.graph.external(0, t);
            in_vals[s][mb] = Some(v.clone());
            v
        };
        let out = self.model.forward_layers(
            &stage.graph,
            &input,
            stage.layer_range.clone(),
            Recompute::None,
        );
        if stage.last {
            let loss = self
                .model
                .forward_head_loss(&stage.graph, &out, &batches[mb]);
            if loss.tensor().has_data() {
                // ssdtrain-lint: allow(panic-free-hot-path): guarded by the
                // `has_data` check one line up; `item` only panics without data
                losses.push(loss.tensor().item());
            }
            out_vals[s][mb] = Some(loss);
        } else {
            boundary[s][mb] = Some(out.tensor().clone());
            out_vals[s][mb] = Some(out);
        }
        if let Some(c) = &stage.cache {
            // Figure 4 ④: switching toward this micro-batch's backward.
            c.prefetch_last_module();
        }
        self.trace.span(
            TraceCategory::Stage,
            format!("s{s}.forward.mb{mb}"),
            SimTime::from_secs(ready),
            stage.clock.now(),
        );
        Ok(())
    }

    fn exec_backward(
        &self,
        s: usize,
        mb: usize,
        ready: f64,
        out_vals: &mut [Vec<Option<Value>>],
        in_vals: &mut [Vec<Option<Value>>],
        grads_back: &mut [Vec<Option<Tensor>>],
    ) -> Result<(), PipelineError> {
        let stage = &self.stages[s];
        stage.clock.advance_to(SimTime::from_secs(ready));
        stage.graph.set_phase(Phase::Backward);
        let out = out_vals[s][mb].take().ok_or(PipelineError::Schedule {
            stage: s,
            micro_batch: mb,
            what: "this stage's forward output",
        })?;
        let dev = &self.device;
        let seed_grad = if stage.last {
            dev.with_class(MemClass::Workspace, || {
                if out.tensor().has_data() {
                    Tensor::ones([1], dev)
                } else {
                    Tensor::symbolic([1], dev)
                }
            })
        } else {
            grads_back[s + 1][mb]
                .take()
                .ok_or(PipelineError::Schedule {
                    stage: s,
                    micro_batch: mb,
                    what: "the next stage's input gradient",
                })?
        };
        let n_ext = usize::from(!stage.first);
        // ssdtrain-lint: allow(panic-free-hot-path): saved values are packed
        // and unpacked under the same hooks configuration, so an opaque pack
        // without unpack hooks (the panic in `backward_from`) cannot occur
        let ext = stage.graph.backward_from(&[out], vec![seed_grad], n_ext);
        if !stage.first {
            grads_back[s][mb] = Some(ext.into_iter().next().flatten().ok_or(
                PipelineError::Schedule {
                    stage: s,
                    micro_batch: mb,
                    what: "the gradient for the stage input",
                },
            )?);
            // The input value's tensor can now be dropped.
            in_vals[s][mb] = None;
        }
        if let Some(c) = &stage.cache {
            c.wait_io();
        }
        self.trace.span(
            TraceCategory::Stage,
            format!("s{s}.backward.mb{mb}"),
            SimTime::from_secs(ready),
            stage.clock.now(),
        );
        Ok(())
    }
}

impl std::fmt::Debug for PipelineExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineExec")
            .field("pp", &self.cfg.pp)
            .field("micro_batches", &self.cfg.micro_batches)
            .field("offload", &self.cfg.offload)
            .field("steps_run", &self.step_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_autograd::ops;

    fn config(pp: usize, m: usize, offload: bool) -> PipelineExecConfig {
        PipelineExecConfig {
            model: ModelConfig::tiny_gpt(),
            pp,
            micro_batches: m,
            micro_batch_size: 2,
            offload,
            send_secs: 0.001,
            seed: 77,
        }
    }

    /// Builds a trainer from a config the test knows is valid.
    fn mk(cfg: PipelineExecConfig) -> PipelineExec {
        PipelineExec::new(cfg).expect("valid test config") // ssdtrain-lint: allow(panic-free-hot-path): test constructor; an invalid fixture should abort the test
    }

    /// Runs one step the test expects to succeed.
    fn step(t: &mut PipelineExec) -> PipelineStepReport {
        t.run_step().expect("step") // ssdtrain-lint: allow(panic-free-hot-path): test step; an unexpected failure should abort the test
    }

    /// Ground truth: the same schedule run on a single stage.
    fn single_gpu_losses(m: usize, steps: usize) -> Vec<f32> {
        let mut t = mk(config(1, m, false));
        (0..steps).map(|_| step(&mut t).loss).collect()
    }

    #[test]
    fn two_stage_pipeline_matches_single_gpu_bitwise() {
        let single = single_gpu_losses(2, 3);
        let mut piped = mk(config(2, 2, false));
        let piped: Vec<f32> = (0..3).map(|_| step(&mut piped).loss).collect();
        assert_eq!(single, piped, "pipelining must not change numerics");
    }

    #[test]
    fn offloaded_pipeline_matches_too() {
        let single = single_gpu_losses(2, 2);
        let mut piped = mk(config(2, 2, true));
        let piped: Vec<f32> = (0..2).map(|_| step(&mut piped).loss).collect();
        assert_eq!(
            single, piped,
            "per-stage offloading must not change numerics"
        );
    }

    #[test]
    fn gradients_match_a_monolithic_graph() {
        // Manual cross-check: pipeline gradients equal those of the
        // whole model trained on the concatenated micro-batches.
        let cfg = config(2, 2, false);
        let device = Device::cpu();
        let reference = GptModel::new(&cfg.model, &device, cfg.seed);
        // Same synthetic batches the trainer draws in step 0.
        let batches: Vec<Batch> = (0..2)
            .map(|mb| {
                Batch::synthetic(
                    &cfg.model,
                    cfg.micro_batch_size,
                    cfg.seed.wrapping_mul(7919).wrapping_add(mb as u64),
                    &device,
                )
            })
            .collect();
        for b in &batches {
            let g = Graph::new(&device, 1);
            let loss = reference.forward_loss(&g, b, Recompute::None);
            g.backward(&loss);
        }
        let want: Vec<Vec<f32>> = reference
            .parameters()
            .iter()
            .map(|p| p.grad().expect("grad").to_vec()) // ssdtrain-lint: allow(panic-free-hot-path): test assertion on the reference model's gradients
            .collect();

        let mut piped = mk(cfg);
        // Peek at gradients before the optimizer consumes them: run the
        // schedule manually by cloning internals is overkill — instead
        // compare the *post-step weights*, which are a bijection of the
        // gradients under SGD.
        step(&mut piped);
        let got_weights: Vec<Vec<f32>> = piped
            .model
            .stage_parameters()
            .iter()
            .map(|p| p.tensor().to_vec())
            .collect();

        let mut opt = ssdtrain_autograd::optim::Sgd::new(reference.parameters(), 0.05);
        opt.step();
        let want_weights: Vec<Vec<f32>> = reference
            .parameters()
            .iter()
            .map(|p| p.tensor().to_vec())
            .collect();
        assert_eq!(want_weights, got_weights);
        let _ = want;
    }

    #[test]
    fn bert_pipeline_matches_single_gpu_too() {
        let mut cfg = config(2, 2, false);
        cfg.model = ModelConfig::tiny_bert();
        let mut single = mk(PipelineExecConfig {
            pp: 1,
            ..cfg.clone()
        });
        let mut piped = mk(cfg);
        for _ in 0..2 {
            assert_eq!(step(&mut single).loss, step(&mut piped).loss);
        }
    }

    #[test]
    fn t5_pipeline_is_rejected_with_a_typed_error() {
        let mut cfg = config(2, 2, false);
        cfg.model = ModelConfig::tiny_t5();
        match PipelineExec::new(cfg) {
            Err(ConfigError::UnsupportedArch { arch: Arch::T5 }) => {}
            other => panic!("expected UnsupportedArch, got {other:?}"), // ssdtrain-lint: allow(panic-free-hot-path): test assertion on the rejection path
        }
    }

    #[test]
    fn zero_and_oversized_stage_counts_are_rejected() {
        assert!(matches!(
            PipelineExec::new(config(0, 2, false)),
            Err(ConfigError::ZeroStages)
        ));
        let mut cfg = config(4, 2, false);
        cfg.model.layers = 2;
        assert!(matches!(
            PipelineExec::new(cfg),
            Err(ConfigError::StagesExceedLayers { pp: 4, layers: 2 })
        ));
    }

    #[test]
    fn four_stage_four_layer_split_is_one_layer_each() {
        let mut cfg = config(4, 4, false);
        cfg.model.layers = 4;
        let t = mk(cfg);
        let ranges: Vec<_> = t.stages.iter().map(|s| s.layer_range.clone()).collect();
        assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..4]);
        assert!(t.stages[0].first && t.stages[3].last);
    }

    #[test]
    fn makespan_shrinks_per_micro_batch_as_m_grows() {
        // Amortised step time per micro-batch falls with more
        // micro-batches (the bubble shrinks) in the *functional* run.
        let mut a = mk(config(2, 2, false));
        let mut b = mk(config(2, 8, false));
        let ra = step(&mut a);
        let rb = step(&mut b);
        let per_a = ra.step_secs / 2.0;
        let per_b = rb.step_secs / 8.0;
        assert!(per_b < per_a, "{per_b} vs {per_a}");
        assert!(rb.bubble_fraction < ra.bubble_fraction + 1e-9);
    }

    #[test]
    fn losses_stay_finite_and_improve_on_repeated_data() {
        let mut t = mk(PipelineExecConfig {
            seed: 5,
            ..config(2, 2, false)
        });
        let first = step(&mut t).loss;
        let mut last = first;
        for _ in 0..5 {
            last = step(&mut t).loss;
        }
        assert!(first.is_finite() && last.is_finite());
    }

    #[test]
    fn external_gradient_path_is_exercised() {
        // Sanity on the graph primitive the trainer relies on: gradients
        // for external inputs propagate across backward_from.
        let device = Device::cpu();
        let g = Graph::new(&device, 1);
        let x = g.external(0, Tensor::from_vec(vec![2.0], [1, 1], &device));
        let y = ops::scale(&g, &x, 3.0);
        let grads = g.backward_from(&[y], vec![Tensor::ones([1, 1], &device)], 1);
        assert_eq!(grads[0].as_ref().unwrap().to_vec(), vec![3.0]); // ssdtrain-lint: allow(panic-free-hot-path): test assertion on the sanity-check graph
    }
}
