//! # ssdtrain-train
//!
//! The training-step engine: runs one (micro-batched) training step of a
//! GPT/BERT/T5 model on the simulated hardware under one of the three
//! ROK placement strategies — **keep**, **offload** (SSDTrain) or
//! **recompute** — and reports the metrics the paper's evaluation plots:
//! step time, activation memory peak, memory-footprint timeline,
//! offloaded bytes and exposed I/O stall.
//!
//! The scheduler mirrors the hinted DeepSpeed/Megatron schedule of the
//! paper's Algorithm 1: micro-batch switches, the
//! `prefetch_last_module()` hint at the forward→backward transition, and
//! `wait_io()` after each backward pass.
//!
//! ```
//! use ssdtrain_train::prelude::*;
//!
//! let cfg = SessionConfig::builder()
//!     .model(ModelConfig::tiny_gpt())
//!     .batch_size(2)
//!     .strategy(PlacementStrategy::Offload)
//!     .cache(TensorCacheConfig::offload_everything())
//!     .seed(1)
//!     .build()
//!     .expect("valid config");
//! let mut session = TrainSession::new(cfg).expect("session");
//! let metrics = session.run_step().expect("healthy device");
//! assert!(metrics.step_secs > 0.0);
//! ```
//!
//! Step APIs return `Result`: when an injected or real offload failure
//! cannot be absorbed by the configured [`ssdtrain::RecoveryPolicy`],
//! the step surfaces a [`StepError`] carrying the degraded step's
//! metrics instead of aborting the process.

pub mod builder;
pub mod error;
pub mod executor;
pub mod metrics;
pub mod opt_engine;
pub mod pipeline;
pub mod pipeline_exec;
pub mod prelude;
pub mod schedule;
pub mod session;

// The crate root re-exports exactly the prelude — one list to maintain.
pub use prelude::*;
