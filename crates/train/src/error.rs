//! Step-level error reporting for degraded-mode training.

use crate::metrics::StepMetrics;
use ssdtrain::OffloadError;
use std::fmt;

/// A training step that could not complete cleanly: the offload stack
/// reported a failure its recovery policy could not absorb (a store
/// failure under [`ssdtrain::RecoveryPolicy::FailStep`], or a load that
/// stayed failed after retries under any policy).
///
/// The step itself ran to completion — the cache keeps the graph
/// executable even when activations are lost — so when the failing API
/// produces metrics they are attached for diagnosis: the degraded-mode
/// counters ([`ssdtrain::OffloadStats::store_failures`],
/// `kept_resident_bytes`, …) tell the training loop how bad it was.
#[derive(Debug)]
pub struct StepError {
    /// The first offload failure recovery could not absorb.
    pub error: OffloadError,
    /// Metrics of the degraded step, when the failing API measures one
    /// (`run_step` attaches them; `profile_step` does not).
    pub metrics: Option<Box<StepMetrics>>,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "training step failed: {}", self.error)
    }
}

impl std::error::Error for StepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A functional-pipeline step that failed.
///
/// Either the offload stack degraded past recovery (the common case —
/// a [`StepError`], same as the closed-form session reports) or the
/// 1F1B schedule itself handed a stage a micro-batch whose inputs were
/// never produced, which means the schedule generator and the executor
/// disagree and the step's numerics cannot be trusted.
#[derive(Debug)]
pub enum PipelineError {
    /// The offload stack reported a failure recovery could not absorb.
    Offload(StepError),
    /// A stage was scheduled before its inputs existed: the named
    /// artifact was missing when `(stage, micro_batch)` ran.
    Schedule {
        /// Pipeline stage that could not run.
        stage: usize,
        /// Micro-batch being processed.
        micro_batch: usize,
        /// Which artifact was missing (activation, gradient, …).
        what: &'static str,
    },
}

impl From<StepError> for PipelineError {
    fn from(error: StepError) -> PipelineError {
        PipelineError::Offload(error)
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Offload(e) => e.fmt(f),
            PipelineError::Schedule {
                stage,
                micro_batch,
                what,
            } => write!(
                f,
                "pipeline schedule bug: stage {stage} ran micro-batch {micro_batch} \
                 but {what} was missing"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Offload(e) => Some(e),
            PipelineError::Schedule { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain::id::TensorKey;

    #[test]
    fn display_carries_the_offload_error() {
        let e = StepError {
            error: OffloadError::Store {
                key: TensorKey {
                    stamp: 1,
                    shape: vec![2],
                },
                bytes: 8,
                target: "ssd".into(),
                source: std::io::Error::other("injected"),
            },
            metrics: None,
        };
        assert!(e.to_string().contains("injected"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
