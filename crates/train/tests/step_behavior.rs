//! End-to-end step behaviour across the three ROK strategies, at both
//! functional (numeric) and paper (symbolic) scale.

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_train::{SessionConfig, TrainSession};

fn numeric_session(strategy: PlacementStrategy, seed: u64) -> TrainSession {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .strategy(strategy)
        .cache(TensorCacheConfig {
            min_offload_numel: 0,
            adaptive: false,
            ..TensorCacheConfig::default()
        })
        .seed(seed)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session")
}

fn paper_session(
    strategy: PlacementStrategy,
    hidden: usize,
    layers: usize,
    batch: usize,
) -> TrainSession {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(Arch::Bert, hidden, layers).with_tp(2))
        .batch_size(batch)
        .strategy(strategy)
        .symbolic(true)
        .seed(3)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session")
}

// ---------------------------------------------------------------------
// Functional equivalence across strategies
// ---------------------------------------------------------------------

#[test]
fn three_strategies_produce_identical_losses() {
    let mut keep = numeric_session(PlacementStrategy::Keep, 5);
    let mut off = numeric_session(PlacementStrategy::Offload, 5);
    let mut rec = numeric_session(PlacementStrategy::Recompute, 5);
    for step in 0..3 {
        let lk = keep.run_step().expect("step").loss;
        let lo = off.run_step().expect("step").loss;
        let lr = rec.run_step().expect("step").loss;
        assert_eq!(lk, lo, "step {step}: keep vs offload");
        assert_eq!(lk, lr, "step {step}: keep vs recompute");
    }
}

#[test]
fn offload_session_exercises_the_cache() {
    let mut off = numeric_session(PlacementStrategy::Offload, 7);
    let m = off.run_step().expect("step");
    assert!(m.offload.store_jobs > 0, "{:?}", m.offload);
    assert!(m.loss.is_finite());
    // Losses keep improving over steps on the same data distribution.
    let m5 = (0..5)
        .map(|_| off.run_step().expect("step").loss)
        .last()
        .unwrap();
    assert!(m5.is_finite());
}

#[test]
fn micro_batches_accumulate_gradients() {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(4)
        .micro_batches(2)
        .cache(TensorCacheConfig {
            min_offload_numel: 0,
            adaptive: false,
            ..TensorCacheConfig::default()
        })
        .seed(11)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let m = s.run_step().expect("step");
    assert!(m.loss.is_finite());
    assert!(m.offload.store_jobs > 0);
}

// ---------------------------------------------------------------------
// Paper-scale timing and memory (symbolic)
// ---------------------------------------------------------------------

#[test]
fn offload_matches_keep_step_time_and_cuts_activation_peak() {
    // The paper's Q1/Q2 (Figure 10): with adaptive offloading the step
    // time is within noise of keeping activations resident, while the
    // activation peak drops by roughly 28-47%.
    let mut keep = paper_session(PlacementStrategy::Keep, 8192, 4, 16);
    let mk = keep.run_step().expect("step");

    let mut off = paper_session(PlacementStrategy::Offload, 8192, 4, 16);
    let _ = off.profile_step().expect("profile step");
    let mo = off.run_step().expect("step");

    let overhead = mo.step_secs / mk.step_secs - 1.0;
    assert!(
        overhead.abs() < 0.02,
        "offload overhead {:.2}% (keep {:.4}s vs offload {:.4}s, stall {:.4}s)",
        overhead * 100.0,
        mk.step_secs,
        mo.step_secs,
        mo.offload.stall_secs,
    );
    let reduction = 1.0 - mo.act_peak_bytes as f64 / mk.act_peak_bytes as f64;
    assert!(
        reduction > 0.20,
        "activation peak reduction {:.1}% (keep {:.2} GiB, offload {:.2} GiB)",
        reduction * 100.0,
        mk.act_peak_gib(),
        mo.act_peak_gib(),
    );
}

#[test]
fn recompute_is_slower_but_smaller_than_keep() {
    let mut keep = paper_session(PlacementStrategy::Keep, 8192, 4, 16);
    let mk = keep.run_step().expect("step");
    let mut rec = paper_session(PlacementStrategy::Recompute, 8192, 4, 16);
    let mr = rec.run_step().expect("step");
    assert!(
        mr.step_secs > mk.step_secs * 1.15,
        "recompute {:.4}s vs keep {:.4}s",
        mr.step_secs,
        mk.step_secs
    );
    assert!(
        mr.act_peak_bytes < mk.act_peak_bytes,
        "recompute peak {} vs keep {}",
        mr.act_peak_bytes,
        mk.act_peak_bytes
    );
    // Model throughput counts algorithmic FLOPs only, so recompute's
    // extra forward lowers it.
    assert!(mr.model_tflops() < mk.model_tflops() * 0.9);
}

#[test]
fn rok_ordering_holds_at_paper_shape() {
    // Figure 11's qualitative shape: offload matches keep's throughput
    // with the lowest activation peak; recompute sits below keep in
    // throughput.
    let run = |strategy| {
        let mut s = paper_session(strategy, 12288, 3, 16);
        if strategy == PlacementStrategy::Offload {
            let _ = s.profile_step().expect("profile step");
        }
        s.run_step().expect("step")
    };
    let keep = run(PlacementStrategy::Keep);
    let off = run(PlacementStrategy::Offload);
    let rec = run(PlacementStrategy::Recompute);

    // Offload roughly halves keep's peak (the paper's "double the batch
    // size with the same activations memory budget").
    assert!(
        (off.act_peak_bytes as f64) < 0.60 * keep.act_peak_bytes as f64,
        "offload {} vs keep {}",
        off.act_peak_bytes,
        keep.act_peak_bytes
    );
    // Offload's peak sits in recompute's neighbourhood (the paper
    // measures it strictly below; our idealised recompute — no allocator
    // fragmentation — lands within ~45%, see EXPERIMENTS.md).
    assert!(
        (off.act_peak_bytes as f64) < 1.45 * rec.act_peak_bytes as f64,
        "offload {} vs recompute {}",
        off.act_peak_bytes,
        rec.act_peak_bytes
    );
    assert!(
        rec.act_peak_bytes < keep.act_peak_bytes,
        "recompute vs keep peak"
    );
    let thr_ratio = off.model_tflops() / keep.model_tflops();
    assert!(
        (thr_ratio - 1.0).abs() < 0.02,
        "offload/keep throughput {thr_ratio}"
    );
    assert!(rec.model_tflops() < keep.model_tflops());
}

#[test]
fn memory_footprint_peaks_at_backward_start_without_offload() {
    // Figure 7's black curve: without offloading, the activation curve
    // peaks exactly when backward begins.
    let mut keep = paper_session(PlacementStrategy::Keep, 8192, 4, 16);
    let m = keep.run_step().expect("step");
    assert!(
        m.act_at_bwd_start as f64 >= 0.98 * m.act_peak_bytes as f64,
        "at bwd start {} vs peak {}",
        m.act_at_bwd_start,
        m.act_peak_bytes
    );
    // With offloading, the level at backward start is far below keep's.
    let mut off = paper_session(PlacementStrategy::Offload, 8192, 4, 16);
    let _ = off.profile_step().expect("profile step");
    let mo = off.run_step().expect("step");
    assert!(
        mo.act_at_bwd_start < m.act_at_bwd_start,
        "offload start-of-backward {} vs keep {}",
        mo.act_at_bwd_start,
        m.act_at_bwd_start
    );
}

#[test]
fn offload_io_is_fully_overlapped_at_paper_scale() {
    let mut off = paper_session(PlacementStrategy::Offload, 8192, 4, 16);
    let _ = off.profile_step().expect("profile step");
    let m = off.run_step().expect("step");
    assert!(
        m.offload.stall_secs < 0.01 * m.step_secs,
        "exposed I/O {:.6}s in a {:.4}s step",
        m.offload.stall_secs,
        m.step_secs
    );
    assert!(m.offload.offloaded_bytes > 0);
}

#[test]
fn t5_and_gpt_paper_shapes_run_symbolically() {
    for arch in [Arch::Gpt, Arch::T5] {
        let cfg = SessionConfig::builder()
            .model(ModelConfig::paper_scale(arch, 2048, 2).with_tp(2))
            .batch_size(4)
            .symbolic(true)
            .seed(9)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        let m = s.run_step().expect("step");
        assert!(m.step_secs > 0.0, "{arch}");
        assert!(m.offload.offloaded_bytes > 0, "{arch}");
    }
}

// ---------------------------------------------------------------------
// Hybrid recompute + offload (the ROK interior)
// ---------------------------------------------------------------------

#[test]
fn hybrid_strategy_is_numerically_identical_too() {
    let mut keep = numeric_session(PlacementStrategy::Keep, 23);
    let mut hybrid = numeric_session(
        PlacementStrategy::Hybrid {
            recompute_layers: 1,
        },
        23,
    );
    for step in 0..3 {
        let lk = keep.run_step().expect("step").loss;
        let lh = hybrid.run_step().expect("step").loss;
        assert_eq!(lk, lh, "step {step}");
    }
}

#[test]
fn hybrid_interpolates_between_offload_and_recompute() {
    // Recomputing some layers trades a little throughput for offload
    // traffic: hybrid must offload less than pure offload, run slower
    // than it, and faster than full recomputation — all without exposing
    // I/O.
    let run = |strategy: PlacementStrategy| {
        let mut s = paper_session(strategy, 8192, 4, 16);
        if strategy.uses_cache() {
            let _ = s.profile_step().expect("profile step");
        }
        s.run_step().expect("step")
    };
    let off = run(PlacementStrategy::Offload);
    let hyb = run(PlacementStrategy::Hybrid {
        recompute_layers: 2,
    });
    let rec = run(PlacementStrategy::Recompute);

    assert!(
        hyb.offload.stall_secs < 0.01 * hyb.step_secs,
        "{:?}",
        hyb.offload
    );
    assert!(
        hyb.offload.offloaded_bytes < off.offload.offloaded_bytes,
        "hybrid offloads less: {} vs {}",
        hyb.offload.offloaded_bytes,
        off.offload.offloaded_bytes
    );
    assert!(hyb.offload.offloaded_bytes > 0, "but still offloads");
    assert!(
        off.step_secs < hyb.step_secs && hyb.step_secs < rec.step_secs,
        "step times: offload {:.3} < hybrid {:.3} < recompute {:.3}",
        off.step_secs,
        hyb.step_secs,
        rec.step_secs
    );
    // Recomputed activations are kept in GPU memory by the cache
    // (Algorithm 2 line 15), not re-offloaded during backward.
    assert!(hyb.offload.kept > 0, "{:?}", hyb.offload);
}

#[test]
fn unfused_attention_offload_is_also_bit_identical() {
    // The pre-FlashAttention operator chain saves the S x S softmax
    // output; offloading those large probabilities must round-trip
    // exactly too (Section 4.3's selective-recompute discussion).
    let mk = |strategy: PlacementStrategy| -> Vec<f32> {
        let mut model = ModelConfig::tiny_gpt();
        model.fused_attention = false;
        let cfg = SessionConfig::builder()
            .model(model)
            .batch_size(2)
            .strategy(strategy)
            .cache(TensorCacheConfig {
                min_offload_numel: 0,
                adaptive: false,
                ..TensorCacheConfig::default()
            })
            .seed(31)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        (0..3).map(|_| s.run_step().expect("step").loss).collect()
    };
    assert_eq!(mk(PlacementStrategy::Keep), mk(PlacementStrategy::Offload));
}
