//! Property tests of the 1F1B pipeline simulator.

use proptest::prelude::*;
use ssdtrain_analysis::pipeline::bubble_fraction;
use ssdtrain_train::pipeline::{one_f1b_commands, StageCmd};
use ssdtrain_train::PipelineSim;

proptest! {
    #[test]
    fn every_micro_batch_runs_forward_and_backward_once_per_stage(
        pp in 1usize..8,
        m in 1usize..32,
    ) {
        for s in 0..pp {
            let cmds = one_f1b_commands(pp, s, m);
            prop_assert_eq!(cmds.len(), 2 * m);
            let mut fwd = vec![0usize; m];
            let mut bwd = vec![0usize; m];
            for c in &cmds {
                match c {
                    StageCmd::Forward { mb } => fwd[*mb] += 1,
                    StageCmd::Backward { mb } => bwd[*mb] += 1,
                }
            }
            prop_assert!(fwd.iter().all(|&n| n == 1));
            prop_assert!(bwd.iter().all(|&n| n == 1));
            // A backward never precedes its own forward.
            let mut seen_f = vec![false; m];
            for c in &cmds {
                match c {
                    StageCmd::Forward { mb } => seen_f[*mb] = true,
                    StageCmd::Backward { mb } => prop_assert!(seen_f[*mb]),
                }
            }
        }
    }

    #[test]
    fn makespan_is_bounded_by_ideal_and_formula(
        pp in 1usize..8,
        m in 1usize..24,
        fwd_ms in 1u32..50,
        bwd_mult in 1u32..4,
    ) {
        let fwd = fwd_ms as f64 / 1000.0;
        let bwd = fwd * bwd_mult as f64;
        let sim = PipelineSim {
            pp,
            micro_batches: m,
            fwd_secs: fwd,
            bwd_secs: bwd,
            act_bytes_per_mb: 1,
            offload_resident_bytes: 1,
            send_secs: 0.0,
        };
        let r = sim.run();
        // Never faster than the bubble-free ideal.
        prop_assert!(r.step_secs >= r.ideal_secs - 1e-9);
        // Never slower than the fully-serialised worst case.
        let worst = (m + pp - 1) as f64 * (fwd + bwd) + 1e-9;
        prop_assert!(r.step_secs <= worst, "{} > {}", r.step_secs, worst);
        // Measured bubble within a small band of the closed form.
        let formula = bubble_fraction(pp, m);
        prop_assert!(
            (r.bubble_fraction - formula).abs() < 0.25,
            "pp {pp} m {m}: {} vs {}",
            r.bubble_fraction,
            formula
        );
        // Stage-0 residency equals min(m, pp) under 1F1B.
        prop_assert_eq!(r.peak_in_flight, m.min(pp));
    }

    #[test]
    fn more_micro_batches_never_increase_the_bubble(
        pp in 2usize..8,
        m in 1usize..16,
    ) {
        let run = |m: usize| {
            PipelineSim {
                pp,
                micro_batches: m,
                fwd_secs: 0.01,
                bwd_secs: 0.02,
                act_bytes_per_mb: 1,
                offload_resident_bytes: 1,
                send_secs: 0.0,
            }
            .run()
            .bubble_fraction
        };
        prop_assert!(run(2 * m) <= run(m) + 1e-9);
    }
}
