//! ZeRO memory partitioning (paper Section 2.1) and the Section 2.2
//! `S_others` accounting: parameters, gradients and optimizer states per
//! GPU under the Zero Redundancy Optimizer's sharding stages.

use serde::{Deserialize, Serialize};

/// ZeRO sharding stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroStage {
    /// No sharding (plain data parallelism).
    None,
    /// Optimizer states sharded across the data-parallel group.
    Stage1,
    /// Stage 1 + gradients sharded.
    Stage2,
    /// Stage 2 + parameters sharded ("ZeRO3" in Figure 9's labels).
    Stage3,
}

/// Per-GPU memory for everything that is *not* activations (the paper's
/// `S_others`), under mixed-precision Adam-style training: 2 bytes of
/// FP16 weights, 2 bytes of FP16 gradients and 12 bytes of FP32
/// optimizer state (master copy + two moments) per parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroMemoryModel {
    /// Total model parameters.
    pub params: u64,
    /// Data-parallel group size (the sharding width).
    pub dp: usize,
    /// ZeRO stage.
    pub stage: ZeroStage,
}

/// Bytes per parameter of each component.
const PARAM_BYTES: u64 = 2;
const GRAD_BYTES: u64 = 2;
const OPTIM_BYTES: u64 = 12;

impl ZeroMemoryModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `dp == 0`.
    pub fn new(params: u64, dp: usize, stage: ZeroStage) -> ZeroMemoryModel {
        assert!(dp > 0, "data-parallel width must be positive");
        ZeroMemoryModel { params, dp, stage }
    }

    /// FP16 parameter bytes resident per GPU.
    pub fn param_bytes_per_gpu(&self) -> u64 {
        match self.stage {
            ZeroStage::Stage3 => self.params * PARAM_BYTES / self.dp as u64,
            _ => self.params * PARAM_BYTES,
        }
    }

    /// FP16 gradient bytes resident per GPU.
    pub fn grad_bytes_per_gpu(&self) -> u64 {
        match self.stage {
            ZeroStage::Stage2 | ZeroStage::Stage3 => self.params * GRAD_BYTES / self.dp as u64,
            _ => self.params * GRAD_BYTES,
        }
    }

    /// FP32 optimizer-state bytes resident per GPU.
    pub fn optim_bytes_per_gpu(&self) -> u64 {
        match self.stage {
            ZeroStage::None => self.params * OPTIM_BYTES,
            _ => self.params * OPTIM_BYTES / self.dp as u64,
        }
    }

    /// The paper's `S_others` per GPU.
    pub fn others_bytes_per_gpu(&self) -> u64 {
        self.param_bytes_per_gpu() + self.grad_bytes_per_gpu() + self.optim_bytes_per_gpu()
    }
}

/// Wall time of the end-of-step gradient allreduce across a `dp`-wide
/// data-parallel group (ring algorithm): each rank moves
/// `2·(dp−1)/dp × grad_bytes` over its link. With ZeRO stages ≥ 2 the
/// collective becomes a same-volume reduce-scatter + (stage < 3)
/// allgather, so the ring bound still applies.
pub fn grad_allreduce_secs(grad_bytes: u64, dp: usize, link_bps: f64) -> f64 {
    assert!(dp >= 1 && link_bps > 0.0, "valid group and link");
    if dp == 1 {
        return 0.0;
    }
    grad_bytes as f64 * 2.0 * (dp as f64 - 1.0) / dp as f64 / link_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u64 = 1_000_000_000;

    #[test]
    fn stages_strictly_shrink_per_gpu_memory() {
        let mk = |s| ZeroMemoryModel::new(10 * B, 64, s).others_bytes_per_gpu();
        let none = mk(ZeroStage::None);
        let s1 = mk(ZeroStage::Stage1);
        let s2 = mk(ZeroStage::Stage2);
        let s3 = mk(ZeroStage::Stage3);
        assert!(none > s1 && s1 > s2 && s2 > s3, "{none} {s1} {s2} {s3}");
    }

    #[test]
    fn unsharded_is_sixteen_bytes_per_param() {
        let m = ZeroMemoryModel::new(B, 8, ZeroStage::None);
        assert_eq!(m.others_bytes_per_gpu(), 16 * B);
    }

    #[test]
    fn stage3_divides_everything_by_dp() {
        let m = ZeroMemoryModel::new(B, 16, ZeroStage::Stage3);
        assert_eq!(m.others_bytes_per_gpu(), 16 * B / 16);
    }

    #[test]
    fn stage1_matches_the_zero_paper_example() {
        // ZeRO's canonical example: 7.5B params, dp=64, stage 1 drops
        // 120 GB to ~31.4 GB.
        let m = ZeroMemoryModel::new(7_500_000_000, 64, ZeroStage::Stage1);
        let gb = m.others_bytes_per_gpu() as f64 / 1e9;
        assert!((gb - 31.4).abs() < 1.0, "{gb}");
    }

    #[test]
    fn others_scale_linearly_with_params() {
        // Section 2.2: S_others ∝ N.
        let a = ZeroMemoryModel::new(B, 8, ZeroStage::Stage1).others_bytes_per_gpu();
        let b = ZeroMemoryModel::new(3 * B, 8, ZeroStage::Stage1).others_bytes_per_gpu();
        assert_eq!(b, 3 * a);
    }

    #[test]
    fn grad_allreduce_matches_ring_formula() {
        use super::grad_allreduce_secs;
        assert_eq!(grad_allreduce_secs(1 << 30, 1, 1e9), 0.0);
        // 1 GiB over 8 ranks at 100 GB/s: 2*(7/8) GiB on the wire.
        let t = grad_allreduce_secs(1 << 30, 8, 100e9);
        let want = (1u64 << 30) as f64 * 1.75 / 100e9;
        assert!((t - want).abs() < 1e-12);
        // The paper's weak-scaling point: per-GPU gradient traffic is
        // bounded by 2x the (sharded) model size regardless of dp.
        let wide = grad_allreduce_secs(1 << 30, 1024, 100e9);
        assert!(wide < 2.0 * (1u64 << 30) as f64 / 100e9);
    }

    #[test]
    fn zero3_175b_fits_on_a100s_where_unsharded_cannot() {
        // The Figure 9 ZeRO3 row: 175B over 384 GPUs.
        let unsharded = ZeroMemoryModel::new(175 * B, 384, ZeroStage::None);
        let z3 = ZeroMemoryModel::new(175 * B, 384, ZeroStage::Stage3);
        let a100 = 80u64 * (1 << 30);
        assert!(unsharded.others_bytes_per_gpu() > a100);
        assert!(z3.others_bytes_per_gpu() < a100 / 8);
    }
}
