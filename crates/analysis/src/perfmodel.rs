//! Step-time modelling for large systems.
//!
//! Mirrors the paper's extension of `llm-analysis` (Section 3.4): each
//! transformer layer is a simple pipeline
//! `t = max(Σ_l max(t_compute, t_memory), t_zero_communicate)`, and for
//! the Figure 9 sweep the end-to-end rate comes from the *measured*
//! per-GPU model throughput of the published scaling study, which bakes
//! in all communication inefficiency. The training step is assumed to be
//! 3× the forward time.

use serde::{Deserialize, Serialize};
use ssdtrain_simhw::catalog::MegatronConfig;
use ssdtrain_simhw::GpuSpec;

/// Analytic step-time model for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTimeModel {
    /// Whole-system FLOPs per step (forward + backward).
    pub step_flops: f64,
    /// Seconds per training step.
    pub step_secs: f64,
    /// Seconds of forward propagation (step / 3, per the paper).
    pub fwd_secs: f64,
}

/// FLOPs of one forward pass for a GPT-style model
/// (`24·B·S·L·h²·(1 + S/(6h)) + 2·B·S·h·V`).
pub fn forward_flops(batch: usize, seq: usize, layers: usize, hidden: usize, vocab: usize) -> f64 {
    let (b, s, l, h, v) = (
        batch as f64,
        seq as f64,
        layers as f64,
        hidden as f64,
        vocab as f64,
    );
    24.0 * b * s * l * h * h * (1.0 + s / (6.0 * h)) + 2.0 * b * s * h * v
}

impl StepTimeModel {
    /// Builds the model from a published large-system configuration: the
    /// measured TFLOP/s per GPU already accounts for communication, so
    /// `t_step = F_hw / (gpus × tflops)`. The Megatron scaling runs
    /// trained **with full recomputation** (their throughput figures use
    /// the 4-pass FLOP count), so their wall step executes four
    /// forward-equivalent passes; ZeRO3 runs execute three.
    pub fn from_megatron(cfg: &MegatronConfig) -> StepTimeModel {
        let fwd = forward_flops(cfg.batch, cfg.seq, cfg.layers, cfg.hidden, 50_304);
        let passes = if cfg.framework == "Megatron" {
            4.0
        } else {
            3.0
        };
        let hw_flops = passes * fwd;
        let rate = cfg.gpus as f64 * cfg.tflops_per_gpu * 1e12;
        let step_secs = hw_flops / rate;
        StepTimeModel {
            step_flops: 3.0 * fwd, // algorithmic (model) FLOPs
            step_secs,
            fwd_secs: step_secs / passes,
        }
    }

    /// Per-layer roofline forward time on one GPU — the
    /// `Σ_l max(t_compute, t_memory)` inner model, exposed for analyses
    /// that do not have a measured throughput.
    pub fn layer_roofline_secs(
        gpu: &GpuSpec,
        batch: usize,
        seq: usize,
        hidden: usize,
        tp: usize,
    ) -> f64 {
        let (b, s, h) = (batch as f64, seq as f64, hidden as f64);
        let tpf = tp as f64;
        // GEMM flops of one layer (QKV, attention, projection, MLP).
        let gemm = 24.0 * b * s * h * h / tpf + 4.0 * b * s * s * h / tpf;
        // Elementwise traffic (LN, GELU, dropout, residuals) ≈ 20 passes
        // over the hidden activation at 2 bytes.
        let mem_bytes = 20.0 * 2.0 * b * s * h;
        let t_c = gemm / (gpu.effective_tflops() * 1e12);
        let t_m = mem_bytes / (gpu.hbm_gbps * 1e9);
        t_c.max(t_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_simhw::catalog::megatron_configs;

    #[test]
    fn step_times_grow_superlinearly_but_stay_in_minutes() {
        for cfg in megatron_configs() {
            let m = StepTimeModel::from_megatron(&cfg);
            assert!(
                m.step_secs > 0.05 && m.step_secs < 600.0,
                "{}B on {} GPUs: {:.2}s",
                cfg.params_b,
                cfg.gpus,
                m.step_secs
            );
        }
    }

    #[test]
    fn forward_flops_match_2n_tokens_rule_of_thumb() {
        // For big hidden sizes, F_fwd ≈ 2 · N_params · tokens with
        // N ≈ 12·L·h².
        let (b, s, l, h) = (512, 2048, 48, 8192);
        let f = forward_flops(b, s, l, h, 50_304);
        let n = 12.0 * l as f64 * (h as f64).powi(2);
        let rule = 2.0 * n * (b * s) as f64;
        let ratio = f / rule;
        assert!((0.9..1.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn megatron_1t_step_time_is_tens_of_seconds() {
        // Sanity anchor: the 1T/3072-GPU config processes 3072×2048
        // tokens per step at ~163 TFLOP/s/GPU — roughly a minute.
        let cfg = megatron_configs()
            .into_iter()
            .find(|c| c.params_b > 900.0)
            .expect("1T config");
        let m = StepTimeModel::from_megatron(&cfg);
        assert!((10.0..200.0).contains(&m.step_secs), "{}", m.step_secs);
    }

    #[test]
    fn roofline_is_compute_bound_at_paper_scale() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let t = StepTimeModel::layer_roofline_secs(&gpu, 16, 1024, 8192, 2);
        // One H8192 layer at B16 TP2: ~12 TFLOP effective -> tens of ms.
        assert!((0.02..0.2).contains(&t), "{t}");
    }
}
